//! Morsel-driven parallel execution.
//!
//! A fixed-size pool of `std::thread` workers pulls *morsels* — contiguous,
//! cache-sized ranges of input indices — from a shared atomic counter and
//! executes them free-running; the coordinator stitches per-morsel outputs
//! back together **in morsel index order**. Combined with the row-ordering
//! contract of the serial executor (see [`crate::exec::executor`]), this
//! makes the parallel output — result rows, intermediate cardinalities,
//! per-operator events, and the accumulated work units — **byte-identical**
//! to the serial executor for every plan, thread count, and morsel size.
//!
//! Determinism argument, per operator:
//!
//! * **Scan**: morsels partition the base table into ascending contiguous
//!   ranges; each emits qualifying ids in ascending order; concatenation in
//!   morsel order reproduces the serial ascending scan.
//! * **Hash join build**: each morsel builds a local key→rows map over its
//!   ascending slice of the build input; local maps are merged in morsel
//!   order, so every key's row vector ends up in ascending build-input
//!   order — exactly the serial insertion order. (Map *iteration* order is
//!   irrelevant: merging is per key.)
//! * **Hash join probe**: probe morsels cover ascending probe ranges
//!   against the shared read-only table; each emits probe-major output;
//!   concatenation in morsel order reproduces the serial probe loop.
//! * **Nested-loop / cross join**: outer side is morselised; inner loop is
//!   unchanged; concatenation reproduces the serial outer-major order.
//! * **Merge join**: only key extraction is parallel (order-preserving by
//!   construction); sorting and merging reuse the serial code verbatim.
//!
//! Work accounting is replayed, not summed: after the deterministic merge,
//! the coordinator issues the *exact serial sequence* of work charges, so
//! `ExecResult::work` is bit-identical across modes. During execution an
//! *approximate* shared accumulator (exact value re-seeded after every
//! exact charge) makes morsel dispatch budget-aware: workers stop pulling
//! morsels as soon as the work budget is provably exceeded, which is how
//! lqo-guard plan budgets cancel runaway parallel plans mid-operator.
//!
//! A panicking worker is contained by `catch_unwind`, recorded on the run,
//! and cancels remaining morsels; the query then degrades to the serial
//! path (default) or surfaces [`crate::error::EngineError::WorkerFault`].

pub(crate) mod join;
pub(crate) mod morsel;
pub(crate) mod pool;

use std::cell::Cell;

use lqo_obs::trace::OperatorEvent;
use serde::Serialize;

use crate::error::Result;
use crate::exec::executor::{join_label, Executor, WorkMeter};
use crate::exec::parallel::morsel::{morsels, SharedRun};
use crate::exec::parallel::pool::{run_morsels, PoolStats};
use crate::exec::relation::Relation;
use crate::plan::physical::PhysNode;
use crate::query::spj::SpjQuery;
use crate::query::table_set::TableSet;

/// How the executor runs a plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub enum ExecMode {
    /// Single-threaded tuple-at-a-time execution (the reference path).
    #[default]
    Serial,
    /// Morsel-driven parallel execution on a fixed-size worker pool.
    Parallel {
        /// Worker pool size. `Parallel { threads: 1 }` is executed on the
        /// serial path (one worker cannot beat zero dispatch overhead).
        threads: usize,
    },
    /// Single-threaded vectorized execution: operators run columnar batch
    /// kernels (selection vectors, gathered key columns, batched hashing)
    /// over chunks of `batch_size` tuples. Output is byte-identical to
    /// [`ExecMode::Serial`] — same rows in the same order, bit-identical
    /// work units — only the inner loops differ (see
    /// [`crate::exec::batch`]).
    Batched {
        /// Tuples per columnar batch; clamped to at least 1.
        batch_size: usize,
    },
    /// Morsel-driven parallel execution whose morsel bodies run the same
    /// columnar batch kernels as [`ExecMode::Batched`] — the composition
    /// of both speedups. Byte-identical to serial like every other mode.
    BatchedParallel {
        /// Worker pool size (1 falls back to the single-threaded batched
        /// path).
        threads: usize,
        /// Tuples per columnar batch; clamped to at least 1.
        batch_size: usize,
    },
}

impl ExecMode {
    /// The worker count this mode runs with (1 for the single-threaded
    /// modes).
    pub fn threads(&self) -> usize {
        match self {
            ExecMode::Serial | ExecMode::Batched { .. } => 1,
            ExecMode::Parallel { threads } | ExecMode::BatchedParallel { threads, .. } => {
                (*threads).max(1)
            }
        }
    }

    /// The columnar batch size this mode runs with (`None` for the
    /// tuple-at-a-time modes).
    pub fn batch_size(&self) -> Option<usize> {
        match self {
            ExecMode::Serial | ExecMode::Parallel { .. } => None,
            ExecMode::Batched { batch_size } | ExecMode::BatchedParallel { batch_size, .. } => {
                Some((*batch_size).max(1))
            }
        }
    }

    /// Parse `"serial"`, `"parallel"` (hardware threads), `"parallel:N"`,
    /// `"batched"` (default batch size), `"batched:B"`,
    /// `"batched-parallel"` (hardware threads, default batch size),
    /// `"batched-parallel:T"` or `"batched-parallel:T:B"`.
    pub fn parse(s: &str) -> Option<ExecMode> {
        fn hw_threads() -> usize {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
        match s.trim() {
            "serial" => Some(ExecMode::Serial),
            "parallel" => Some(ExecMode::Parallel {
                threads: hw_threads(),
            }),
            "batched" => Some(ExecMode::Batched {
                batch_size: crate::exec::batch::DEFAULT_BATCH_SIZE,
            }),
            "batched-parallel" => Some(ExecMode::BatchedParallel {
                threads: hw_threads(),
                batch_size: crate::exec::batch::DEFAULT_BATCH_SIZE,
            }),
            other => {
                if let Some(rest) = other.strip_prefix("batched-parallel:") {
                    let (threads, batch_size) = match rest.split_once(':') {
                        Some((t, b)) => (t.parse().ok()?, b.parse().ok()?),
                        None => (rest.parse().ok()?, crate::exec::batch::DEFAULT_BATCH_SIZE),
                    };
                    return Some(ExecMode::BatchedParallel {
                        threads,
                        batch_size,
                    });
                }
                if let Some(b) = other.strip_prefix("batched:") {
                    return Some(ExecMode::Batched {
                        batch_size: b.parse().ok()?,
                    });
                }
                let threads = other.strip_prefix("parallel:")?.parse().ok()?;
                Some(ExecMode::Parallel { threads })
            }
        }
    }

    /// Read the mode from the `LQO_EXEC_MODE` environment variable
    /// (`serial` | `parallel[:N]` | `batched[:B]` |
    /// `batched-parallel[:T[:B]]`); defaults to serial.
    pub fn from_env() -> ExecMode {
        std::env::var("LQO_EXEC_MODE")
            .ok()
            .and_then(|s| ExecMode::parse(&s))
            .unwrap_or(ExecMode::Serial)
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Serial => write!(f, "serial"),
            ExecMode::Parallel { threads } => write!(f, "parallel:{threads}"),
            ExecMode::Batched { batch_size } => write!(f, "batched:{batch_size}"),
            ExecMode::BatchedParallel {
                threads,
                batch_size,
            } => write!(f, "batched-parallel:{threads}:{batch_size}"),
        }
    }
}

/// Tuning and fault-injection knobs for the parallel executor.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Maximum rows per morsel. The default keeps a morsel's footprint
    /// within a few hundred KiB of L2 for typical tuple widths.
    pub morsel_rows: usize,
    /// Degrade to the serial path when a worker panics (default). When
    /// off, a worker fault surfaces as [`crate::error::EngineError::WorkerFault`].
    pub fallback_serial: bool,
    /// Fault injection for chaos tests: panic inside the morsel with this
    /// global dispatch sequence number.
    pub panic_on_morsel: Option<u64>,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            morsel_rows: 32_768,
            fallback_serial: true,
            panic_on_morsel: None,
        }
    }
}

/// Coordinator state for one parallel plan execution.
pub(crate) struct ParRun<'a> {
    pub(crate) ex: &'a Executor<'a>,
    pub(crate) query: &'a SpjQuery,
    pub(crate) threads: usize,
    /// Rows per columnar batch inside each morsel
    /// (`ExecMode::BatchedParallel`); `None` runs the tuple-at-a-time
    /// morsel bodies (`ExecMode::Parallel`).
    pub(crate) batch: Option<usize>,
    /// Whether this query was picked for per-operator profiling detail
    /// (decided once in `Executor::execute`).
    detail: bool,
    pub(crate) shared: SharedRun,
    /// Total morsels dispatched, worker busy ns, and pool capacity
    /// (spawned workers × dispatch wall ns) — accumulated across
    /// dispatches for utilization metrics.
    morsels_run: Cell<u64>,
    busy_ns: Cell<u64>,
    capacity_ns: Cell<u64>,
}

/// Execute `plan` on the morsel pool, with worker count and batch size
/// taken from the executor's configured mode. Mirrors
/// [`Executor::exec_node`] exactly: same validation, same intermediates,
/// same operator events, bit-identical work accounting.
pub(crate) fn exec_plan(
    ex: &Executor<'_>,
    query: &SpjQuery,
    plan: &PhysNode,
    detail: bool,
    meter: &mut WorkMeter,
    intermediates: &mut Vec<(TableSet, u64)>,
    events: &mut Vec<OperatorEvent>,
) -> Result<Relation> {
    let run = step_run(ex, query, detail);
    let result = run.node(plan, meter, intermediates, events);
    run.finish();
    result
}

/// A coordinator for one pool execution — a whole plan or a single
/// operator step (the adaptive re-optimization driver runs one operator
/// per pool run).
fn step_run<'a>(ex: &'a Executor<'a>, query: &'a SpjQuery, detail: bool) -> ParRun<'a> {
    ParRun {
        ex,
        query,
        threads: ex.config.mode.threads(),
        batch: ex.config.mode.batch_size(),
        detail,
        shared: SharedRun::new(ex.config.max_work, ex.config.parallel.panic_on_morsel),
        morsels_run: Cell::new(0),
        busy_ns: Cell::new(0),
        capacity_ns: Cell::new(0),
    }
}

/// Execute a single scan operator in parallel (step interface for
/// [`Executor::exec_scan_step`]).
pub(crate) fn exec_scan_step(
    ex: &Executor<'_>,
    query: &SpjQuery,
    pos: usize,
    meter: &mut WorkMeter,
) -> Result<Relation> {
    let run = step_run(ex, query, false);
    let result = run.scan(pos, meter);
    run.finish();
    result
}

/// Execute a single join operator in parallel (step interface for
/// [`Executor::exec_join_step`]).
pub(crate) fn exec_join_step(
    ex: &Executor<'_>,
    query: &SpjQuery,
    algo: crate::plan::physical::JoinAlgo,
    left: Relation,
    right: Relation,
    meter: &mut WorkMeter,
) -> Result<Relation> {
    let run = step_run(ex, query, false);
    let result = run.join(algo, left, right, meter);
    run.finish();
    result
}

impl ParRun<'_> {
    /// Execute one plan node; identical structure to the serial
    /// `exec_node` so per-operator work attribution and event order match.
    fn node(
        &self,
        node: &PhysNode,
        meter: &mut WorkMeter,
        intermediates: &mut Vec<(TableSet, u64)>,
        events: &mut Vec<OperatorEvent>,
    ) -> Result<Relation> {
        // Same phase-before-recursion structure as the serial
        // `exec_node`, so serial and parallel runs produce the same
        // phase tree (morsel/worker frames nested below are extra).
        let _prof_op = self.detail.then(|| {
            self.ex.prof.phase_sampled(match node {
                PhysNode::Scan { .. } => "Scan",
                PhysNode::Join { algo, .. } => join_label(*algo),
            })
        });
        let (rel, op, own_work) = match node {
            PhysNode::Scan { pos } => {
                let before = meter.work;
                let rel = self.scan(*pos, meter)?;
                (rel, "Scan", meter.work - before)
            }
            PhysNode::Join { algo, left, right } => {
                let l = self.node(left, meter, intermediates, events)?;
                let r = self.node(right, meter, intermediates, events)?;
                let before = meter.work;
                let rel = self.join(*algo, l, r, meter)?;
                (rel, join_label(*algo), meter.work - before)
            }
        };
        intermediates.push((rel.tables(), rel.len() as u64));
        self.ex.prof.charge(own_work);
        if self.ex.obs.is_enabled() {
            events.push(OperatorEvent {
                op: op.to_string(),
                tables: rel.tables().0,
                true_rows: rel.len() as u64,
                est_rows: None,
                work: own_work,
            });
        }
        Ok(rel)
    }

    /// Parallel filter scan: morsels over the base table, qualifying row
    /// ids concatenated in morsel (= ascending row) order. Under
    /// `BatchedParallel` each morsel body runs the selection-vector
    /// kernels over `batch`-row sub-ranges instead of the per-row
    /// predicate loop; both bodies emit ascending row ids, so the merged
    /// output is identical.
    fn scan(&self, pos: usize, meter: &mut WorkMeter) -> Result<Relation> {
        let (n, compiled) = self.ex.compile_scan(self.query, pos)?;
        meter.add(self.ex.config.params.scan_work(n as f64, compiled.len()))?;
        self.shared.seed_work(meter.work);
        let compiled = &compiled;
        let batch = self.batch;
        let chunks = self.dispatch(n, "Scan", move |_, range| {
            let mut out = Vec::new();
            if let Some(b) = batch {
                let b = b.max(1);
                let mut sel: Vec<u32> = Vec::with_capacity(b.min(range.len().max(1)));
                let mut start = range.start;
                while start < range.end {
                    let end = (start + b).min(range.end);
                    match compiled.split_first() {
                        None => out.extend(start as u32..end as u32),
                        Some((first, rest)) => {
                            sel.clear();
                            first.filter_range(start..end, &mut sel);
                            for c in rest {
                                if sel.is_empty() {
                                    break;
                                }
                                c.filter_sel(&mut sel);
                            }
                            out.extend_from_slice(&sel);
                        }
                    }
                    start = end;
                }
            } else {
                'rows: for row in range {
                    for c in compiled {
                        if !c.matches(row) {
                            continue 'rows;
                        }
                    }
                    out.push(row as u32);
                }
            }
            out
        })?;
        let mut out = Vec::new();
        for c in chunks {
            out.extend(c);
        }
        Ok(Relation::from_scan(pos, out))
    }

    /// Run `f` over morsels of `0..n` on the pool, recording timings.
    pub(crate) fn dispatch<T, F>(&self, n: usize, op: &'static str, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
    {
        let ms = morsels(n, self.ex.config.parallel.morsel_rows);
        let (results, stats) = run_morsels(self.threads, &ms, &self.shared, op, f)?;
        self.note(&stats);
        Ok(results)
    }

    fn note(&self, stats: &PoolStats) {
        self.morsels_run
            .set(self.morsels_run.get() + stats.morsel_ns.len() as u64);
        self.busy_ns.set(self.busy_ns.get() + stats.busy_ns);
        self.capacity_ns
            .set(self.capacity_ns.get() + stats.workers as u64 * stats.elapsed_ns);
        if self.ex.obs.is_enabled() {
            self.ex
                .obs
                .count("lqo.exec.parallel.morsels", stats.morsel_ns.len() as u64);
            for &ns in &stats.morsel_ns {
                self.ex
                    .obs
                    .observe("lqo.exec.parallel.morsel_ns", ns as f64);
            }
        }
        if self.ex.prof.is_enabled() && self.detail {
            // Per-morsel and per-worker attribution under the operator
            // phase that dispatched this pool run (detail-sampled along
            // with the per-operator phases). Derived from the same
            // PoolStats that feed the E11 utilization gauge, so the
            // profiler's busy/idle split and the scaling experiment's
            // utilization numbers cannot drift apart.
            self.ex.prof.record_child(
                "morsel",
                stats.morsel_ns.len() as u64,
                stats.morsel_ns.iter().sum(),
                0.0,
            );
            for (i, &busy) in stats.worker_busy_ns.iter().enumerate() {
                let idle = stats.elapsed_ns.saturating_sub(busy);
                self.ex
                    .prof
                    .record_child(&format!("worker{i}_busy"), 1, busy, 0.0);
                self.ex
                    .prof
                    .record_child(&format!("worker{i}_idle"), 1, idle, 0.0);
            }
        }
    }

    /// Record run-level pool metrics: total busy time and utilization
    /// (busy / (spawned workers × parallel-section wall time)).
    fn finish(&self) {
        if !self.ex.obs.is_enabled() || self.morsels_run.get() == 0 {
            return;
        }
        self.ex.obs.observe(
            "lqo.exec.parallel.worker_busy_ns",
            self.busy_ns.get() as f64,
        );
        let denom = self.capacity_ns.get() as f64;
        if denom > 0.0 {
            self.ex.obs.gauge(
                "lqo.exec.parallel.utilization",
                self.busy_ns.get() as f64 / denom,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_mode_parses() {
        assert_eq!(ExecMode::parse("serial"), Some(ExecMode::Serial));
        assert_eq!(
            ExecMode::parse("parallel:4"),
            Some(ExecMode::Parallel { threads: 4 })
        );
        assert!(matches!(
            ExecMode::parse("parallel"),
            Some(ExecMode::Parallel { .. })
        ));
        assert_eq!(
            ExecMode::parse("batched:256"),
            Some(ExecMode::Batched { batch_size: 256 })
        );
        assert_eq!(
            ExecMode::parse("batched"),
            Some(ExecMode::Batched {
                batch_size: crate::exec::batch::DEFAULT_BATCH_SIZE
            })
        );
        assert_eq!(
            ExecMode::parse("batched-parallel:4:128"),
            Some(ExecMode::BatchedParallel {
                threads: 4,
                batch_size: 128
            })
        );
        assert_eq!(
            ExecMode::parse("batched-parallel:4"),
            Some(ExecMode::BatchedParallel {
                threads: 4,
                batch_size: crate::exec::batch::DEFAULT_BATCH_SIZE
            })
        );
        assert!(matches!(
            ExecMode::parse("batched-parallel"),
            Some(ExecMode::BatchedParallel { .. })
        ));
        assert_eq!(ExecMode::parse("bogus"), None);
        assert_eq!(ExecMode::parse("parallel:x"), None);
        assert_eq!(ExecMode::parse("batched:x"), None);
        assert_eq!(ExecMode::parse("batched-parallel:2:x"), None);
    }

    #[test]
    fn exec_mode_display_roundtrips() {
        for mode in [
            ExecMode::Serial,
            ExecMode::Parallel { threads: 8 },
            ExecMode::Batched { batch_size: 512 },
            ExecMode::BatchedParallel {
                threads: 4,
                batch_size: 64,
            },
        ] {
            assert_eq!(ExecMode::parse(&mode.to_string()), Some(mode));
        }
    }

    #[test]
    fn exec_mode_threads() {
        assert_eq!(ExecMode::Serial.threads(), 1);
        assert_eq!(ExecMode::Parallel { threads: 8 }.threads(), 8);
        assert_eq!(ExecMode::Parallel { threads: 0 }.threads(), 1);
        assert_eq!(ExecMode::Batched { batch_size: 64 }.threads(), 1);
        assert_eq!(
            ExecMode::BatchedParallel {
                threads: 6,
                batch_size: 64
            }
            .threads(),
            6
        );
    }

    #[test]
    fn exec_mode_batch_size() {
        assert_eq!(ExecMode::Serial.batch_size(), None);
        assert_eq!(ExecMode::Parallel { threads: 2 }.batch_size(), None);
        assert_eq!(ExecMode::Batched { batch_size: 64 }.batch_size(), Some(64));
        assert_eq!(
            ExecMode::Batched { batch_size: 0 }.batch_size(),
            Some(1),
            "degenerate batch size clamps to 1"
        );
        assert_eq!(
            ExecMode::BatchedParallel {
                threads: 2,
                batch_size: 512
            }
            .batch_size(),
            Some(512)
        );
    }
}
