//! Parallel join operators.
//!
//! Each join mirrors its serial counterpart operator-for-operator and
//! charge-for-charge:
//!
//! * upfront operator work is charged on the **exact** meter before any
//!   morsel is dispatched (so hopeless plans abort as early as serially);
//! * workers feed the shared *approximate* accumulator as they emit, so
//!   the budget can cancel dispatch mid-operator;
//! * after the deterministic morsel-order merge, output work is
//!   **replayed** as the exact serial sequence of chunked charges, making
//!   the final work value bit-identical to serial execution.

use std::collections::HashMap;
use std::hash::Hash;

use crate::error::{EngineError, Result};
use crate::exec::batch::column::{gather_key_column, gather_key_range};
use crate::exec::batch::join::{keys_equal, probe_range};
use crate::exec::batch::kernels::KeyTable;
use crate::exec::compiled::KeySide;
use crate::exec::executor::{Executor, WorkMeter};
use crate::exec::parallel::ParRun;
use crate::exec::relation::Relation;
use crate::exec::workunits::CostParams;
use crate::plan::physical::JoinAlgo;
use crate::query::expr::JoinCond;

/// Replay the serial executor's chunked output-work charges for a join
/// that emitted `emitted` tuples of `width` slots: one charge per full
/// 65,536-tuple chunk, then the remainder. Bit-identical to the serial
/// interleaved sequence because f64 addition is deterministic for a fixed
/// sequence of operands.
fn replay_output_charges(
    meter: &mut WorkMeter,
    p: &CostParams,
    emitted: usize,
    width: usize,
) -> Result<()> {
    for _ in 0..emitted / 65_536 {
        meter.add(p.output_work(65_536.0, width))?;
    }
    meter.add(p.output_work((emitted % 65_536) as f64, width))
}

impl ParRun<'_> {
    pub(crate) fn join(
        &self,
        algo: JoinAlgo,
        left: Relation,
        right: Relation,
        meter: &mut WorkMeter,
    ) -> Result<Relation> {
        let conds = self.query.joins_between(left.tables(), right.tables());
        if conds.is_empty() {
            if algo != JoinAlgo::NestedLoop {
                return Err(EngineError::InvalidPlan(format!(
                    "{algo} requires at least one equi-join condition (cross products \
                     must use NestedLoopJoin)"
                )));
            }
            return self.cross_join(left, right, meter);
        }
        match algo {
            JoinAlgo::Hash => self.hash_join(&conds, left, right, meter),
            JoinAlgo::NestedLoop => self.nl_join(&conds, left, right, meter),
            JoinAlgo::Merge => self.merge_join(&conds, left, right, meter),
        }
    }

    fn hash_join(
        &self,
        conds: &[&JoinCond],
        left: Relation,
        right: Relation,
        meter: &mut WorkMeter,
    ) -> Result<Relation> {
        let p = &self.ex.config.params;
        let spill = self.ex.hash_spill(left.len());
        meter
            .add((left.len() as f64 * p.hash_build + right.len() as f64 * p.hash_probe) * spill)?;
        self.shared.seed_work(meter.work);

        let lkeys = self.ex.key_side(self.query, &left, conds)?;
        let rkeys = self.ex.key_side(self.query, &right, conds)?;
        let slots = Relation::combined_slots(&left, &right);
        let width = slots.len();
        let (rows, emitted) = if let Some(batch) = self.batch {
            self.hash_join_batched(&left, &right, width, &lkeys, &rkeys, batch)?
        } else if conds.len() == 1 {
            self.hash_join_keyed(&left, &right, width, &lkeys, &rkeys, |ks, t| {
                ks.single_key(t)
            })?
        } else {
            self.hash_join_keyed(&left, &right, width, &lkeys, &rkeys, |ks, t| {
                ks.multi_key(t)
            })?
        };
        replay_output_charges(meter, p, emitted, width)?;
        Ok(Relation { slots, rows })
    }

    /// Batched-parallel hash join: build-side key columns are gathered
    /// per morsel and concatenated in morsel order (equal to the
    /// whole-column gather), one flat [`KeyTable`] is built from them,
    /// and probe morsels run the shared batched probe kernel against the
    /// read-only table. Chains yield build rows in ascending input order
    /// and probe chunks merge in morsel order, so the emit order is the
    /// serial probe-major order exactly.
    fn hash_join_batched(
        &self,
        left: &Relation,
        right: &Relation,
        width: usize,
        lkeys: &KeySide<'_>,
        rkeys: &KeySide<'_>,
        batch: usize,
    ) -> Result<(Vec<u32>, usize)> {
        let gathers = self.dispatch(left.len(), "HashJoin", move |_, range| {
            lkeys
                .cols
                .iter()
                .map(|&(slot, data)| gather_key_range(left, slot, data, range.clone()))
                .collect::<Vec<_>>()
        })?;
        let mut lcols: Vec<Vec<i64>> = vec![Vec::with_capacity(left.len()); lkeys.cols.len()];
        for gather in gathers {
            for (c, col) in gather.into_iter().enumerate() {
                lcols[c].extend(col);
            }
        }
        let table = KeyTable::build(&lcols);
        drop(lcols);

        let table = &table;
        let shared = &self.shared;
        let params = &self.ex.config.params;
        let chunks = self.dispatch(right.len(), "HashJoin", move |_, range| {
            let mut rows: Vec<u32> = Vec::new();
            let emitted = probe_range(table, left, right, rkeys, range, batch, &mut rows);
            shared.add_approx(params.output_work(emitted as f64, width));
            (rows, emitted)
        })?;
        Ok(concat_chunks(chunks))
    }

    /// Partitioned build, shared read-only probe.
    ///
    /// Build morsels each construct a local key→rows map over their
    /// ascending slice; local maps are merged **in morsel order**, so each
    /// key's row vector is in ascending build-input order — the serial
    /// insertion order. Probe morsels then scan ascending probe ranges
    /// against the shared table; concatenating their outputs in morsel
    /// order reproduces the serial probe-major emit order exactly.
    fn hash_join_keyed<K, F>(
        &self,
        left: &Relation,
        right: &Relation,
        width: usize,
        lkeys: &KeySide<'_>,
        rkeys: &KeySide<'_>,
        key: F,
    ) -> Result<(Vec<u32>, usize)>
    where
        K: Eq + Hash + Send + Sync,
        F: Fn(&KeySide<'_>, &[u32]) -> K + Sync,
    {
        let key = &key;
        let locals = self.dispatch(left.len(), "HashJoin", move |_, range| {
            let mut m: HashMap<K, Vec<u32>> = HashMap::new();
            for i in range {
                m.entry(key(lkeys, left.tuple(i)))
                    .or_default()
                    .push(i as u32);
            }
            m
        })?;
        let mut table: HashMap<K, Vec<u32>> = HashMap::new();
        for local in locals {
            for (k, v) in local {
                table.entry(k).or_default().extend(v);
            }
        }

        let table = &table;
        let shared = &self.shared;
        let params = &self.ex.config.params;
        let chunks = self.dispatch(right.len(), "HashJoin", move |_, range| {
            let mut rows: Vec<u32> = Vec::new();
            let mut emitted = 0usize;
            for j in range {
                let rt = right.tuple(j);
                if let Some(matches) = table.get(&key(rkeys, rt)) {
                    for &i in matches {
                        Executor::emit(&mut rows, left.tuple(i as usize), rt);
                        emitted += 1;
                    }
                }
            }
            shared.add_approx(params.output_work(emitted as f64, width));
            (rows, emitted)
        })?;
        Ok(concat_chunks(chunks))
    }

    fn nl_join(
        &self,
        conds: &[&JoinCond],
        left: Relation,
        right: Relation,
        meter: &mut WorkMeter,
    ) -> Result<Relation> {
        let p = &self.ex.config.params;
        let discount = self.ex.nl_discount(right.len());
        meter.add(left.len() as f64 * right.len() as f64 * p.nl_pair * discount)?;
        self.shared.seed_work(meter.work);

        let lkeys = self.ex.key_side(self.query, &left, conds)?;
        let rkeys = self.ex.key_side(self.query, &right, conds)?;
        let slots = Relation::combined_slots(&left, &right);
        let width = slots.len();
        let (lkeys, rkeys) = (&lkeys, &rkeys);
        let (lref, rref) = (&left, &right);
        let shared = &self.shared;
        let chunks = if self.batch.is_some() {
            // Batched morsel body: both sides' key columns are gathered
            // once up front, so the pair loop compares flat `i64`s with
            // no per-pair allocation (the tuple-at-a-time body below
            // allocates two composite keys per pair).
            let lcols: Vec<Vec<i64>> = lkeys
                .cols
                .iter()
                .map(|&(slot, data)| gather_key_column(lref, slot, data))
                .collect();
            let rcols: Vec<Vec<i64>> = rkeys
                .cols
                .iter()
                .map(|&(slot, data)| gather_key_column(rref, slot, data))
                .collect();
            let (lcols, rcols) = (&lcols, &rcols);
            self.dispatch(left.len(), "NestedLoopJoin", move |_, range| {
                let mut rows: Vec<u32> = Vec::new();
                let mut emitted = 0usize;
                if lcols.len() == 1 {
                    let (lc, rc) = (&lcols[0], &rcols[0]);
                    for i in range {
                        let lt = lref.tuple(i);
                        let lk = lc[i];
                        for (j, &rk) in rc.iter().enumerate() {
                            if rk == lk {
                                Executor::emit(&mut rows, lt, rref.tuple(j));
                                emitted += 1;
                            }
                        }
                    }
                } else {
                    for i in range {
                        let lt = lref.tuple(i);
                        for j in 0..rref.len() {
                            if keys_equal(lcols, rcols, i, j) {
                                Executor::emit(&mut rows, lt, rref.tuple(j));
                                emitted += 1;
                            }
                        }
                    }
                }
                shared.add_approx(p.output_work(emitted as f64, width));
                (rows, emitted)
            })?
        } else {
            self.dispatch(left.len(), "NestedLoopJoin", move |_, range| {
                let mut rows: Vec<u32> = Vec::new();
                let mut emitted = 0usize;
                for i in range {
                    let lt = lref.tuple(i);
                    let lk = lkeys.multi_key(lt);
                    for j in 0..rref.len() {
                        let rt = rref.tuple(j);
                        if lk == rkeys.multi_key(rt) {
                            Executor::emit(&mut rows, lt, rt);
                            emitted += 1;
                        }
                    }
                }
                shared.add_approx(p.output_work(emitted as f64, width));
                (rows, emitted)
            })?
        };
        let (rows, emitted) = concat_chunks(chunks);
        replay_output_charges(meter, p, emitted, width)?;
        Ok(Relation { slots, rows })
    }

    fn cross_join(
        &self,
        left: Relation,
        right: Relation,
        meter: &mut WorkMeter,
    ) -> Result<Relation> {
        let p = &self.ex.config.params;
        let out = left.len() as f64 * right.len() as f64;
        let slots = Relation::combined_slots(&left, &right);
        let width = slots.len();
        // Serial charges the cross product in one upfront add; match it.
        meter.add(out * p.nl_pair + p.output_work(out, width))?;
        self.shared.seed_work(meter.work);
        let (lref, rref) = (&left, &right);
        let chunks = self.dispatch(left.len(), "NestedLoopJoin", move |_, range| {
            let mut rows: Vec<u32> = Vec::new();
            for i in range {
                for j in 0..rref.len() {
                    Executor::emit(&mut rows, lref.tuple(i), rref.tuple(j));
                }
            }
            rows
        })?;
        let mut rows = Vec::new();
        for c in chunks {
            rows.extend(c);
        }
        Ok(Relation { slots, rows })
    }

    /// Merge join: key extraction is parallel (order-preserving because
    /// per-morsel extractions are concatenated in morsel order); the sort
    /// and the merge phase reuse the serial implementation verbatim, so
    /// charges and output are identical by construction.
    fn merge_join(
        &self,
        conds: &[&JoinCond],
        left: Relation,
        right: Relation,
        meter: &mut WorkMeter,
    ) -> Result<Relation> {
        let p = &self.ex.config.params;
        meter.add(
            p.sort_work(left.len() as f64)
                + p.sort_work(right.len() as f64)
                + (left.len() + right.len()) as f64 * p.merge_tuple,
        )?;
        self.shared.seed_work(meter.work);

        let lkeys = self.ex.key_side(self.query, &left, conds)?;
        let rkeys = self.ex.key_side(self.query, &right, conds)?;
        let (lkeys, rkeys) = (&lkeys, &rkeys);
        let (lref, rref) = (&left, &right);
        // Per-morsel key extraction; the batched body gathers the key
        // columns for its range first (one columnar pass per condition)
        // instead of borrowing tuple-by-tuple. Either way the extracted
        // `(key, input index)` pairs are identical, and the index makes
        // the subsequent sort order unique.
        let batched = self.batch.is_some();
        let lext = self.dispatch(left.len(), "MergeJoin", move |_, range| {
            extract_keys(lref, lkeys, batched, range)
        })?;
        let rext = self.dispatch(right.len(), "MergeJoin", move |_, range| {
            extract_keys(rref, rkeys, batched, range)
        })?;
        let mut lsorted: Vec<(Vec<i64>, u32)> = lext.into_iter().flatten().collect();
        let mut rsorted: Vec<(Vec<i64>, u32)> = rext.into_iter().flatten().collect();
        lsorted.sort_unstable();
        rsorted.sort_unstable();
        Executor::merge_phase(p, &left, &right, &lsorted, &rsorted, meter)
    }
}

/// Extract `(key, input index)` sort pairs for one merge-join morsel.
/// The batched body gathers the key columns for the range first (one
/// columnar pass per condition) instead of borrowing tuple-by-tuple;
/// either way the extracted pairs are identical, and the index makes the
/// subsequent sort order unique.
fn extract_keys(
    rel: &Relation,
    keys: &KeySide<'_>,
    batched: bool,
    range: std::ops::Range<usize>,
) -> Vec<(Vec<i64>, u32)> {
    if batched {
        let cols: Vec<Vec<i64>> = keys
            .cols
            .iter()
            .map(|&(slot, data)| gather_key_range(rel, slot, data, range.clone()))
            .collect();
        (0..range.len())
            .map(|k| {
                let key: Vec<i64> = cols.iter().map(|c| c[k]).collect();
                (key, (range.start + k) as u32)
            })
            .collect()
    } else {
        range
            .map(|i| (keys.multi_key(rel.tuple(i)), i as u32))
            .collect()
    }
}

/// Concatenate per-morsel `(rows, emitted)` chunks in morsel order.
fn concat_chunks(chunks: Vec<(Vec<u32>, usize)>) -> (Vec<u32>, usize) {
    let mut rows = Vec::new();
    let mut emitted = 0usize;
    for (c, e) in chunks {
        rows.extend(c);
        emitted += e;
    }
    (rows, emitted)
}
