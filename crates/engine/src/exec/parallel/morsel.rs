//! Morsel partitioning and the shared per-query run state.
//!
//! A *morsel* is a contiguous range of input indices (base-table rows for
//! scans, input tuples for join sides) small enough to be cache-resident.
//! Workers pull morsel indices from a shared atomic counter, so scheduling
//! is dynamic, but every morsel's *output* is stitched back together in
//! morsel index order — which is what makes the parallel executor's output
//! byte-identical to the serial one (see the determinism argument in
//! DESIGN.md §11).

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

/// Split `0..n` into contiguous ranges of at most `morsel_rows` indices.
///
/// The partition depends only on `n` and `morsel_rows` — never on thread
/// count or timing — so the set of morsels (and therefore the
/// concatenation of their outputs) is deterministic.
pub(crate) fn morsels(n: usize, morsel_rows: usize) -> Vec<Range<usize>> {
    let step = morsel_rows.max(1);
    let mut out = Vec::with_capacity(n.div_ceil(step));
    let mut lo = 0;
    while lo < n {
        let hi = (lo + step).min(n);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// Relative + absolute slack applied before tripping the approximate
/// budget. The worker-side work accumulator sums the same charges as the
/// serial meter but in a different association order, so it can differ
/// from the exact value by float rounding. The slack guarantees we only
/// cancel when the exact meter is certain to exceed the limit too, keeping
/// budget outcomes identical across execution modes.
const BUDGET_SLACK_REL: f64 = 1e-9;
const BUDGET_SLACK_ABS: f64 = 1e-6;

/// Shared state for one parallel query execution: cooperative
/// cancellation, the approximate work accumulator that makes morsel
/// dispatch budget-aware, contained worker faults, and the global morsel
/// sequence used for deterministic fault injection.
pub(crate) struct SharedRun {
    /// Set when workers should stop pulling morsels (budget or fault).
    cancelled: AtomicBool,
    /// Set when the approximate work accumulator exceeded the budget.
    budget_tripped: AtomicBool,
    /// Operator label of a contained worker panic, if one occurred.
    fault: Mutex<Option<String>>,
    /// Approximate accumulated work, stored as `f64::to_bits`. Seeded
    /// with the exact meter value after every exact charge; workers add
    /// their morsel-local output work on top.
    work_bits: AtomicU64,
    /// The work budget, if any.
    limit: Option<f64>,
    /// Global dispatch sequence number across all operators of the run.
    morsel_seq: AtomicU64,
    /// Fault injection: panic inside the morsel with this sequence number.
    panic_on_morsel: Option<u64>,
}

impl SharedRun {
    pub(crate) fn new(limit: Option<f64>, panic_on_morsel: Option<u64>) -> SharedRun {
        SharedRun {
            cancelled: AtomicBool::new(false),
            budget_tripped: AtomicBool::new(false),
            fault: Mutex::new(None),
            work_bits: AtomicU64::new(0f64.to_bits()),
            limit,
            morsel_seq: AtomicU64::new(0),
            panic_on_morsel,
        }
    }

    /// Reset the approximate accumulator to the exact meter value. Called
    /// by the coordinator after every exact charge so the approximation
    /// never drifts across operators.
    pub(crate) fn seed_work(&self, exact: f64) {
        self.work_bits.store(exact.to_bits(), Ordering::Relaxed);
    }

    /// Add `w` to the approximate accumulator; trips cancellation when the
    /// budget is exceeded beyond float-rounding doubt.
    pub(crate) fn add_approx(&self, w: f64) {
        let mut cur = self.work_bits.load(Ordering::Relaxed);
        let total = loop {
            let total = f64::from_bits(cur) + w;
            match self.work_bits.compare_exchange_weak(
                cur,
                total.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break total,
                Err(seen) => cur = seen,
            }
        };
        if let Some(lim) = self.limit {
            if total > lim * (1.0 + BUDGET_SLACK_REL) + BUDGET_SLACK_ABS {
                self.budget_tripped.store(true, Ordering::Relaxed);
                self.cancelled.store(true, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    pub(crate) fn budget_tripped(&self) -> bool {
        self.budget_tripped.load(Ordering::Relaxed)
    }

    pub(crate) fn limit(&self) -> Option<f64> {
        self.limit
    }

    /// Record a contained worker panic and stop the run.
    pub(crate) fn set_fault(&self, op: &str) {
        let mut slot = self.fault.lock();
        if slot.is_none() {
            *slot = Some(op.to_string());
        }
        self.cancelled.store(true, Ordering::Relaxed);
    }

    pub(crate) fn take_fault(&self) -> Option<String> {
        self.fault.lock().take()
    }

    /// Next global morsel sequence number.
    pub(crate) fn next_seq(&self) -> u64 {
        self.morsel_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Should the morsel with sequence number `seq` panic (fault injection)?
    pub(crate) fn should_panic(&self, seq: u64) -> bool {
        self.panic_on_morsel == Some(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_range_contiguously() {
        for n in [0usize, 1, 7, 100, 65_536, 65_537] {
            for step in [1usize, 8, 4096] {
                let ms = morsels(n, step);
                let mut expect = 0;
                for m in &ms {
                    assert_eq!(m.start, expect);
                    assert!(m.len() <= step && !m.is_empty());
                    expect = m.end;
                }
                assert_eq!(expect, n);
            }
        }
    }

    #[test]
    fn budget_trips_only_beyond_slack() {
        let s = SharedRun::new(Some(100.0), None);
        s.seed_work(0.0);
        s.add_approx(100.0);
        assert!(!s.budget_tripped(), "exactly at limit must not trip");
        s.add_approx(1.0);
        assert!(s.budget_tripped());
        assert!(s.is_cancelled());
    }

    #[test]
    fn fault_is_first_writer_wins() {
        let s = SharedRun::new(None, None);
        s.set_fault("HashJoin");
        s.set_fault("Scan");
        assert_eq!(s.take_fault().as_deref(), Some("HashJoin"));
        assert!(s.is_cancelled());
    }

    #[test]
    fn injected_panic_matches_sequence() {
        let s = SharedRun::new(None, Some(2));
        assert!(!s.should_panic(s.next_seq()));
        assert!(!s.should_panic(s.next_seq()));
        assert!(s.should_panic(s.next_seq()));
    }
}
