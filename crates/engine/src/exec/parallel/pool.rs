//! The fixed-size worker pool that drives morsel execution.
//!
//! `run_morsels` spawns scoped `std::thread` workers that pull morsel
//! indices from a shared atomic counter, run the morsel closure under
//! `catch_unwind` (a panicking worker is contained, recorded on the
//! [`SharedRun`], and cancels the run), and hand their results back tagged
//! with the morsel index. The coordinator reassembles results **in morsel
//! index order**, which is the cornerstone of the determinism argument:
//! scheduling is free-running, output order is not.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::error::{EngineError, Result};
use crate::exec::parallel::morsel::SharedRun;

/// Timing statistics of one `run_morsels` dispatch.
#[derive(Debug, Default, Clone)]
pub(crate) struct PoolStats {
    /// Wall-clock nanoseconds of each executed morsel.
    pub(crate) morsel_ns: Vec<u64>,
    /// Busy nanoseconds of each spawned worker, in spawn order. Sums to
    /// `busy_ns`; the profiler derives per-worker idle time as
    /// `elapsed_ns - worker_busy_ns[i]`.
    pub(crate) worker_busy_ns: Vec<u64>,
    /// Total busy nanoseconds summed over workers.
    pub(crate) busy_ns: u64,
    /// Wall-clock nanoseconds of the whole dispatch.
    pub(crate) elapsed_ns: u64,
    /// Number of workers actually spawned.
    pub(crate) workers: usize,
}

/// Execute `f` over every morsel on up to `threads` workers and return the
/// results **in morsel index order** together with pool timings.
///
/// Fails with [`EngineError::WorkerFault`] if a worker panicked (panic
/// contained, remaining workers drained cooperatively) and with
/// [`EngineError::WorkLimitExceeded`] if the shared approximate work
/// accumulator tripped the budget mid-run.
pub(crate) fn run_morsels<T, F>(
    threads: usize,
    morsels: &[Range<usize>],
    shared: &SharedRun,
    op: &'static str,
    f: F,
) -> Result<(Vec<T>, PoolStats)>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    // A worker's return: its locally collected `(morsel index, result,
    // nanos)` triples plus its busy time.
    type WorkerOut<T> = (Vec<(usize, T, u64)>, u64);
    let workers = threads.min(morsels.len()).max(1);
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    let per_worker: Vec<WorkerOut<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T, u64)> = Vec::new();
                    let mut busy = 0u64;
                    loop {
                        if shared.is_cancelled() {
                            break;
                        }
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= morsels.len() {
                            break;
                        }
                        let seq = shared.next_seq();
                        let range = morsels[idx].clone();
                        let t0 = Instant::now();
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                if shared.should_panic(seq) {
                                    panic!("injected fault in {op} morsel #{seq}");
                                }
                                f(idx, range)
                            }));
                        let ns = t0.elapsed().as_nanos() as u64;
                        busy += ns;
                        match outcome {
                            Ok(value) => local.push((idx, value, ns)),
                            Err(_) => {
                                shared.set_fault(op);
                                break;
                            }
                        }
                    }
                    (local, busy)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("morsel panics are contained by catch_unwind")
            })
            .collect()
    });
    if let Some(op) = shared.take_fault() {
        return Err(EngineError::WorkerFault { op });
    }
    if shared.budget_tripped() {
        return Err(EngineError::WorkLimitExceeded {
            limit: shared.limit().unwrap_or(f64::INFINITY),
        });
    }

    let mut stats = PoolStats {
        morsel_ns: Vec::with_capacity(morsels.len()),
        worker_busy_ns: Vec::with_capacity(workers),
        busy_ns: 0,
        elapsed_ns: started.elapsed().as_nanos() as u64,
        workers,
    };
    let mut ordered: Vec<Option<T>> = (0..morsels.len()).map(|_| None).collect();
    for (local, busy) in per_worker {
        stats.busy_ns += busy;
        stats.worker_busy_ns.push(busy);
        for (idx, value, ns) in local {
            stats.morsel_ns.push(ns);
            ordered[idx] = Some(value);
        }
    }
    let results = ordered
        .into_iter()
        .map(|slot| {
            slot.ok_or_else(|| EngineError::InvalidPlan("morsel dropped by pool".to_string()))
        })
        .collect::<Result<Vec<T>>>()?;
    Ok((results, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::parallel::morsel::morsels;

    #[test]
    fn results_come_back_in_morsel_order() {
        let ms = morsels(1000, 7);
        let shared = SharedRun::new(None, None);
        let (sums, stats) = run_morsels(4, &ms, &shared, "test", |_, r| {
            r.map(|i| i as u64).sum::<u64>()
        })
        .unwrap();
        let expect: Vec<u64> = ms
            .iter()
            .map(|r| r.clone().map(|i| i as u64).sum())
            .collect();
        assert_eq!(sums, expect);
        assert_eq!(stats.morsel_ns.len(), ms.len());
        assert!(stats.workers <= 4);
    }

    #[test]
    fn single_thread_pool_still_works() {
        let ms = morsels(10, 3);
        let shared = SharedRun::new(None, None);
        let (v, _) = run_morsels(1, &ms, &shared, "test", |idx, _| idx).unwrap();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn worker_panic_is_contained_and_reported() {
        let ms = morsels(100, 10);
        let shared = SharedRun::new(None, Some(0));
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = run_morsels(2, &ms, &shared, "Scan", |_, _| 0u32).unwrap_err();
        std::panic::set_hook(prev);
        assert_eq!(err, EngineError::WorkerFault { op: "Scan".into() });
    }

    #[test]
    fn budget_trip_cancels_dispatch() {
        let ms = morsels(10_000, 1);
        let shared = SharedRun::new(Some(10.0), None);
        shared.seed_work(0.0);
        let err = run_morsels(2, &ms, &shared, "Scan", |_, _| shared.add_approx(5.0)).unwrap_err();
        assert!(matches!(err, EngineError::WorkLimitExceeded { .. }));
    }
}
