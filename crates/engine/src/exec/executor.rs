//! The plan executor.
//!
//! Executes a [`PhysNode`] against a catalog, producing the count-star
//! result, the *work units* spent (the engine's deterministic latency), the
//! wall-clock time, and the true cardinality of every intermediate result —
//! the raw material for training learned components.
//!
//! # Row-ordering contract
//!
//! Every operator produces its output tuples in a **canonical, fully
//! deterministic order**, so that two executions of the same plan — on any
//! execution mode, thread count, or morsel schedule — yield byte-identical
//! [`Relation`]s. The contract, operator by operator:
//!
//! * **Scan** emits qualifying row ids in ascending base-table row order.
//! * **HashJoin** emits in probe-side-major order: output tuples are
//!   ordered by the probe (right) tuple's index, and within one probe
//!   tuple by the build (left) tuples' insertion order, which is ascending
//!   left-input order.
//! * **NestedLoopJoin** (and cross products) emit in outer-major order:
//!   by left tuple index, then right tuple index.
//! * **MergeJoin** emits by ascending key group; within a group by left
//!   sort position then right sort position. Sort positions themselves are
//!   deterministic because sort keys are disambiguated by input index.
//!
//! The parallel executor ([`crate::exec::parallel`]) preserves this order
//! by assigning contiguous input ranges (morsels) to workers and
//! concatenating per-morsel outputs in morsel index order; the
//! differential harness in `crates/testkit` asserts the equivalence on
//! every workload. Work-unit accounting follows the same contract: the
//! sequence of work charges is identical across modes, so
//! [`ExecResult::work`] is bit-identical too.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use lqo_flight::{FlightContext, FlightEvent, Producer};
use lqo_obs::trace::{GuardEvent, OperatorEvent};
use lqo_obs::ObsContext;
use lqo_prof::ProfContext;
use serde::Serialize;

use crate::catalog::Catalog;
use crate::error::{EngineError, Result};
use crate::exec::batch;
use crate::exec::compiled::{compile_pred, Compiled, KeySide};
use crate::exec::parallel::{self, ExecMode, ParallelConfig};
use crate::exec::relation::Relation;
use crate::exec::workunits::CostParams;
use crate::plan::physical::{JoinAlgo, PhysNode};
use crate::query::expr::JoinCond;
use crate::query::spj::SpjQuery;
use crate::query::table_set::TableSet;

/// Executor configuration.
#[derive(Debug, Clone, Default)]
pub struct ExecConfig {
    /// Work-unit constants and runtime effects.
    pub params: CostParams,
    /// Abort execution when accumulated work exceeds this budget. Protects
    /// experiments from catastrophically bad candidate plans (a real system
    /// would time out). The parallel executor honours the same budget via
    /// cancellation-aware morsel dispatch.
    pub max_work: Option<f64>,
    /// Execution mode: serial (default) or morsel-driven parallel.
    pub mode: ExecMode,
    /// Tuning and fault-injection knobs for the parallel mode.
    pub parallel: ParallelConfig,
}

/// Result of executing a plan.
#[derive(Debug, Clone, Serialize)]
pub struct ExecResult {
    /// The count-star answer, i.e. the query's true cardinality.
    pub count: u64,
    /// Total work units spent (deterministic latency).
    pub work: f64,
    /// Wall-clock execution time.
    pub wall: Duration,
    /// True cardinality of every operator output, bottom-up.
    pub intermediates: Vec<(TableSet, u64)>,
}

/// Deterministic work accounting with an optional abort budget.
///
/// Public so step-wise drivers (the adaptive re-optimization executor)
/// can thread the same meter through a sequence of
/// [`Executor::exec_scan_step`] / [`Executor::exec_join_step`] calls and
/// reproduce the exact serial charge sequence.
#[derive(Debug)]
pub struct WorkMeter {
    /// Accumulated work units.
    pub(crate) work: f64,
    /// Abort budget.
    pub(crate) limit: Option<f64>,
}

impl WorkMeter {
    /// A fresh meter with an optional abort budget.
    pub fn new(limit: Option<f64>) -> WorkMeter {
        WorkMeter { work: 0.0, limit }
    }

    /// Charge `w` work units; errors with
    /// [`EngineError::WorkLimitExceeded`] once the accumulated work
    /// exceeds the budget.
    pub fn add(&mut self, w: f64) -> Result<()> {
        self.work += w;
        match self.limit {
            Some(lim) if self.work > lim => Err(EngineError::WorkLimitExceeded { limit: lim }),
            _ => Ok(()),
        }
    }

    /// Accumulated work units.
    pub fn work(&self) -> f64 {
        self.work
    }

    /// The abort budget, if any.
    pub fn limit(&self) -> Option<f64> {
        self.limit
    }

    /// Budget still available (`limit - work`, floored at zero); `None`
    /// when the meter is unbudgeted.
    pub fn remaining(&self) -> Option<f64> {
        self.limit.map(|lim| (lim - self.work).max(0.0))
    }
}

pub(crate) fn join_label(algo: JoinAlgo) -> &'static str {
    match algo {
        JoinAlgo::Hash => "HashJoin",
        JoinAlgo::NestedLoop => "NestedLoopJoin",
        JoinAlgo::Merge => "MergeJoin",
    }
}

/// The plan executor. Stateless across queries; cheap to construct.
pub struct Executor<'a> {
    pub(crate) catalog: &'a Catalog,
    pub(crate) config: ExecConfig,
    pub(crate) obs: ObsContext,
    pub(crate) prof: ProfContext,
    pub(crate) flight: FlightContext,
}

impl<'a> Executor<'a> {
    /// Create an executor over a catalog.
    pub fn new(catalog: &'a Catalog, config: ExecConfig) -> Executor<'a> {
        Executor {
            catalog,
            config,
            obs: ObsContext::disabled(),
            prof: ProfContext::disabled(),
            flight: FlightContext::disabled(),
        }
    }

    /// Executor with default configuration.
    pub fn with_defaults(catalog: &'a Catalog) -> Executor<'a> {
        Executor::new(catalog, ExecConfig::default())
    }

    /// Attach an observability context; per-operator events (true rows,
    /// work units) and execution metrics are recorded on the context's
    /// current query trace.
    pub fn with_obs(mut self, obs: ObsContext) -> Executor<'a> {
        self.obs = obs;
        self
    }

    /// Attach a profiling context: execution runs under an `execute`
    /// phase with one nested phase per operator (mirroring the plan
    /// tree) carrying exact wall clock and work-unit charges, and the
    /// parallel path attributes per-morsel and per-worker busy/idle
    /// time under the operator that dispatched them.
    pub fn with_prof(mut self, prof: ProfContext) -> Executor<'a> {
        self.prof = prof;
        self
    }

    /// Attach a flight recorder; execution span boundaries, work-budget
    /// trips, and contained worker-fault degrades are published onto the
    /// black-box ring.
    pub fn with_flight(mut self, flight: FlightContext) -> Executor<'a> {
        self.flight = flight;
        self
    }

    /// The configured cost parameters.
    pub fn params(&self) -> &CostParams {
        &self.config.params
    }

    /// The configured execution mode.
    pub fn mode(&self) -> ExecMode {
        self.config.mode
    }

    /// Execute `plan` for `query`.
    pub fn execute(&self, query: &SpjQuery, plan: &PhysNode) -> Result<ExecResult> {
        self.execute_collect(query, plan).map(|(r, _)| r)
    }

    /// Execute `plan` for `query`, also returning the final output
    /// relation (tuples of base-table row ids in the canonical operator
    /// order documented on this module). This is the interface of the
    /// differential correctness harness: two executions are equivalent
    /// iff their [`ExecResult`]s and final relations are byte-identical.
    pub fn execute_collect(
        &self,
        query: &SpjQuery,
        plan: &PhysNode,
    ) -> Result<(ExecResult, Relation)> {
        // The plan must cover every table exactly once.
        let mut leaves = 0usize;
        plan.visit_bottom_up(&mut |n| {
            if matches!(n, PhysNode::Scan { .. }) {
                leaves += 1;
            }
        });
        if plan.tables() != query.all_tables() || leaves != query.num_tables() {
            return Err(EngineError::InvalidPlan(format!(
                "plan covers {} with {} scans; query has {} tables",
                plan.tables(),
                leaves,
                query.num_tables()
            )));
        }
        let _span = self.obs.span("exec.query");
        let _prof_exec = self.prof.phase("execute");
        if self.flight.is_enabled() {
            self.flight.publish(
                Producer::Exec,
                FlightEvent::Span {
                    name: "exec.query".to_string(),
                    begin: true,
                },
            );
        }
        // One detail decision per query: per-operator phases are only
        // opened on sampled queries (weighted by the stride), keeping
        // sampling-mode overhead flat. Work charges stay exact either
        // way — on unsampled queries they attribute to `execute`.
        let detail = self.prof.sample_detail();
        let start = Instant::now();
        let mut meter = WorkMeter::new(self.config.max_work);
        let mut intermediates = Vec::new();
        let mut events = Vec::new();
        // Single-threaded modes (Serial, Batched, and either parallel
        // mode clamped to one worker) run in-thread through `exec_node`,
        // which dispatches per-operator between the tuple-at-a-time and
        // batched kernels; multi-worker modes go through the morsel pool.
        let attempt = if self.config.mode.threads() > 1 {
            match parallel::exec_plan(
                self,
                query,
                plan,
                detail,
                &mut meter,
                &mut intermediates,
                &mut events,
            ) {
                Err(EngineError::WorkerFault { op }) if self.config.parallel.fallback_serial => {
                    // A worker died mid-morsel: degrade the query to the
                    // in-thread path rather than fail it. The retry
                    // restarts accounting from zero.
                    self.record_degrade(&op);
                    meter = WorkMeter::new(self.config.max_work);
                    intermediates.clear();
                    events.clear();
                    self.exec_node(
                        query,
                        plan,
                        detail,
                        &mut meter,
                        &mut intermediates,
                        &mut events,
                    )
                }
                other => other,
            }
        } else {
            self.exec_node(
                query,
                plan,
                detail,
                &mut meter,
                &mut intermediates,
                &mut events,
            )
        };
        if self.flight.is_enabled() {
            if let Err(EngineError::WorkLimitExceeded { limit }) = &attempt {
                self.flight.publish(
                    Producer::Exec,
                    FlightEvent::BudgetTrip {
                        component: "exec".to_string(),
                        budget: *limit,
                    },
                );
            }
            self.flight.publish(
                Producer::Exec,
                FlightEvent::Span {
                    name: "exec.query".to_string(),
                    begin: false,
                },
            );
        }
        match attempt {
            Ok(rel) => {
                if self.obs.is_enabled() {
                    self.obs.count("lqo.exec.queries", 1);
                    self.obs.observe("lqo.exec.work_units", meter.work);
                    self.obs.with_query(|t| t.exec.operators.extend(events));
                }
                let result = ExecResult {
                    count: rel.len() as u64,
                    work: meter.work,
                    wall: start.elapsed(),
                    intermediates,
                };
                Ok((result, rel))
            }
            Err(e) => {
                if self.obs.is_enabled() {
                    if matches!(e, EngineError::WorkLimitExceeded { .. }) {
                        self.obs.count("lqo.exec.timeouts", 1);
                        self.obs.with_query(|t| {
                            t.exec.timeout = true;
                            t.exec.operators.extend(events);
                        });
                    }
                    self.obs.count("lqo.exec.errors", 1);
                }
                Err(e)
            }
        }
    }

    /// Execute a single scan operator as a standalone step, charging
    /// `meter` exactly as [`Executor::execute`] would (same charge
    /// sequence, same row-ordering contract). This is the materialization
    /// checkpoint seam used by adaptive re-optimization: a step-wise
    /// driver runs one operator at a time in the serial post-order and
    /// inspects each materialized intermediate before continuing. The
    /// monolithic path never calls it, so the seam costs nothing when
    /// re-optimization is disabled.
    pub fn exec_scan_step(
        &self,
        query: &SpjQuery,
        pos: usize,
        meter: &mut WorkMeter,
    ) -> Result<Relation> {
        if self.config.mode.threads() > 1 {
            let before = meter.work;
            match parallel::exec_scan_step(self, query, pos, meter) {
                Err(EngineError::WorkerFault { op }) if self.config.parallel.fallback_serial => {
                    // A worker died mid-morsel: degrade this operator to
                    // the in-thread path. The retry restores the meter to
                    // the pre-operator snapshot, so the charge sequence
                    // stays byte-identical to serial.
                    self.record_degrade(&op);
                    meter.work = before;
                    self.scan_dispatch(query, pos, meter)
                }
                other => other,
            }
        } else {
            self.scan_dispatch(query, pos, meter)
        }
    }

    /// Execute a single join operator over two already-materialized
    /// inputs as a standalone step (see [`Executor::exec_scan_step`]).
    pub fn exec_join_step(
        &self,
        query: &SpjQuery,
        algo: JoinAlgo,
        left: Relation,
        right: Relation,
        meter: &mut WorkMeter,
    ) -> Result<Relation> {
        if self.config.mode.threads() > 1 {
            let before = meter.work;
            match parallel::exec_join_step(self, query, algo, left.clone(), right.clone(), meter) {
                Err(EngineError::WorkerFault { op }) if self.config.parallel.fallback_serial => {
                    self.record_degrade(&op);
                    meter.work = before;
                    self.exec_join(query, algo, left, right, meter)
                }
                other => other,
            }
        } else {
            self.exec_join(query, algo, left, right, meter)
        }
    }

    /// Note a contained parallel worker fault and the serial retry.
    fn record_degrade(&self, op: &str) {
        if self.flight.is_enabled() {
            self.flight.publish(
                Producer::Exec,
                FlightEvent::WorkerFault {
                    op: op.to_string(),
                    action: "fallback:serial".to_string(),
                },
            );
        }
        if !self.obs.is_enabled() {
            return;
        }
        self.obs.count("lqo.exec.parallel.degraded", 1);
        let op = op.to_string();
        self.obs.with_query(|t| {
            t.push_guard(GuardEvent {
                component: "exec:parallel".to_string(),
                fault: format!("worker-panic:{op}"),
                action: "fallback:serial".to_string(),
            });
        });
    }

    pub(crate) fn exec_node(
        &self,
        query: &SpjQuery,
        node: &PhysNode,
        detail: bool,
        meter: &mut WorkMeter,
        intermediates: &mut Vec<(TableSet, u64)>,
        events: &mut Vec<OperatorEvent>,
    ) -> Result<Relation> {
        // `meter.work` snapshots bracket only this node's own operator
        // (children account for themselves first), so per-operator work
        // attribution is exact even for bushy plans. The profiler phase
        // opens before recursing, so the phase tree mirrors the plan
        // tree (`execute;HashJoin;Scan`).
        let _prof_op = detail.then(|| {
            self.prof.phase_sampled(match node {
                PhysNode::Scan { .. } => "Scan",
                PhysNode::Join { algo, .. } => join_label(*algo),
            })
        });
        let (rel, op, own_work) = match node {
            PhysNode::Scan { pos } => {
                let before = meter.work;
                let rel = self.scan_dispatch(query, *pos, meter)?;
                (rel, "Scan", meter.work - before)
            }
            PhysNode::Join { algo, left, right } => {
                let l = self.exec_node(query, left, detail, meter, intermediates, events)?;
                let r = self.exec_node(query, right, detail, meter, intermediates, events)?;
                let before = meter.work;
                let rel = self.exec_join(query, *algo, l, r, meter)?;
                (rel, join_label(*algo), meter.work - before)
            }
        };
        intermediates.push((rel.tables(), rel.len() as u64));
        self.prof.charge(own_work);
        if self.obs.is_enabled() {
            events.push(OperatorEvent {
                op: op.to_string(),
                tables: rel.tables().0,
                true_rows: rel.len() as u64,
                est_rows: None,
                work: own_work,
            });
        }
        Ok(rel)
    }

    /// Route a scan to the tuple-at-a-time or batched kernel, per the
    /// configured mode. `ExecMode::BatchedParallel` reaches this on its
    /// single-threaded paths (clamped thread counts, worker-fault
    /// retries, morsel bodies recurse elsewhere) and uses the batched
    /// kernel there too — output is byte-identical either way.
    fn scan_dispatch(
        &self,
        query: &SpjQuery,
        pos: usize,
        meter: &mut WorkMeter,
    ) -> Result<Relation> {
        match self.config.mode.batch_size() {
            Some(b) => batch::scan(self, query, pos, b, meter),
            None => self.exec_scan(query, pos, meter),
        }
    }

    fn exec_scan(&self, query: &SpjQuery, pos: usize, meter: &mut WorkMeter) -> Result<Relation> {
        let table = self.catalog.table(&query.tables[pos].table)?;
        let preds = query.predicates_on(pos);
        let mut compiled = Vec::with_capacity(preds.len());
        for p in &preds {
            let col = table.column_by_name(&p.col.column)?;
            compiled.push(compile_pred(col, p));
        }
        let n = table.nrows();
        meter.add(self.config.params.scan_work(n as f64, compiled.len()))?;
        let mut out = Vec::new();
        'rows: for row in 0..n {
            for c in &compiled {
                if !c.matches(row) {
                    continue 'rows;
                }
            }
            out.push(row as u32);
        }
        Ok(Relation::from_scan(pos, out))
    }

    /// Compile the filter predicates of the scan at `pos`.
    pub(crate) fn compile_scan<'b>(
        &'b self,
        query: &SpjQuery,
        pos: usize,
    ) -> Result<(usize, Vec<Compiled<'b>>)> {
        let table = self.catalog.table(&query.tables[pos].table)?;
        let preds = query.predicates_on(pos);
        let mut compiled = Vec::with_capacity(preds.len());
        for p in &preds {
            let col = table.column_by_name(&p.col.column)?;
            compiled.push(compile_pred(col, p));
        }
        Ok((table.nrows(), compiled))
    }

    /// Resolve the key columns of `conds` on one side of a join.
    pub(crate) fn key_side<'b>(
        &'b self,
        query: &SpjQuery,
        rel: &Relation,
        conds: &[&JoinCond],
    ) -> Result<KeySide<'b>> {
        let tables = rel.tables();
        let mut cols = Vec::with_capacity(conds.len());
        for cond in conds {
            let (col_ref, pos) = {
                let lp = query.col_pos(&cond.left)?;
                if tables.contains(lp) {
                    (&cond.left, lp)
                } else {
                    let rp = query.col_pos(&cond.right)?;
                    if !tables.contains(rp) {
                        return Err(EngineError::InvalidPlan(format!(
                            "join condition {cond} does not touch relation {tables}"
                        )));
                    }
                    (&cond.right, rp)
                }
            };
            let slot = rel.slot_of(pos).ok_or_else(|| {
                EngineError::InvalidPlan(format!("table position {pos} missing from relation"))
            })?;
            let table = self.catalog.table(&query.tables[pos].table)?;
            let column = table.column_by_name(&col_ref.column)?;
            let data = column.as_int().ok_or_else(|| EngineError::TypeMismatch {
                expected: "INT join key",
                found: column.dtype().to_string(),
            })?;
            cols.push((slot, data));
        }
        Ok(KeySide { cols })
    }

    fn exec_join(
        &self,
        query: &SpjQuery,
        algo: JoinAlgo,
        left: Relation,
        right: Relation,
        meter: &mut WorkMeter,
    ) -> Result<Relation> {
        let conds = query.joins_between(left.tables(), right.tables());
        if conds.is_empty() {
            if algo != JoinAlgo::NestedLoop {
                return Err(EngineError::InvalidPlan(format!(
                    "{algo} requires at least one equi-join condition (cross products \
                     must use NestedLoopJoin)"
                )));
            }
            // Cross products are a single upfront charge plus a straight
            // emit loop; there is no batched variant to dispatch to.
            return self.cross_join(left, right, meter);
        }
        match (algo, self.config.mode.batch_size()) {
            (JoinAlgo::Hash, Some(b)) => {
                batch::join::hash_join(self, query, &conds, left, right, b, meter)
            }
            (JoinAlgo::Hash, None) => self.hash_join(query, &conds, left, right, meter),
            (JoinAlgo::NestedLoop, Some(_)) => {
                batch::join::nl_join(self, query, &conds, left, right, meter)
            }
            (JoinAlgo::NestedLoop, None) => self.nl_join(query, &conds, left, right, meter),
            (JoinAlgo::Merge, Some(_)) => {
                batch::join::merge_join(self, query, &conds, left, right, meter)
            }
            (JoinAlgo::Merge, None) => self.merge_join(query, &conds, left, right, meter),
        }
    }

    pub(crate) fn emit(out: &mut Vec<u32>, ltuple: &[u32], rtuple: &[u32]) {
        out.extend_from_slice(ltuple);
        out.extend_from_slice(rtuple);
    }

    /// The hash-join "spill" multiplier for a build side of `build_rows`.
    pub(crate) fn hash_spill(&self, build_rows: usize) -> f64 {
        if build_rows > self.config.params.hash_mem_rows {
            self.config.params.spill_factor
        } else {
            1.0
        }
    }

    /// The nested-loop cache discount for an inner side of `inner_rows`.
    pub(crate) fn nl_discount(&self, inner_rows: usize) -> f64 {
        if inner_rows <= self.config.params.nl_cache_rows {
            self.config.params.nl_cache_discount
        } else {
            1.0
        }
    }

    fn hash_join(
        &self,
        query: &SpjQuery,
        conds: &[&JoinCond],
        left: Relation,
        right: Relation,
        meter: &mut WorkMeter,
    ) -> Result<Relation> {
        let p = &self.config.params;
        let spill = self.hash_spill(left.len());
        meter
            .add((left.len() as f64 * p.hash_build + right.len() as f64 * p.hash_probe) * spill)?;

        let lkeys = self.key_side(query, &left, conds)?;
        let rkeys = self.key_side(query, &right, conds)?;
        let slots = Relation::combined_slots(&left, &right);
        let width = slots.len();
        let mut rows: Vec<u32> = Vec::new();
        let mut emitted = 0usize;

        if conds.len() == 1 {
            let mut table: HashMap<i64, Vec<u32>> = HashMap::new();
            for i in 0..left.len() {
                table
                    .entry(lkeys.single_key(left.tuple(i)))
                    .or_default()
                    .push(i as u32);
            }
            for j in 0..right.len() {
                let rt = right.tuple(j);
                if let Some(matches) = table.get(&rkeys.single_key(rt)) {
                    for &i in matches {
                        Self::emit(&mut rows, left.tuple(i as usize), rt);
                        emitted += 1;
                        if emitted.is_multiple_of(65_536) {
                            meter.add(p.output_work(65_536.0, width))?;
                        }
                    }
                }
            }
        } else {
            let mut table: HashMap<Vec<i64>, Vec<u32>> = HashMap::new();
            for i in 0..left.len() {
                table
                    .entry(lkeys.multi_key(left.tuple(i)))
                    .or_default()
                    .push(i as u32);
            }
            for j in 0..right.len() {
                let rt = right.tuple(j);
                if let Some(matches) = table.get(&rkeys.multi_key(rt)) {
                    for &i in matches {
                        Self::emit(&mut rows, left.tuple(i as usize), rt);
                        emitted += 1;
                        if emitted.is_multiple_of(65_536) {
                            meter.add(p.output_work(65_536.0, width))?;
                        }
                    }
                }
            }
        }
        meter.add(p.output_work((emitted % 65_536) as f64, width))?;
        Ok(Relation { slots, rows })
    }

    fn nl_join(
        &self,
        query: &SpjQuery,
        conds: &[&JoinCond],
        left: Relation,
        right: Relation,
        meter: &mut WorkMeter,
    ) -> Result<Relation> {
        let p = &self.config.params;
        let discount = self.nl_discount(right.len());
        // Charge pair work up front so hopeless plans abort immediately.
        meter.add(left.len() as f64 * right.len() as f64 * p.nl_pair * discount)?;

        let lkeys = self.key_side(query, &left, conds)?;
        let rkeys = self.key_side(query, &right, conds)?;
        let slots = Relation::combined_slots(&left, &right);
        let width = slots.len();
        let mut rows: Vec<u32> = Vec::new();
        let mut emitted = 0usize;
        for i in 0..left.len() {
            let lt = left.tuple(i);
            let lk = lkeys.multi_key(lt);
            for j in 0..right.len() {
                let rt = right.tuple(j);
                if lk == rkeys.multi_key(rt) {
                    Self::emit(&mut rows, lt, rt);
                    emitted += 1;
                    if emitted.is_multiple_of(65_536) {
                        meter.add(p.output_work(65_536.0, width))?;
                    }
                }
            }
        }
        meter.add(p.output_work((emitted % 65_536) as f64, width))?;
        Ok(Relation { slots, rows })
    }

    fn cross_join(
        &self,
        left: Relation,
        right: Relation,
        meter: &mut WorkMeter,
    ) -> Result<Relation> {
        let p = &self.config.params;
        let out = left.len() as f64 * right.len() as f64;
        let slots = Relation::combined_slots(&left, &right);
        let width = slots.len();
        meter.add(out * p.nl_pair + p.output_work(out, width))?;
        let mut rows = Vec::new();
        for i in 0..left.len() {
            for j in 0..right.len() {
                Self::emit(&mut rows, left.tuple(i), right.tuple(j));
            }
        }
        Ok(Relation { slots, rows })
    }

    fn merge_join(
        &self,
        query: &SpjQuery,
        conds: &[&JoinCond],
        left: Relation,
        right: Relation,
        meter: &mut WorkMeter,
    ) -> Result<Relation> {
        let p = &self.config.params;
        meter.add(
            p.sort_work(left.len() as f64)
                + p.sort_work(right.len() as f64)
                + (left.len() + right.len()) as f64 * p.merge_tuple,
        )?;

        let lkeys = self.key_side(query, &left, conds)?;
        let rkeys = self.key_side(query, &right, conds)?;
        let mut lsorted: Vec<(Vec<i64>, u32)> = (0..left.len())
            .map(|i| (lkeys.multi_key(left.tuple(i)), i as u32))
            .collect();
        let mut rsorted: Vec<(Vec<i64>, u32)> = (0..right.len())
            .map(|j| (rkeys.multi_key(right.tuple(j)), j as u32))
            .collect();
        lsorted.sort_unstable();
        rsorted.sort_unstable();
        Self::merge_phase(p, &left, &right, &lsorted, &rsorted, meter)
    }

    /// The merge phase of a merge join over pre-sorted key/index vectors.
    /// Shared with the parallel executor, whose only parallel piece is key
    /// extraction: the merge itself is inherently sequential and cheap.
    pub(crate) fn merge_phase(
        p: &CostParams,
        left: &Relation,
        right: &Relation,
        lsorted: &[(Vec<i64>, u32)],
        rsorted: &[(Vec<i64>, u32)],
        meter: &mut WorkMeter,
    ) -> Result<Relation> {
        let slots = Relation::combined_slots(left, right);
        let width = slots.len();
        let mut rows: Vec<u32> = Vec::new();
        let mut emitted = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < lsorted.len() && j < rsorted.len() {
            match lsorted[i].0.cmp(&rsorted[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Find the full equal groups on both sides.
                    let key = lsorted[i].0.clone();
                    let i_end = lsorted[i..].iter().take_while(|(k, _)| *k == key).count() + i;
                    let j_end = rsorted[j..].iter().take_while(|(k, _)| *k == key).count() + j;
                    for (_, li) in &lsorted[i..i_end] {
                        for (_, rj) in &rsorted[j..j_end] {
                            Self::emit(
                                &mut rows,
                                left.tuple(*li as usize),
                                right.tuple(*rj as usize),
                            );
                            emitted += 1;
                            if emitted.is_multiple_of(65_536) {
                                meter.add(p.output_work(65_536.0, width))?;
                            }
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        meter.add(p.output_work((emitted % 65_536) as f64, width))?;
        Ok(Relation { slots, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::expr::{CmpOp, ColRef, Predicate, TableRef};
    use crate::table::TableBuilder;
    use crate::types::Value;

    /// Two tables: `a(id)` with ids 0..10, `b(id, a_id)` where each a-row
    /// has 2 matching b-rows, plus one dangling b-row.
    fn fixture() -> (Catalog, SpjQuery) {
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("a")
                .int("id", (0..10).collect())
                .int("v", (0..10).map(|i| i * 10).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        let mut a_ids: Vec<i64> = (0..10).flat_map(|i| [i, i]).collect();
        a_ids.push(999); // dangling FK
        c.add_table(
            TableBuilder::new("b")
                .int("id", (0..21).collect())
                .int("a_id", a_ids)
                .primary_key("id")
                .build()
                .unwrap(),
        );
        let q = SpjQuery::new(
            vec![TableRef::new("a", "a"), TableRef::new("b", "b")],
            vec![JoinCond::new(
                ColRef::new("a", "id"),
                ColRef::new("b", "a_id"),
            )],
            vec![],
        );
        (c, q)
    }

    fn join_plan(algo: JoinAlgo) -> PhysNode {
        PhysNode::join(algo, PhysNode::scan(0), PhysNode::scan(1))
    }

    #[test]
    fn all_join_algorithms_agree() {
        let (c, q) = fixture();
        let ex = Executor::with_defaults(&c);
        for algo in JoinAlgo::ALL {
            let r = ex.execute(&q, &join_plan(algo)).unwrap();
            assert_eq!(r.count, 20, "algo {algo}");
        }
    }

    #[test]
    fn join_sides_are_symmetric() {
        let (c, q) = fixture();
        let ex = Executor::with_defaults(&c);
        let flipped = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(1), PhysNode::scan(0));
        assert_eq!(ex.execute(&q, &flipped).unwrap().count, 20);
    }

    #[test]
    fn predicates_filter_scans() {
        let (c, mut q) = fixture();
        q.predicates.push(Predicate::new(
            ColRef::new("a", "v"),
            CmpOp::Lt,
            Value::Int(30),
        ));
        let ex = Executor::with_defaults(&c);
        // a rows with v < 30: ids 0,1,2 -> 6 join results.
        let r = ex.execute(&q, &join_plan(JoinAlgo::Hash)).unwrap();
        assert_eq!(r.count, 6);
    }

    #[test]
    fn intermediates_recorded_bottom_up() {
        let (c, q) = fixture();
        let ex = Executor::with_defaults(&c);
        let r = ex.execute(&q, &join_plan(JoinAlgo::Hash)).unwrap();
        assert_eq!(r.intermediates.len(), 3);
        assert_eq!(r.intermediates[0], (TableSet::singleton(0), 10));
        assert_eq!(r.intermediates[1], (TableSet::singleton(1), 21));
        assert_eq!(r.intermediates[2], (TableSet::full(2), 20));
    }

    #[test]
    fn work_limit_aborts() {
        let (c, q) = fixture();
        let ex = Executor::new(
            &c,
            ExecConfig {
                max_work: Some(5.0),
                ..Default::default()
            },
        );
        let err = ex.execute(&q, &join_plan(JoinAlgo::Hash)).unwrap_err();
        assert!(matches!(err, EngineError::WorkLimitExceeded { .. }));
    }

    #[test]
    fn invalid_plan_rejected() {
        let (c, q) = fixture();
        let ex = Executor::with_defaults(&c);
        // Missing table 1.
        assert!(ex.execute(&q, &PhysNode::scan(0)).is_err());
        // Duplicate table 0.
        let dup = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(0));
        assert!(ex.execute(&q, &dup).is_err());
    }

    #[test]
    fn cross_product_requires_nested_loop() {
        let (c, mut q) = fixture();
        q.joins.clear();
        let ex = Executor::with_defaults(&c);
        assert!(ex.execute(&q, &join_plan(JoinAlgo::Hash)).is_err());
        let r = ex.execute(&q, &join_plan(JoinAlgo::NestedLoop)).unwrap();
        assert_eq!(r.count, 10 * 21);
    }

    #[test]
    fn nl_joins_cost_more_than_hash() {
        let (c, q) = fixture();
        let ex = Executor::with_defaults(&c);
        let hash = ex.execute(&q, &join_plan(JoinAlgo::Hash)).unwrap();
        let nl = ex.execute(&q, &join_plan(JoinAlgo::NestedLoop)).unwrap();
        assert!(nl.work > hash.work);
    }

    #[test]
    fn multi_condition_join() {
        // Join on two columns simultaneously.
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("x")
                .int("k1", vec![1, 1, 2])
                .int("k2", vec![1, 2, 1])
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("y")
                .int("k1", vec![1, 2])
                .int("k2", vec![2, 1])
                .build()
                .unwrap(),
        );
        let q = SpjQuery::new(
            vec![TableRef::bare("x"), TableRef::bare("y")],
            vec![
                JoinCond::new(ColRef::new("x", "k1"), ColRef::new("y", "k1")),
                JoinCond::new(ColRef::new("x", "k2"), ColRef::new("y", "k2")),
            ],
            vec![],
        );
        let ex = Executor::with_defaults(&c);
        for algo in JoinAlgo::ALL {
            let r = ex.execute(&q, &join_plan(algo)).unwrap();
            assert_eq!(r.count, 2, "algo {algo}");
        }
    }

    #[test]
    fn three_way_join_bushy_and_left_deep_agree() {
        let (mut c, _) = fixture();
        c.add_table(
            TableBuilder::new("d")
                .int("id", vec![0, 1])
                .int("a_id", vec![0, 0])
                .primary_key("id")
                .build()
                .unwrap(),
        );
        let q = SpjQuery::new(
            vec![
                TableRef::new("a", "a"),
                TableRef::new("b", "b"),
                TableRef::new("d", "d"),
            ],
            vec![
                JoinCond::new(ColRef::new("a", "id"), ColRef::new("b", "a_id")),
                JoinCond::new(ColRef::new("a", "id"), ColRef::new("d", "a_id")),
            ],
            vec![],
        );
        let ex = Executor::with_defaults(&c);
        let left_deep = PhysNode::join(
            JoinAlgo::Hash,
            PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1)),
            PhysNode::scan(2),
        );
        let other = PhysNode::join(
            JoinAlgo::Hash,
            PhysNode::join(JoinAlgo::Merge, PhysNode::scan(0), PhysNode::scan(2)),
            PhysNode::scan(1),
        );
        let a = ex.execute(&q, &left_deep).unwrap();
        let b = ex.execute(&q, &other).unwrap();
        // a.id = 0 matches 2 b-rows and 2 d-rows -> 4; other a ids contribute
        // 2 b-rows * 0 d-rows.
        assert_eq!(a.count, 4);
        assert_eq!(a.count, b.count);
    }

    #[test]
    fn text_predicate_on_scan() {
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("t")
                .int("id", vec![0, 1, 2])
                .text("s", vec!["x".into(), "y".into(), "x".into()])
                .build()
                .unwrap(),
        );
        let q = SpjQuery::new(
            vec![TableRef::bare("t")],
            vec![],
            vec![Predicate::new(
                ColRef::new("t", "s"),
                CmpOp::Eq,
                Value::Text("x".into()),
            )],
        );
        let ex = Executor::with_defaults(&c);
        assert_eq!(ex.execute(&q, &PhysNode::scan(0)).unwrap().count, 2);

        // Unknown literal matches nothing (Eq) / everything (Neq).
        let mut q2 = q.clone();
        q2.predicates[0].value = Value::Text("zzz".into());
        assert_eq!(ex.execute(&q2, &PhysNode::scan(0)).unwrap().count, 0);
        q2.predicates[0].op = CmpOp::Neq;
        assert_eq!(ex.execute(&q2, &PhysNode::scan(0)).unwrap().count, 3);
    }

    #[test]
    fn parallel_mode_matches_serial_byte_for_byte() {
        let (c, q) = fixture();
        let serial = Executor::with_defaults(&c);
        for algo in JoinAlgo::ALL {
            let plan = join_plan(algo);
            let (sr, srel) = serial.execute_collect(&q, &plan).unwrap();
            for threads in [2, 4] {
                let par = Executor::new(
                    &c,
                    ExecConfig {
                        mode: ExecMode::Parallel { threads },
                        parallel: ParallelConfig {
                            morsel_rows: 4,
                            ..Default::default()
                        },
                        ..Default::default()
                    },
                );
                let (pr, prel) = par.execute_collect(&q, &plan).unwrap();
                assert_eq!(sr.count, pr.count, "{algo} x{threads}");
                assert_eq!(sr.work.to_bits(), pr.work.to_bits(), "{algo} x{threads}");
                assert_eq!(sr.intermediates, pr.intermediates, "{algo} x{threads}");
                assert_eq!(srel.slots, prel.slots, "{algo} x{threads}");
                assert_eq!(srel.rows, prel.rows, "{algo} x{threads}");
            }
        }
    }

    #[test]
    fn profiler_attributes_operators_morsels_and_workers() {
        let (c, q) = fixture();
        let plan = join_plan(JoinAlgo::Hash);
        // Serial: operator phases mirror the plan tree, units match the
        // per-operator work the meter accounted.
        let sprof = ProfContext::enabled();
        let serial = Executor::with_defaults(&c).with_prof(sprof.clone());
        sprof.begin_query("prof-serial");
        let (sr, _) = serial.execute_collect(&q, &plan).unwrap();
        let sq = sprof.end_query().unwrap();
        let sf = &sq.profile.frames;
        assert!(sf.contains_key("execute"));
        assert_eq!(sf["execute;HashJoin"].calls, 1);
        assert_eq!(sf["execute;HashJoin;Scan"].calls, 2);
        let charged: f64 = sf.values().map(|s| s.units).sum();
        assert!(
            (charged - sr.work).abs() < 1e-9,
            "operator charges {charged} != meter {}",
            sr.work
        );

        // Parallel: same operator tree, plus morsel and per-worker
        // busy/idle attribution under the dispatching operator.
        let pprof = ProfContext::enabled();
        let par = Executor::new(
            &c,
            ExecConfig {
                mode: ExecMode::Parallel { threads: 2 },
                parallel: ParallelConfig {
                    morsel_rows: 4,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .with_prof(pprof.clone());
        pprof.begin_query("prof-parallel");
        let (pr, _) = par.execute_collect(&q, &plan).unwrap();
        let pq = pprof.end_query().unwrap();
        let pf = &pq.profile.frames;
        assert!(pf.contains_key("execute;HashJoin;Scan"));
        assert!(pf.keys().any(|k| k.ends_with(";morsel")), "{pf:?}");
        assert!(pf.keys().any(|k| k.ends_with("worker0_busy")), "{pf:?}");
        assert!(pf.keys().any(|k| k.ends_with("worker0_idle")), "{pf:?}");
        // Dual accounting is mode-independent even though wall differs.
        let pcharged: f64 = pf.values().map(|s| s.units).sum();
        assert_eq!(pr.work.to_bits(), sr.work.to_bits());
        assert!((pcharged - charged).abs() < 1e-9);
    }

    #[test]
    fn parallel_worker_fault_degrades_to_serial() {
        let (c, q) = fixture();
        let serial_count = Executor::with_defaults(&c)
            .execute(&q, &join_plan(JoinAlgo::Hash))
            .unwrap()
            .count;
        let obs = ObsContext::enabled();
        let ex = Executor::new(
            &c,
            ExecConfig {
                mode: ExecMode::Parallel { threads: 2 },
                parallel: ParallelConfig {
                    morsel_rows: 4,
                    panic_on_morsel: Some(0),
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .with_obs(obs.clone());
        obs.begin_query("degrade-test");
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the injected panic
        let r = ex.execute(&q, &join_plan(JoinAlgo::Hash)).unwrap();
        std::panic::set_hook(prev);
        let trace = obs.end_query().unwrap();
        assert_eq!(r.count, serial_count);
        assert_eq!(
            obs.metrics()
                .unwrap()
                .snapshot()
                .counter("lqo.exec.parallel.degraded"),
            Some(1)
        );
        assert!(trace
            .guard
            .iter()
            .any(|g| g.component == "exec:parallel" && g.action == "fallback:serial"));
    }

    #[test]
    fn parallel_worker_fault_errors_without_fallback() {
        let (c, q) = fixture();
        let ex = Executor::new(
            &c,
            ExecConfig {
                mode: ExecMode::Parallel { threads: 2 },
                parallel: ParallelConfig {
                    morsel_rows: 4,
                    panic_on_morsel: Some(0),
                    fallback_serial: false,
                },
                ..Default::default()
            },
        );
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = ex.execute(&q, &join_plan(JoinAlgo::Hash)).unwrap_err();
        std::panic::set_hook(prev);
        assert!(matches!(err, EngineError::WorkerFault { .. }));
    }

    #[test]
    fn parallel_respects_work_budget() {
        let (c, q) = fixture();
        let ex = Executor::new(
            &c,
            ExecConfig {
                max_work: Some(5.0),
                mode: ExecMode::Parallel { threads: 2 },
                ..Default::default()
            },
        );
        let err = ex.execute(&q, &join_plan(JoinAlgo::Hash)).unwrap_err();
        assert!(matches!(err, EngineError::WorkLimitExceeded { .. }));
    }
}
