//! Compiled predicate and join-key accessors shared by the serial and
//! parallel executors.
//!
//! Both execution paths must evaluate predicates and extract join keys
//! with *identical* semantics — the differential harness in
//! `crates/testkit` asserts byte-identical output between them — so the
//! compiled forms live here, in one place, and borrow directly from the
//! columnar base tables. Everything in this module is immutable after
//! construction and safe to share across worker threads.

use crate::column::Column;
use crate::query::expr::{CmpOp, Predicate};
use crate::types::Value;

/// Compiled single-column predicate with fast paths per column type.
pub(crate) enum Compiled<'a> {
    /// Integer column compared to an integer literal.
    Int {
        /// Column data.
        data: &'a [i64],
        /// Comparison operator.
        op: CmpOp,
        /// Literal.
        v: i64,
    },
    /// Integer column compared to a float literal.
    IntF {
        /// Column data.
        data: &'a [i64],
        /// Comparison operator.
        op: CmpOp,
        /// Literal.
        v: f64,
    },
    /// Float column compared to a numeric literal.
    Float {
        /// Column data.
        data: &'a [f64],
        /// Comparison operator.
        op: CmpOp,
        /// Literal.
        v: f64,
    },
    /// Dictionary-coded text equality / inequality.
    TextEq {
        /// Dictionary codes.
        codes: &'a [u32],
        /// Code of the literal, if present in the dictionary.
        code: Option<u32>,
        /// True for `!=`.
        negate: bool,
    },
    /// Fallback: untyped comparison through [`Value`].
    Slow {
        /// The column.
        col: &'a Column,
        /// Comparison operator.
        op: CmpOp,
        /// Literal.
        value: Value,
    },
}

impl Compiled<'_> {
    /// Does `row` satisfy the predicate?
    #[inline]
    pub(crate) fn matches(&self, row: usize) -> bool {
        match self {
            Compiled::Int { data, op, v } => op.matches(data[row].cmp(v)),
            Compiled::IntF { data, op, v } => (data[row] as f64)
                .partial_cmp(v)
                .is_some_and(|o| op.matches(o)),
            Compiled::Float { data, op, v } => {
                data[row].partial_cmp(v).is_some_and(|o| op.matches(o))
            }
            Compiled::TextEq {
                codes,
                code,
                negate,
            } => {
                let hit = code.is_some_and(|c| codes[row] == c);
                hit != *negate
            }
            Compiled::Slow { col, op, value } => {
                col.value(row).compare(value).is_some_and(|o| op.matches(o))
            }
        }
    }
}

/// Compile `pred` against `col`, choosing the fastest evaluation path.
pub(crate) fn compile_pred<'a>(col: &'a Column, pred: &Predicate) -> Compiled<'a> {
    match (col, &pred.value, pred.op) {
        (Column::Int(data), Value::Int(v), op) => Compiled::Int { data, op, v: *v },
        (Column::Int(data), Value::Float(v), op) => Compiled::IntF { data, op, v: *v },
        (Column::Float(data), Value::Int(v), op) => Compiled::Float {
            data,
            op,
            v: *v as f64,
        },
        (Column::Float(data), Value::Float(v), op) => Compiled::Float { data, op, v: *v },
        (Column::Text { dict: _, codes }, Value::Text(s), CmpOp::Eq) => Compiled::TextEq {
            codes,
            code: col.text_code(s),
            negate: false,
        },
        (Column::Text { dict: _, codes }, Value::Text(s), CmpOp::Neq) => Compiled::TextEq {
            codes,
            code: col.text_code(s),
            negate: true,
        },
        _ => Compiled::Slow {
            col,
            op: pred.op,
            value: pred.value.clone(),
        },
    }
}

/// One side of a set of join conditions: for each condition, the slot in
/// the relation's tuple layout and the integer column to read the key from.
pub(crate) struct KeySide<'a> {
    /// `(slot, column data)` per condition.
    pub(crate) cols: Vec<(usize, &'a [i64])>,
}

impl KeySide<'_> {
    /// Key of a single-condition join for `tuple`.
    #[inline]
    pub(crate) fn single_key(&self, tuple: &[u32]) -> i64 {
        let (slot, data) = self.cols[0];
        data[tuple[slot] as usize]
    }

    /// Composite key of a multi-condition join for `tuple`.
    pub(crate) fn multi_key(&self, tuple: &[u32]) -> Vec<i64> {
        self.cols
            .iter()
            .map(|&(slot, data)| data[tuple[slot] as usize])
            .collect()
    }
}
