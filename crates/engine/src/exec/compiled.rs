//! Compiled predicate and join-key accessors shared by the serial and
//! parallel executors.
//!
//! Both execution paths must evaluate predicates and extract join keys
//! with *identical* semantics — the differential harness in
//! `crates/testkit` asserts byte-identical output between them — so the
//! compiled forms live here, in one place, and borrow directly from the
//! columnar base tables. Everything in this module is immutable after
//! construction and safe to share across worker threads.

use crate::column::Column;
use crate::query::expr::{CmpOp, Predicate};
use crate::types::Value;

/// Compiled single-column predicate with fast paths per column type.
pub(crate) enum Compiled<'a> {
    /// Integer column compared to an integer literal.
    Int {
        /// Column data.
        data: &'a [i64],
        /// Comparison operator.
        op: CmpOp,
        /// Literal.
        v: i64,
    },
    /// Integer column compared to a float literal.
    IntF {
        /// Column data.
        data: &'a [i64],
        /// Comparison operator.
        op: CmpOp,
        /// Literal.
        v: f64,
    },
    /// Float column compared to a numeric literal.
    Float {
        /// Column data.
        data: &'a [f64],
        /// Comparison operator.
        op: CmpOp,
        /// Literal.
        v: f64,
    },
    /// Dictionary-coded text equality / inequality.
    TextEq {
        /// Dictionary codes.
        codes: &'a [u32],
        /// Code of the literal, if present in the dictionary.
        code: Option<u32>,
        /// True for `!=`.
        negate: bool,
    },
    /// Fallback: untyped comparison through [`Value`].
    Slow {
        /// The column.
        col: &'a Column,
        /// Comparison operator.
        op: CmpOp,
        /// Literal.
        value: Value,
    },
}

impl Compiled<'_> {
    /// Does `row` satisfy the predicate?
    #[inline]
    pub(crate) fn matches(&self, row: usize) -> bool {
        match self {
            Compiled::Int { data, op, v } => op.matches(data[row].cmp(v)),
            Compiled::IntF { data, op, v } => (data[row] as f64)
                .partial_cmp(v)
                .is_some_and(|o| op.matches(o)),
            Compiled::Float { data, op, v } => {
                data[row].partial_cmp(v).is_some_and(|o| op.matches(o))
            }
            Compiled::TextEq {
                codes,
                code,
                negate,
            } => {
                let hit = code.is_some_and(|c| codes[row] == c);
                hit != *negate
            }
            Compiled::Slow { col, op, value } => {
                col.value(row).compare(value).is_some_and(|o| op.matches(o))
            }
        }
    }
}

/// Append the rows of `range` that satisfy `f` to `out`.
#[inline]
fn select_range(range: std::ops::Range<usize>, out: &mut Vec<u32>, f: impl Fn(usize) -> bool) {
    for row in range {
        if f(row) {
            out.push(row as u32);
        }
    }
}

/// In-place compaction of a selection vector: keep the rows satisfying `f`.
#[inline]
fn compact_sel(sel: &mut Vec<u32>, f: impl Fn(usize) -> bool) {
    let mut w = 0usize;
    for i in 0..sel.len() {
        let row = sel[i];
        if f(row as usize) {
            sel[w] = row;
            w += 1;
        }
    }
    sel.truncate(w);
}

impl Compiled<'_> {
    /// Batched first-predicate kernel: append the row ids in `range` that
    /// satisfy the predicate to `out` (ascending order). The `match` on
    /// the compiled form happens once per batch instead of once per row,
    /// so each arm is a tight loop over one typed column.
    pub(crate) fn filter_range(&self, range: std::ops::Range<usize>, out: &mut Vec<u32>) {
        match self {
            Compiled::Int { data, op, v } => {
                select_range(range, out, |r| op.matches(data[r].cmp(v)))
            }
            Compiled::IntF { data, op, v } => select_range(range, out, |r| {
                (data[r] as f64)
                    .partial_cmp(v)
                    .is_some_and(|o| op.matches(o))
            }),
            Compiled::Float { data, op, v } => select_range(range, out, |r| {
                data[r].partial_cmp(v).is_some_and(|o| op.matches(o))
            }),
            Compiled::TextEq {
                codes,
                code,
                negate,
            } => select_range(range, out, |r| {
                code.is_some_and(|c| codes[r] == c) != *negate
            }),
            Compiled::Slow { col, op, value } => select_range(range, out, |r| {
                col.value(r).compare(value).is_some_and(|o| op.matches(o))
            }),
        }
    }

    /// Batched residual-predicate kernel: compact the selection vector
    /// `sel` in place, keeping only rows that also satisfy this
    /// predicate. Row order is preserved, so a chain of `filter_range`
    /// then `filter_sel` calls selects exactly the rows the serial
    /// per-row conjunction does, in the same order.
    pub(crate) fn filter_sel(&self, sel: &mut Vec<u32>) {
        match self {
            Compiled::Int { data, op, v } => compact_sel(sel, |r| op.matches(data[r].cmp(v))),
            Compiled::IntF { data, op, v } => compact_sel(sel, |r| {
                (data[r] as f64)
                    .partial_cmp(v)
                    .is_some_and(|o| op.matches(o))
            }),
            Compiled::Float { data, op, v } => compact_sel(sel, |r| {
                data[r].partial_cmp(v).is_some_and(|o| op.matches(o))
            }),
            Compiled::TextEq {
                codes,
                code,
                negate,
            } => compact_sel(sel, |r| code.is_some_and(|c| codes[r] == c) != *negate),
            Compiled::Slow { col, op, value } => compact_sel(sel, |r| {
                col.value(r).compare(value).is_some_and(|o| op.matches(o))
            }),
        }
    }
}

/// Compile `pred` against `col`, choosing the fastest evaluation path.
pub(crate) fn compile_pred<'a>(col: &'a Column, pred: &Predicate) -> Compiled<'a> {
    match (col, &pred.value, pred.op) {
        (Column::Int(data), Value::Int(v), op) => Compiled::Int { data, op, v: *v },
        (Column::Int(data), Value::Float(v), op) => Compiled::IntF { data, op, v: *v },
        (Column::Float(data), Value::Int(v), op) => Compiled::Float {
            data,
            op,
            v: *v as f64,
        },
        (Column::Float(data), Value::Float(v), op) => Compiled::Float { data, op, v: *v },
        (Column::Text { dict: _, codes }, Value::Text(s), CmpOp::Eq) => Compiled::TextEq {
            codes,
            code: col.text_code(s),
            negate: false,
        },
        (Column::Text { dict: _, codes }, Value::Text(s), CmpOp::Neq) => Compiled::TextEq {
            codes,
            code: col.text_code(s),
            negate: true,
        },
        _ => Compiled::Slow {
            col,
            op: pred.op,
            value: pred.value.clone(),
        },
    }
}

/// One side of a set of join conditions: for each condition, the slot in
/// the relation's tuple layout and the integer column to read the key from.
pub(crate) struct KeySide<'a> {
    /// `(slot, column data)` per condition.
    pub(crate) cols: Vec<(usize, &'a [i64])>,
}

impl KeySide<'_> {
    /// Key of a single-condition join for `tuple`.
    #[inline]
    pub(crate) fn single_key(&self, tuple: &[u32]) -> i64 {
        let (slot, data) = self.cols[0];
        data[tuple[slot] as usize]
    }

    /// Composite key of a multi-condition join for `tuple`.
    pub(crate) fn multi_key(&self, tuple: &[u32]) -> Vec<i64> {
        self.cols
            .iter()
            .map(|&(slot, data)| data[tuple[slot] as usize])
            .collect()
    }
}
