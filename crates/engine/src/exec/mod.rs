//! Plan execution: physical operators over row-id relations, a work-unit
//! accounting model, and the true-cardinality oracle.

pub mod batch;
pub(crate) mod compiled;
pub mod executor;
pub mod oracle;
pub mod parallel;
pub mod relation;
pub mod workunits;

pub use executor::{ExecConfig, ExecResult, Executor, WorkMeter};
pub use oracle::TrueCardOracle;
pub use parallel::{ExecMode, ParallelConfig};
pub use relation::Relation;
pub use workunits::CostParams;
