//! Columnar chunks of intermediate relations.
//!
//! A [`crate::exec::relation::Relation`] stores its tuples row-major
//! (`rows[i * width + slot]`), which is the right layout for emitting
//! joined output but the wrong one for tight kernel loops: reading one
//! slot across many tuples strides through memory. [`ColumnBatch`]
//! transposes a contiguous tuple range into one dense `Vec<u32>` of
//! base-table row ids **per slot**, so key gathering and comparisons run
//! as sequential passes over flat vectors. Batches never reorder tuples —
//! column `s`, position `i` is exactly `rel.tuple(range.start + i)[s]` —
//! which is what keeps every batched operator's output byte-identical to
//! the serial reference.

use std::ops::Range;

use crate::exec::relation::Relation;

/// A columnar chunk: the tuples of one contiguous relation range,
/// decomposed into per-slot row-id vectors.
#[derive(Debug)]
pub(crate) struct ColumnBatch {
    /// One dense row-id vector per slot of the source relation, in the
    /// relation's slot order.
    cols: Vec<Vec<u32>>,
    /// Number of tuples in the chunk.
    len: usize,
}

impl ColumnBatch {
    /// Transpose `rel.tuple(i)` for `i` in `range` into columns.
    pub(crate) fn from_relation(rel: &Relation, range: Range<usize>) -> ColumnBatch {
        let w = rel.width();
        let len = range.len();
        let mut cols: Vec<Vec<u32>> = (0..w).map(|_| Vec::with_capacity(len)).collect();
        let flat = &rel.rows[range.start * w..range.end * w];
        for tuple in flat.chunks_exact(w.max(1)) {
            for (s, &id) in tuple.iter().enumerate() {
                cols[s].push(id);
            }
        }
        ColumnBatch { cols, len }
    }

    /// Number of tuples in the chunk.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The dense row-id column of `slot`.
    pub(crate) fn col(&self, slot: usize) -> &[u32] {
        &self.cols[slot]
    }

    /// Gather the `i64` key values of `slot` from a base-table column:
    /// `out[i] = data[col(slot)[i]]`. The tight gather loop is the
    /// batched replacement for per-tuple `KeySide::single_key` calls.
    pub(crate) fn gather_i64(&self, slot: usize, data: &[i64], out: &mut Vec<i64>) {
        out.clear();
        out.reserve(self.len);
        for &id in self.col(slot) {
            out.push(data[id as usize]);
        }
    }
}

/// Gather key values for the tuples of `range` in one pass:
/// `out[i] = data[rel.tuple(range.start + i)[slot]]`. The morsel-parallel
/// batched paths gather per-morsel ranges and concatenate in morsel
/// order, which equals the whole-column gather.
pub(crate) fn gather_key_range(
    rel: &Relation,
    slot: usize,
    data: &[i64],
    range: Range<usize>,
) -> Vec<i64> {
    let w = rel.width().max(1);
    let mut out = Vec::with_capacity(range.len());
    for tuple in rel.rows[range.start * w..range.end * w].chunks_exact(w) {
        out.push(data[tuple[slot] as usize]);
    }
    out
}

/// Gather key values for every tuple of a whole relation (one pass, no
/// chunking): `out[i] = data[rel.tuple(i)[slot]]`. Used when an operator
/// wants the full key column up front (hash-join build, the nested-loop
/// inner side) rather than batch by batch.
pub(crate) fn gather_key_column(rel: &Relation, slot: usize, data: &[i64]) -> Vec<i64> {
    gather_key_range(rel, slot, data, 0..rel.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        Relation {
            slots: vec![0, 2],
            rows: vec![1, 10, 2, 20, 3, 30, 4, 40],
        }
    }

    #[test]
    fn transpose_matches_row_major_tuples() {
        let r = rel();
        let b = ColumnBatch::from_relation(&r, 1..3);
        assert_eq!(b.len(), 2);
        assert_eq!(b.col(0), &[2, 3]);
        assert_eq!(b.col(1), &[20, 30]);
        for i in 0..b.len() {
            let t = r.tuple(1 + i);
            assert_eq!(b.col(0)[i], t[0]);
            assert_eq!(b.col(1)[i], t[1]);
        }
    }

    #[test]
    fn empty_range_is_empty_batch() {
        let r = rel();
        let b = ColumnBatch::from_relation(&r, 2..2);
        assert_eq!(b.len(), 0);
        assert!(b.col(0).is_empty());
    }

    #[test]
    fn gather_reads_base_column_through_row_ids() {
        let r = rel();
        let data: Vec<i64> = (0..50).map(|i| i * 100).collect();
        let b = ColumnBatch::from_relation(&r, 0..4);
        let mut keys = Vec::new();
        b.gather_i64(1, &data, &mut keys);
        assert_eq!(keys, vec![1000, 2000, 3000, 4000]);
        assert_eq!(gather_key_column(&r, 1, &data), keys);
    }
}
