//! Vectorized columnar batch execution.
//!
//! The serial executor processes one tuple at a time: every row pays the
//! full interpretation overhead — a `match` on the compiled predicate
//! form, a bounds-checked tuple borrow, a `Vec<i64>` composite-key
//! allocation per join pair. [`crate::exec::parallel::ExecMode::Batched`]
//! replaces those inner loops with kernels that amortize the overhead
//! over a batch of `batch_size` tuples:
//!
//! * **Scan** evaluates the first predicate over a contiguous row range
//!   into a *selection vector* (ascending qualifying row ids) and each
//!   residual predicate as an in-place compaction of that vector
//!   ([`crate::exec::compiled::Compiled::filter_range`] /
//!   [`filter_sel`](crate::exec::compiled::Compiled::filter_sel)) — the
//!   predicate dispatch runs once per batch, not once per row.
//! * **Joins** gather key columns out of the row-major
//!   [`Relation`] via [`column::ColumnBatch`] and run build/probe over
//!   flat arrays ([`kernels::KeyTable`]); see [`join`].
//!
//! # Byte-identity with the serial reference
//!
//! Batched execution is behind the `ExecMode` seam and must be
//! observationally identical to `ExecMode::Serial` — the testkit
//! differential harness asserts it on every workload. Three invariants
//! deliver that:
//!
//! 1. **Order**: kernels never reorder tuples. Selection vectors are
//!    ascending; probe output is probe-major with ascending build rows
//!    per probe tuple; batches are contiguous input ranges processed in
//!    order.
//! 2. **Work**: the serial executor charges its meter in a fixed cadence
//!    (per-operator upfront work, then output work once per 65 536
//!    emitted tuples, then the remainder). Batched operators replay the
//!    exact same `f64` additions in the same order via [`ChargeCadence`]
//!    — f64 addition does not associate, so summing per batch would
//!    drift by ulps. Equal charge sequences also mean budget trips fire
//!    at the same charge, producing identical
//!    [`EngineError::WorkLimitExceeded`] errors; the only divergence is
//!    internal (a batch may finish being *materialized* before the trip
//!    is noticed, bounded by one batch of discarded output).
//! 3. **Semantics**: predicate kernels reuse the very comparison
//!    expressions of the serial `Compiled::matches`, so NaN-laden float
//!    predicates and dictionary text comparisons agree bit-for-bit.
//!
//! [`EngineError::WorkLimitExceeded`]: crate::error::EngineError::WorkLimitExceeded

pub(crate) mod column;
pub(crate) mod join;
pub(crate) mod kernels;

use crate::error::Result;
use crate::exec::executor::{Executor, WorkMeter};
use crate::exec::relation::Relation;
use crate::exec::workunits::CostParams;
use crate::query::spj::SpjQuery;

/// Default rows per batch when `ExecMode::Batched` / `BatchedParallel`
/// is selected without an explicit size (`LQO_EXEC_MODE=batched`).
/// 1024 row ids keep a batch's selection vector and gathered key columns
/// comfortably inside L1 while amortizing per-batch dispatch to noise.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Replays the serial executor's output-work charge cadence.
///
/// The serial row loop charges `output_work(65_536, width)` every time
/// the emitted-row counter crosses a multiple of 65 536, and
/// `output_work(emitted % 65_536, width)` once at operator end. Batched
/// operators count emitted rows per batch and feed them through
/// [`ChargeCadence::bump`], which issues exactly the crossing charges the
/// serial loop would have issued — same values, same order — so
/// accumulated work stays bit-identical and budget trips raise the same
/// error at the same charge.
#[derive(Debug, Default)]
pub(crate) struct ChargeCadence {
    /// Output tuples emitted so far.
    emitted: usize,
    /// Tuples already covered by full-block charges.
    charged: usize,
}

impl ChargeCadence {
    /// A fresh cadence for one operator.
    pub(crate) fn new() -> ChargeCadence {
        ChargeCadence::default()
    }

    /// Record `n` newly emitted tuples, issuing any 65 536-block charges
    /// the serial loop would have issued while emitting them.
    pub(crate) fn bump(
        &mut self,
        n: usize,
        meter: &mut WorkMeter,
        p: &CostParams,
        width: usize,
    ) -> Result<()> {
        self.emitted += n;
        while self.charged + 65_536 <= self.emitted {
            self.charged += 65_536;
            meter.add(p.output_work(65_536.0, width))?;
        }
        Ok(())
    }

    /// Issue the serial end-of-operator remainder charge.
    pub(crate) fn finish(self, meter: &mut WorkMeter, p: &CostParams, width: usize) -> Result<()> {
        meter.add(p.output_work((self.emitted % 65_536) as f64, width))
    }
}

/// Batched scan: selection-vector filtering over contiguous row ranges.
///
/// Charges `scan_work` upfront exactly as the serial scan does (the scan
/// has no output cadence), then processes the table in `batch`-row
/// ranges: the first predicate fills a selection vector for the range,
/// each residual predicate compacts it in place, and surviving row ids —
/// still ascending — extend the output.
pub(crate) fn scan(
    ex: &Executor,
    query: &SpjQuery,
    pos: usize,
    batch: usize,
    meter: &mut WorkMeter,
) -> Result<Relation> {
    let (n, compiled) = ex.compile_scan(query, pos)?;
    meter.add(ex.params().scan_work(n as f64, compiled.len()))?;
    let batch = batch.max(1);
    let mut out: Vec<u32> = Vec::new();
    let mut sel: Vec<u32> = Vec::with_capacity(batch.min(n.max(1)));
    for start in (0..n).step_by(batch) {
        let end = (start + batch).min(n);
        match compiled.split_first() {
            // No predicates: the whole range qualifies.
            None => out.extend(start as u32..end as u32),
            Some((first, rest)) => {
                sel.clear();
                first.filter_range(start..end, &mut sel);
                for c in rest {
                    if sel.is_empty() {
                        break;
                    }
                    c.filter_sel(&mut sel);
                }
                out.extend_from_slice(&sel);
            }
        }
    }
    Ok(Relation::from_scan(pos, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::error::EngineError;
    use crate::exec::compiled::compile_pred;
    use crate::exec::executor::{ExecConfig, Executor};
    use crate::exec::parallel::ExecMode;
    use crate::plan::physical::{JoinAlgo, PhysNode};
    use crate::query::expr::{CmpOp, ColRef, JoinCond, Predicate, TableRef};
    use crate::query::spj::SpjQuery;
    use crate::table::TableBuilder;
    use crate::types::Value;

    fn batched(c: &Catalog, batch_size: usize) -> Executor<'_> {
        Executor::new(
            c,
            ExecConfig {
                mode: ExecMode::Batched { batch_size },
                ..Default::default()
            },
        )
    }

    /// Assert serial and batched agree byte-for-byte (or error-for-error)
    /// on `plan`, across a spread of batch sizes.
    fn assert_modes_agree(c: &Catalog, q: &SpjQuery, plan: &PhysNode, sizes: &[usize]) {
        let serial = Executor::with_defaults(c).execute_collect(q, plan);
        for &b in sizes {
            let got = batched(c, b).execute_collect(q, plan);
            match (&serial, &got) {
                (Ok((sr, srel)), Ok((br, brel))) => {
                    assert_eq!(sr.count, br.count, "batch {b}");
                    assert_eq!(sr.work.to_bits(), br.work.to_bits(), "batch {b}");
                    assert_eq!(sr.intermediates, br.intermediates, "batch {b}");
                    assert_eq!(srel.slots, brel.slots, "batch {b}");
                    assert_eq!(srel.rows, brel.rows, "batch {b}");
                }
                (Err(se), Err(be)) => assert_eq!(se, be, "batch {b}"),
                (s, g) => panic!("mode mismatch at batch {b}: serial {s:?} vs batched {g:?}"),
            }
        }
    }

    /// `a(id, v)` x `b(id, a_id)`: each a-row has 2 matching b-rows.
    fn fixture() -> (Catalog, SpjQuery) {
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("a")
                .int("id", (0..10).collect())
                .int("v", (0..10).map(|i| i * 10).collect())
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("b")
                .int("id", (0..20).collect())
                .int("a_id", (0..10).flat_map(|i| [i, i]).collect())
                .build()
                .unwrap(),
        );
        let q = SpjQuery::new(
            vec![TableRef::new("a", "a"), TableRef::new("b", "b")],
            vec![JoinCond::new(
                ColRef::new("a", "id"),
                ColRef::new("b", "a_id"),
            )],
            vec![],
        );
        (c, q)
    }

    const SIZES: &[usize] = &[1, 3, 7, 64, 100_000];

    #[test]
    fn batched_joins_match_serial_for_all_algorithms_and_batch_sizes() {
        // Batch sizes of 1, below, at, and far above the row count.
        let (c, q) = fixture();
        for algo in JoinAlgo::ALL {
            let plan = PhysNode::join(algo, PhysNode::scan(0), PhysNode::scan(1));
            assert_modes_agree(&c, &q, &plan, SIZES);
        }
    }

    #[test]
    fn empty_relations_flow_through_batched_operators() {
        let (c, mut q) = fixture();
        // All-false predicate: the a-side scan yields zero rows, so every
        // join sees an empty build/outer side.
        q.predicates.push(Predicate::new(
            ColRef::new("a", "v"),
            CmpOp::Lt,
            Value::Int(0),
        ));
        for algo in JoinAlgo::ALL {
            let plan = PhysNode::join(algo, PhysNode::scan(0), PhysNode::scan(1));
            assert_modes_agree(&c, &q, &plan, SIZES);
            let (r, rel) = batched(&c, 4).execute_collect(&q, &plan).unwrap();
            assert_eq!(r.count, 0);
            assert!(rel.is_empty());
        }
    }

    #[test]
    fn selection_vector_boundary_cases() {
        let col = crate::column::Column::Int((0..10).collect());
        let all = |op, v| {
            let p = Predicate::new(ColRef::new("t", "c"), op, Value::Int(v));
            compile_pred(&col, &p)
        };
        // All-true over a range.
        let mut sel = Vec::new();
        all(CmpOp::Ge, 0).filter_range(0..10, &mut sel);
        assert_eq!(sel, (0u32..10).collect::<Vec<_>>());
        // All-false compaction empties the vector.
        all(CmpOp::Lt, 0).filter_sel(&mut sel);
        assert!(sel.is_empty());
        // Compacting an empty vector is a no-op.
        all(CmpOp::Ge, 0).filter_sel(&mut sel);
        assert!(sel.is_empty());
        // Empty range produces an empty vector.
        all(CmpOp::Ge, 0).filter_range(5..5, &mut sel);
        assert!(sel.is_empty());
        // Sub-range offsets are absolute row ids, order preserved.
        all(CmpOp::Neq, 8).filter_range(7..10, &mut sel);
        assert_eq!(sel, vec![7, 9]);
        // Residual compaction keeps relative order.
        let mut sel: Vec<u32> = (0..10).collect();
        all(CmpOp::Gt, 4).filter_sel(&mut sel);
        assert_eq!(sel, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn nan_float_predicates_agree_with_serial() {
        // NaN never satisfies a comparison (partial_cmp is None), on both
        // paths — including Neq, where NaN rows are *excluded*, matching
        // the serial scan's semantics exactly.
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("t")
                .int("id", (0..6).collect())
                .float("x", vec![1.0, f64::NAN, -3.0, f64::NAN, 0.0, 9.5])
                .build()
                .unwrap(),
        );
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Eq, CmpOp::Neq, CmpOp::Gt] {
            let q = SpjQuery::new(
                vec![TableRef::bare("t")],
                vec![],
                vec![Predicate::new(ColRef::new("t", "x"), op, Value::Float(0.0))],
            );
            assert_modes_agree(&c, &q, &PhysNode::scan(0), SIZES);
        }
    }

    #[test]
    fn float_join_keys_error_identically() {
        // Join keys are INT by contract; a float key (NaN or not) is a
        // TypeMismatch on the serial path and must be the same error —
        // not a panic, not a wrong answer — on every batched path.
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("l")
                .float("k", vec![1.0, f64::NAN])
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("r")
                .float("k", vec![1.0, 2.0])
                .build()
                .unwrap(),
        );
        let q = SpjQuery::new(
            vec![TableRef::bare("l"), TableRef::bare("r")],
            vec![JoinCond::new(ColRef::new("l", "k"), ColRef::new("r", "k"))],
            vec![],
        );
        for algo in JoinAlgo::ALL {
            let plan = PhysNode::join(algo, PhysNode::scan(0), PhysNode::scan(1));
            let serial = Executor::with_defaults(&c).execute(&q, &plan).unwrap_err();
            assert!(matches!(serial, EngineError::TypeMismatch { .. }));
            for &b in SIZES {
                assert_eq!(batched(&c, b).execute(&q, &plan).unwrap_err(), serial);
            }
        }
    }

    #[test]
    fn budget_trips_mid_batch_match_serial() {
        // A skewed join emitting >65 536 tuples, so the output cadence
        // issues full-block charges; sweep budgets so trips land on the
        // upfront charge, mid-cadence (inside a batch), and the
        // remainder. Every cell must agree with serial on Ok/Err, the
        // error value, and (when Ok) bit-exact work.
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("l")
                .int("k", vec![0; 1000])
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("r")
                .int("k", vec![0; 100])
                .build()
                .unwrap(),
        );
        let q = SpjQuery::new(
            vec![TableRef::bare("l"), TableRef::bare("r")],
            vec![JoinCond::new(ColRef::new("l", "k"), ColRef::new("r", "k"))],
            vec![],
        );
        let plan = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1));
        let total = Executor::with_defaults(&c).execute(&q, &plan).unwrap().work;
        for frac in [0.001, 0.3, 0.6, 0.9, 0.999] {
            let budget = Some(total * frac);
            let serial = Executor::new(
                &c,
                ExecConfig {
                    max_work: budget,
                    ..Default::default()
                },
            )
            .execute(&q, &plan);
            let serial_err = serial.unwrap_err();
            assert!(matches!(serial_err, EngineError::WorkLimitExceeded { .. }));
            for &b in &[1usize, 7, 64, 1024] {
                let got = Executor::new(
                    &c,
                    ExecConfig {
                        max_work: budget,
                        mode: ExecMode::Batched { batch_size: b },
                        ..Default::default()
                    },
                )
                .execute(&q, &plan);
                assert_eq!(got.unwrap_err(), serial_err, "frac {frac} batch {b}");
            }
        }
    }

    #[test]
    fn charge_cadence_replays_serial_blocks() {
        let p = CostParams::default();
        let width = 2;
        // Serial reference: charge per emitted row at 65 536 multiples.
        let mut serial = WorkMeter::new(None);
        let mut emitted = 0usize;
        for _ in 0..150_000 {
            emitted += 1;
            if emitted.is_multiple_of(65_536) {
                serial.add(p.output_work(65_536.0, width)).unwrap();
            }
        }
        serial
            .add(p.output_work((emitted % 65_536) as f64, width))
            .unwrap();
        // Cadence replay in uneven lumps, including lumps spanning more
        // than one block boundary.
        let mut meter = WorkMeter::new(None);
        let mut cadence = ChargeCadence::new();
        for lump in [1usize, 65_535, 2, 70_000, 14_462] {
            cadence.bump(lump, &mut meter, &p, width).unwrap();
        }
        cadence.finish(&mut meter, &p, width).unwrap();
        assert_eq!(meter.work().to_bits(), serial.work().to_bits());
    }
}
