//! Batched join kernels: the columnar build/probe hash table.
//!
//! The serial hash join builds a `HashMap<i64, Vec<u32>>` (or
//! `HashMap<Vec<i64>, Vec<u32>>` for multi-condition joins), which costs a
//! heap allocation per distinct key and — for composite keys — a `Vec`
//! allocation per *tuple* on both sides. [`KeyTable`] replaces it with
//! three flat arrays: an open-addressing slot array of chain heads, a
//! `next` chain array indexed by build row, and the gathered key values
//! themselves. Build and probe are tight loops over those arrays with no
//! per-row allocation.
//!
//! # Determinism
//!
//! Probe results must reproduce the serial emit order exactly: for one
//! probe tuple, matching build rows come out in **ascending build-input
//! order** (the serial `HashMap` pushes build rows into each key's `Vec`
//! in input order). `KeyTable` achieves the same order by inserting build
//! rows in *reverse* and prepending each to its key's chain — walking a
//! chain head-to-tail then yields ascending build rows. The hash function
//! only decides which slot a chain lives in, never the order within a
//! chain or across probes, so output bytes are independent of it.

/// Sentinel for "no row" in chain heads and links.
const NONE: u32 = u32::MAX;

/// An open-addressing hash table over gathered integer join keys,
/// supporting composite keys of any arity (`stride` ≥ 1).
pub(crate) struct KeyTable {
    /// Key arity (number of join conditions).
    stride: usize,
    /// Flattened build-side keys: row `i` occupies
    /// `keys[i * stride..(i + 1) * stride]`.
    keys: Vec<i64>,
    /// Chain head (a build row id) per slot; `NONE` marks an empty slot.
    heads: Vec<u32>,
    /// Chain link per build row; `NONE` terminates a chain.
    next: Vec<u32>,
    /// Slot-index mask (`capacity - 1`, capacity a power of two).
    mask: usize,
}

impl KeyTable {
    /// Build over gathered key columns (one column per join condition, all
    /// of equal length = the build-side row count).
    pub(crate) fn build(columns: &[Vec<i64>]) -> KeyTable {
        let stride = columns.len();
        let n = columns.first().map_or(0, Vec::len);
        debug_assert!(columns.iter().all(|c| c.len() == n));
        // Flatten row-major so one probe comparison reads `stride`
        // adjacent values.
        let mut keys = Vec::with_capacity(n * stride);
        for i in 0..n {
            for col in columns {
                keys.push(col[i]);
            }
        }
        // Load factor <= 0.5 keeps linear-probe runs short and guarantees
        // insert termination.
        let capacity = (2 * n).next_power_of_two().max(16);
        let mut table = KeyTable {
            stride,
            keys,
            heads: vec![NONE; capacity],
            next: vec![NONE; n],
            mask: capacity - 1,
        };
        // Reverse-order insertion with chain prepend: the final chain of
        // each key lists build rows in ascending input order (see module
        // docs — this is what reproduces the serial emit order).
        for i in (0..n).rev() {
            table.insert(i as u32);
        }
        table
    }

    /// The key of build row `i`.
    #[inline]
    fn key_of(&self, i: u32) -> &[i64] {
        let at = i as usize * self.stride;
        &self.keys[at..at + self.stride]
    }

    /// FNV-1a over the key words, finished with a Fibonacci multiply so
    /// consecutive keys spread across slots. Any deterministic function
    /// works here (the hash never affects output order); this one is
    /// cheap and collision-resistant enough for integer ids.
    #[inline]
    fn hash(key: &[i64]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &k in key {
            h = (h ^ k as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Insert build row `i`, prepending it to its key's chain.
    fn insert(&mut self, i: u32) {
        let key = i as usize * self.stride;
        let mut slot = Self::hash(&self.keys[key..key + self.stride]) as usize & self.mask;
        loop {
            match self.heads[slot] {
                NONE => {
                    self.heads[slot] = i;
                    return;
                }
                head if self.key_of(head) == &self.keys[key..key + self.stride] => {
                    self.next[i as usize] = head;
                    self.heads[slot] = i;
                    return;
                }
                _ => slot = (slot + 1) & self.mask,
            }
        }
    }

    /// Probe with one key; yields matching build rows in ascending
    /// build-input order (empty iterator on a miss).
    #[inline]
    pub(crate) fn probe(&self, key: &[i64]) -> Chain<'_> {
        debug_assert_eq!(key.len(), self.stride);
        let mut slot = Self::hash(key) as usize & self.mask;
        loop {
            match self.heads[slot] {
                NONE => {
                    return Chain {
                        cur: NONE,
                        next: &self.next,
                    }
                }
                head if self.key_of(head) == key => {
                    return Chain {
                        cur: head,
                        next: &self.next,
                    }
                }
                _ => slot = (slot + 1) & self.mask,
            }
        }
    }

    /// Single-condition probe without building a slice.
    #[inline]
    pub(crate) fn probe1(&self, key: i64) -> Chain<'_> {
        debug_assert_eq!(self.stride, 1);
        self.probe(std::slice::from_ref(&key))
    }
}

/// Iterator over one key's chain of build rows (ascending input order).
pub(crate) struct Chain<'a> {
    cur: u32,
    next: &'a [u32],
}

impl Iterator for Chain<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.cur == NONE {
            return None;
        }
        let i = self.cur;
        self.cur = self.next[i as usize];
        Some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(t: &KeyTable, key: &[i64]) -> Vec<u32> {
        t.probe(key).collect()
    }

    #[test]
    fn single_key_chains_are_ascending() {
        // Rows 0..6 with keys 7,3,7,7,3,9.
        let t = KeyTable::build(&[vec![7, 3, 7, 7, 3, 9]]);
        assert_eq!(rows(&t, &[7]), vec![0, 2, 3]);
        assert_eq!(rows(&t, &[3]), vec![1, 4]);
        assert_eq!(rows(&t, &[9]), vec![5]);
        assert_eq!(rows(&t, &[8]), Vec::<u32>::new());
        assert_eq!(t.probe1(7).collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn composite_keys_compare_all_conditions() {
        // (1,1) (1,2) (2,1) (1,1)
        let t = KeyTable::build(&[vec![1, 1, 2, 1], vec![1, 2, 1, 1]]);
        assert_eq!(rows(&t, &[1, 1]), vec![0, 3]);
        assert_eq!(rows(&t, &[1, 2]), vec![1]);
        assert_eq!(rows(&t, &[2, 1]), vec![2]);
        assert_eq!(rows(&t, &[2, 2]), Vec::<u32>::new());
    }

    #[test]
    fn empty_build_side_always_misses() {
        let t = KeyTable::build(&[vec![]]);
        assert_eq!(rows(&t, &[0]), Vec::<u32>::new());
        assert_eq!(rows(&t, &[i64::MAX]), Vec::<u32>::new());
    }

    #[test]
    fn adversarial_keys_survive_clustering() {
        // Keys that collide in low bits; all chains must still resolve.
        let keys: Vec<i64> = (0..1000).map(|i| i << 32).collect();
        let t = KeyTable::build(std::slice::from_ref(&keys));
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(rows(&t, &[k]), vec![i as u32]);
        }
        assert!(rows(&t, &[1]).is_empty());
    }

    #[test]
    fn extreme_key_values() {
        let t = KeyTable::build(&[vec![i64::MIN, i64::MAX, 0, -1]]);
        assert_eq!(rows(&t, &[i64::MIN]), vec![0]);
        assert_eq!(rows(&t, &[i64::MAX]), vec![1]);
        assert_eq!(rows(&t, &[0]), vec![2]);
        assert_eq!(rows(&t, &[-1]), vec![3]);
    }
}
