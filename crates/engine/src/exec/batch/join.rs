//! Batched join operators.
//!
//! Each operator replays the serial work-charge cadence exactly (upfront
//! operator charge, then [`ChargeCadence`] for the emitted output) and
//! emits tuples in the canonical order documented on
//! [`crate::exec::executor`], so output and accounting are byte-identical
//! to the serial reference. What changes is the inner loop:
//!
//! * **Hash join** gathers the build-side key column(s) in one columnar
//!   pass, builds a [`KeyTable`] (flat arrays, no per-key or per-tuple
//!   allocation), and probes batch-by-batch over gathered probe keys.
//! * **Nested-loop join** gathers both sides' key columns once and
//!   compares plain `i64`s in the pair loop — the serial path allocates a
//!   fresh `Vec<i64>` composite key per *pair*.
//! * **Merge join** gathers key columns before assembling the sort
//!   vectors, then reuses the serial merge phase verbatim (the merge
//!   itself is inherently sequential and already cheap).
//!
//! Cross products have no batch variant: the serial operator is a single
//! upfront charge plus a straight memcpy-style emit loop already.

use std::ops::Range;

use crate::error::Result;
use crate::exec::batch::column::{gather_key_column, ColumnBatch};
use crate::exec::batch::kernels::KeyTable;
use crate::exec::batch::ChargeCadence;
use crate::exec::compiled::KeySide;
use crate::exec::executor::{Executor, WorkMeter};
use crate::exec::relation::Relation;
use crate::query::expr::JoinCond;
use crate::query::spj::SpjQuery;

/// Gather the key column of every join condition for all tuples of `rel`.
fn gather_side(
    ex: &Executor,
    query: &SpjQuery,
    rel: &Relation,
    conds: &[&JoinCond],
) -> Result<Vec<Vec<i64>>> {
    let side = ex.key_side(query, rel, conds)?;
    Ok(side
        .cols
        .iter()
        .map(|&(slot, data)| gather_key_column(rel, slot, data))
        .collect())
}

/// Batched hash join: columnar build over a [`KeyTable`], batch-gathered
/// probe. Emit order is probe-side-major with ascending build rows per
/// probe tuple — identical to the serial `HashMap` path.
pub(crate) fn hash_join(
    ex: &Executor,
    query: &SpjQuery,
    conds: &[&JoinCond],
    left: Relation,
    right: Relation,
    batch: usize,
    meter: &mut WorkMeter,
) -> Result<Relation> {
    let p = &ex.config.params;
    let spill = ex.hash_spill(left.len());
    meter.add((left.len() as f64 * p.hash_build + right.len() as f64 * p.hash_probe) * spill)?;

    let lcols = gather_side(ex, query, &left, conds)?;
    let rside = ex.key_side(query, &right, conds)?;
    let slots = Relation::combined_slots(&left, &right);
    let width = slots.len();
    let table = KeyTable::build(&lcols);

    let mut rows: Vec<u32> = Vec::new();
    let mut cadence = ChargeCadence::new();
    let n = right.len();
    let batch = batch.max(1);
    for start in (0..n).step_by(batch) {
        let end = (start + batch).min(n);
        let matched = probe_range(&table, &left, &right, &rside, start..end, batch, &mut rows);
        cadence.bump(matched, meter, p, width)?;
    }
    cadence.finish(meter, p, width)?;
    Ok(Relation { slots, rows })
}

/// Probe `range` of the probe side against a built [`KeyTable`],
/// batch-gathering the probe keys and appending output tuples (in the
/// canonical probe-major order) to `rows`. Returns the number of tuples
/// emitted. Shared by the single-threaded batched hash join (which calls
/// it per batch and charges the cadence in between) and the
/// batched-parallel path (which calls it per morsel and feeds the shared
/// approximate accumulator instead).
pub(crate) fn probe_range(
    table: &KeyTable,
    left: &Relation,
    right: &Relation,
    rside: &KeySide<'_>,
    range: Range<usize>,
    batch: usize,
    rows: &mut Vec<u32>,
) -> usize {
    let stride = rside.cols.len();
    let mut keycols: Vec<Vec<i64>> = vec![Vec::new(); stride];
    let mut keybuf: Vec<i64> = Vec::with_capacity(stride);
    let mut matched = 0usize;
    let batch = batch.max(1);
    let mut start = range.start;
    while start < range.end {
        let end = (start + batch).min(range.end);
        let chunk = ColumnBatch::from_relation(right, start..end);
        for (c, &(slot, data)) in rside.cols.iter().enumerate() {
            chunk.gather_i64(slot, data, &mut keycols[c]);
        }
        for j in 0..chunk.len() {
            let chain = if stride == 1 {
                table.probe1(keycols[0][j])
            } else {
                keybuf.clear();
                keybuf.extend(keycols.iter().map(|col| col[j]));
                table.probe(&keybuf)
            };
            let rt = right.tuple(start + j);
            for i in chain {
                Executor::emit(rows, left.tuple(i as usize), rt);
                matched += 1;
            }
        }
        start = end;
    }
    matched
}

/// Compare row `i` of `lcols` with row `j` of `rcols` across every
/// gathered key column (the batched replacement for the serial
/// `multi_key` equality, which allocates two `Vec<i64>`s per pair).
#[inline]
pub(crate) fn keys_equal(lcols: &[Vec<i64>], rcols: &[Vec<i64>], i: usize, j: usize) -> bool {
    lcols.iter().zip(rcols).all(|(l, r)| l[i] == r[j])
}

/// Batched nested-loop join: both sides' key columns are gathered once
/// ("batch = the whole side"), so the pair loop compares flat `i64`s with
/// no per-pair allocation. Emit order is outer-major, as in serial.
pub(crate) fn nl_join(
    ex: &Executor,
    query: &SpjQuery,
    conds: &[&JoinCond],
    left: Relation,
    right: Relation,
    meter: &mut WorkMeter,
) -> Result<Relation> {
    let p = &ex.config.params;
    let discount = ex.nl_discount(right.len());
    // Charge pair work up front so hopeless plans abort immediately.
    meter.add(left.len() as f64 * right.len() as f64 * p.nl_pair * discount)?;

    let lcols = gather_side(ex, query, &left, conds)?;
    let rcols = gather_side(ex, query, &right, conds)?;
    let slots = Relation::combined_slots(&left, &right);
    let width = slots.len();
    let stride = conds.len();
    let mut rows: Vec<u32> = Vec::new();
    let mut cadence = ChargeCadence::new();
    for i in 0..left.len() {
        let lt = left.tuple(i);
        let mut matched = 0usize;
        if stride == 1 {
            let lk = lcols[0][i];
            for (j, &rk) in rcols[0].iter().enumerate() {
                if rk == lk {
                    Executor::emit(&mut rows, lt, right.tuple(j));
                    matched += 1;
                }
            }
        } else {
            for j in 0..right.len() {
                if keys_equal(&lcols, &rcols, i, j) {
                    Executor::emit(&mut rows, lt, right.tuple(j));
                    matched += 1;
                }
            }
        }
        cadence.bump(matched, meter, p, width)?;
    }
    cadence.finish(meter, p, width)?;
    Ok(Relation { slots, rows })
}

/// Batched merge join: key extraction is columnar, the sort and the merge
/// phase are shared with the serial operator (sort keys are disambiguated
/// by input index, so the sorted order is unique regardless of path).
pub(crate) fn merge_join(
    ex: &Executor,
    query: &SpjQuery,
    conds: &[&JoinCond],
    left: Relation,
    right: Relation,
    meter: &mut WorkMeter,
) -> Result<Relation> {
    let p = &ex.config.params;
    meter.add(
        p.sort_work(left.len() as f64)
            + p.sort_work(right.len() as f64)
            + (left.len() + right.len()) as f64 * p.merge_tuple,
    )?;

    let lcols = gather_side(ex, query, &left, conds)?;
    let rcols = gather_side(ex, query, &right, conds)?;
    let mut lsorted: Vec<(Vec<i64>, u32)> = (0..left.len())
        .map(|i| (lcols.iter().map(|c| c[i]).collect(), i as u32))
        .collect();
    let mut rsorted: Vec<(Vec<i64>, u32)> = (0..right.len())
        .map(|j| (rcols.iter().map(|c| c[j]).collect(), j as u32))
        .collect();
    lsorted.sort_unstable();
    rsorted.sort_unstable();
    Executor::merge_phase(p, &left, &right, &lsorted, &rsorted, meter)
}
