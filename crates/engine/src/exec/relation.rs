//! Intermediate relations: tuples of base-table row ids.
//!
//! The engine executes count-star SPJ queries, so an intermediate result
//! never materializes attribute values — only, per output tuple, the row id
//! of each participating base table. Attribute access during joins goes
//! back to the columnar base tables.
//!
//! Relations carry the executor's **stable row-ordering contract** (see
//! [`crate::exec::executor`]): operators emit tuples in a canonical order
//! that is a pure function of the plan and the data, never of the
//! execution schedule. [`Relation::digest`] hashes a relation in that
//! order, so two executions are byte-identical iff their digests (plus
//! slot layouts) agree; [`Relation::canonical_digest`] hashes the
//! *sorted* tuple multiset instead, which is order-insensitive and used
//! by property tests for assertions like build/probe symmetry where the
//! emit order legitimately differs.

use crate::query::table_set::TableSet;

/// An intermediate relation produced by a scan or join.
#[derive(Debug, Clone)]
pub struct Relation {
    /// Table positions (into the query's `FROM` list) of each slot of a
    /// tuple, in a fixed order.
    pub slots: Vec<usize>,
    /// Flattened tuples: `rows.len() == nrows * slots.len()`.
    pub rows: Vec<u32>,
}

impl Relation {
    /// A relation over one table from a list of row ids.
    pub fn from_scan(pos: usize, row_ids: Vec<u32>) -> Relation {
        Relation {
            slots: vec![pos],
            rows: row_ids,
        }
    }

    /// Tuple width (number of participating base tables).
    pub fn width(&self) -> usize {
        self.slots.len()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        if self.slots.is_empty() {
            0
        } else {
            self.rows.len() / self.slots.len()
        }
    }

    /// True when no tuples are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The tables this relation covers.
    pub fn tables(&self) -> TableSet {
        TableSet::from_iter(self.slots.iter().copied())
    }

    /// Borrow the `i`-th tuple.
    pub fn tuple(&self, i: usize) -> &[u32] {
        let w = self.width();
        &self.rows[i * w..(i + 1) * w]
    }

    /// Slot index of a table position.
    pub fn slot_of(&self, pos: usize) -> Option<usize> {
        self.slots.iter().position(|&p| p == pos)
    }

    /// Concatenate two tuples from `left` and `right` into a combined
    /// relation layout (left slots first).
    pub fn combined_slots(left: &Relation, right: &Relation) -> Vec<usize> {
        let mut slots = left.slots.clone();
        slots.extend_from_slice(&right.slots);
        slots
    }

    /// Order-sensitive FNV-1a digest over the slot layout and the tuples
    /// in emit order. Equal digests (for same-width relations) mean
    /// byte-identical output — the equivalence the differential harness
    /// asserts between serial and parallel execution.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.push(self.slots.len() as u64);
        for &s in &self.slots {
            h.push(s as u64);
        }
        for &r in &self.rows {
            h.push(r as u64);
        }
        h.finish()
    }

    /// Order-insensitive digest: hashes the tuple *multiset* by sorting
    /// tuples first. Two relations with the same slot layout and the same
    /// tuples in any order have equal canonical digests — used for
    /// assertions (e.g. hash-join build/probe symmetry) where emit order
    /// legitimately differs. Tuples may be reordered by `normalize` first
    /// to compare relations with permuted slot layouts.
    pub fn canonical_digest(&self) -> u64 {
        let w = self.width().max(1);
        let mut tuples: Vec<&[u32]> = (0..self.len()).map(|i| self.tuple(i)).collect();
        tuples.sort_unstable();
        let mut h = Fnv::new();
        h.push(w as u64);
        for t in tuples {
            for &r in t {
                h.push(r as u64);
            }
        }
        h.finish()
    }

    /// Reorder each tuple's slots into ascending table-position order
    /// (rows reordered to match). Lets relations produced with flipped
    /// join sides — whose slot layouts are permutations of each other —
    /// be compared via [`Relation::canonical_digest`].
    pub fn normalize(&self) -> Relation {
        let w = self.width();
        let mut order: Vec<usize> = (0..w).collect();
        order.sort_unstable_by_key(|&s| self.slots[s]);
        let slots: Vec<usize> = order.iter().map(|&s| self.slots[s]).collect();
        let mut rows = Vec::with_capacity(self.rows.len());
        for i in 0..self.len() {
            let t = self.tuple(i);
            rows.extend(order.iter().map(|&s| t[s]));
        }
        Relation { slots, rows }
    }
}

/// Minimal FNV-1a accumulator over `u64` words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_relation() {
        let r = Relation::from_scan(2, vec![0, 5, 9]);
        assert_eq!(r.width(), 1);
        assert_eq!(r.len(), 3);
        assert_eq!(r.tuple(1), &[5]);
        assert_eq!(r.tables(), TableSet::singleton(2));
        assert_eq!(r.slot_of(2), Some(0));
        assert_eq!(r.slot_of(0), None);
    }

    #[test]
    fn flattened_tuples() {
        let r = Relation {
            slots: vec![0, 3],
            rows: vec![1, 10, 2, 20],
        };
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuple(0), &[1, 10]);
        assert_eq!(r.tuple(1), &[2, 20]);
    }

    #[test]
    fn digest_is_order_sensitive_canonical_is_not() {
        let a = Relation {
            slots: vec![0, 1],
            rows: vec![1, 10, 2, 20],
        };
        let b = Relation {
            slots: vec![0, 1],
            rows: vec![2, 20, 1, 10],
        };
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.canonical_digest(), b.canonical_digest());
        assert_eq!(a.digest(), a.clone().digest());
    }

    #[test]
    fn normalize_permutes_slots_and_rows() {
        let r = Relation {
            slots: vec![2, 0],
            rows: vec![7, 1, 8, 2],
        };
        let n = r.normalize();
        assert_eq!(n.slots, vec![0, 2]);
        assert_eq!(n.rows, vec![1, 7, 2, 8]);
        // Flipped join sides compare equal after normalization.
        let flipped = Relation {
            slots: vec![0, 2],
            rows: vec![1, 7, 2, 8],
        };
        assert_eq!(n.canonical_digest(), flipped.normalize().canonical_digest());
    }

    #[test]
    fn combined_slots_order() {
        let l = Relation::from_scan(0, vec![]);
        let r = Relation {
            slots: vec![2, 1],
            rows: vec![],
        };
        assert_eq!(Relation::combined_slots(&l, &r), vec![0, 2, 1]);
        assert!(r.is_empty());
    }
}
