//! Intermediate relations: tuples of base-table row ids.
//!
//! The engine executes count-star SPJ queries, so an intermediate result
//! never materializes attribute values — only, per output tuple, the row id
//! of each participating base table. Attribute access during joins goes
//! back to the columnar base tables.

use crate::query::table_set::TableSet;

/// An intermediate relation produced by a scan or join.
#[derive(Debug, Clone)]
pub struct Relation {
    /// Table positions (into the query's `FROM` list) of each slot of a
    /// tuple, in a fixed order.
    pub slots: Vec<usize>,
    /// Flattened tuples: `rows.len() == nrows * slots.len()`.
    pub rows: Vec<u32>,
}

impl Relation {
    /// A relation over one table from a list of row ids.
    pub fn from_scan(pos: usize, row_ids: Vec<u32>) -> Relation {
        Relation {
            slots: vec![pos],
            rows: row_ids,
        }
    }

    /// Tuple width (number of participating base tables).
    pub fn width(&self) -> usize {
        self.slots.len()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        if self.slots.is_empty() {
            0
        } else {
            self.rows.len() / self.slots.len()
        }
    }

    /// True when no tuples are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The tables this relation covers.
    pub fn tables(&self) -> TableSet {
        TableSet::from_iter(self.slots.iter().copied())
    }

    /// Borrow the `i`-th tuple.
    pub fn tuple(&self, i: usize) -> &[u32] {
        let w = self.width();
        &self.rows[i * w..(i + 1) * w]
    }

    /// Slot index of a table position.
    pub fn slot_of(&self, pos: usize) -> Option<usize> {
        self.slots.iter().position(|&p| p == pos)
    }

    /// Concatenate two tuples from `left` and `right` into a combined
    /// relation layout (left slots first).
    pub fn combined_slots(left: &Relation, right: &Relation) -> Vec<usize> {
        let mut slots = left.slots.clone();
        slots.extend_from_slice(&right.slots);
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_relation() {
        let r = Relation::from_scan(2, vec![0, 5, 9]);
        assert_eq!(r.width(), 1);
        assert_eq!(r.len(), 3);
        assert_eq!(r.tuple(1), &[5]);
        assert_eq!(r.tables(), TableSet::singleton(2));
        assert_eq!(r.slot_of(2), Some(0));
        assert_eq!(r.slot_of(0), None);
    }

    #[test]
    fn flattened_tuples() {
        let r = Relation {
            slots: vec![0, 3],
            rows: vec![1, 10, 2, 20],
        };
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuple(0), &[1, 10]);
        assert_eq!(r.tuple(1), &[2, 20]);
    }

    #[test]
    fn combined_slots_order() {
        let l = Relation::from_scan(0, vec![]);
        let r = Relation {
            slots: vec![2, 1],
            rows: vec![],
        };
        assert_eq!(Relation::combined_slots(&l, &r), vec![0, 2, 1]);
        assert!(r.is_empty());
    }
}
