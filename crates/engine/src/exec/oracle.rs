//! The true-cardinality oracle.
//!
//! Learned estimators need ground-truth cardinalities for training and
//! evaluation; learned optimizers need true sub-plan sizes as labels. The
//! oracle computes them by actually executing (sub-)queries, with a cache
//! keyed by the canonical form of the induced sub-query so identical
//! sub-plans across a workload are executed once.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::catalog::Catalog;
use crate::error::Result;
use crate::exec::executor::{ExecConfig, Executor};
use crate::plan::physical::{JoinAlgo, PhysNode};
use crate::query::join_graph::JoinGraph;
use crate::query::spj::SpjQuery;
use crate::query::table_set::TableSet;

/// Computes exact cardinalities of queries and their sub-queries.
#[derive(Debug)]
pub struct TrueCardOracle {
    catalog: Arc<Catalog>,
    cache: Mutex<HashMap<String, u64>>,
}

impl TrueCardOracle {
    /// Create an oracle over a shared catalog.
    pub fn new(catalog: Arc<Catalog>) -> TrueCardOracle {
        TrueCardOracle {
            catalog,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The catalog this oracle executes against.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Exact cardinality of the full query.
    pub fn true_card_full(&self, query: &SpjQuery) -> Result<u64> {
        self.true_card(query, query.all_tables())
    }

    /// Exact cardinality of the sub-query induced by `set`.
    ///
    /// Disconnected sets are decomposed into connected components whose
    /// cardinalities multiply (there are no join conditions across
    /// components), so a "cross-product subset" never materializes the
    /// cross product.
    pub fn true_card(&self, query: &SpjQuery, set: TableSet) -> Result<u64> {
        if set.is_empty() {
            return Ok(1);
        }
        let key = query.canonical_key(set);
        if let Some(&hit) = self.cache.lock().unwrap().get(&key) {
            return Ok(hit);
        }
        let graph = JoinGraph::new(query);
        let mut product: u64 = 1;
        for component in components(&graph, set) {
            let card = self.connected_card(query, component)?;
            product = product.saturating_mul(card);
        }
        self.cache.lock().unwrap().insert(key, product);
        Ok(product)
    }

    /// Number of cached sub-query cardinalities.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Exact cardinality of a connected subset, by executing a greedy
    /// smallest-table-first left-deep hash-join plan over the induced
    /// sub-query.
    fn connected_card(&self, query: &SpjQuery, set: TableSet) -> Result<u64> {
        let key = query.canonical_key(set);
        if let Some(&hit) = self.cache.lock().unwrap().get(&key) {
            return Ok(hit);
        }
        let sub = query.induced(set);
        let executor = Executor::new(&self.catalog, ExecConfig::default());
        let n = sub.num_tables();
        let plan = if n == 1 {
            PhysNode::scan(0)
        } else {
            // Filtered base sizes (cached as singleton sub-queries).
            let mut sizes = Vec::with_capacity(n);
            for pos in 0..n {
                sizes.push(self.true_card(&sub, TableSet::singleton(pos))? as f64);
            }
            let graph = JoinGraph::new(&sub);
            greedy_left_deep(&graph, &sizes)
        };
        let result = executor.execute(&sub, &plan)?;
        let mut cache = self.cache.lock().unwrap();
        // Opportunistically cache all intermediate true cardinalities: they
        // are exact cards of induced sub-queries of `sub`.
        for (inner_set, card) in &result.intermediates {
            // `inner_set` is in `sub` coordinates; map back is unnecessary
            // because canonical keys are computed on `sub` directly.
            cache.insert(sub.canonical_key(*inner_set), *card);
        }
        cache.insert(key, result.count);
        Ok(result.count)
    }
}

/// Connected components of the induced subgraph on `set`.
fn components(graph: &JoinGraph, set: TableSet) -> Vec<TableSet> {
    let mut out = Vec::new();
    let mut remaining = set;
    while let Some(start) = remaining.first() {
        let mut comp = TableSet::singleton(start);
        let mut frontier = comp;
        while !frontier.is_empty() {
            let mut next = TableSet::EMPTY;
            for p in frontier.iter() {
                next = next.union(graph.neighbors(p).intersect(remaining));
            }
            frontier = next.minus(comp);
            comp = comp.union(next);
        }
        out.push(comp);
        remaining = remaining.minus(comp);
    }
    out
}

/// Left-deep plan starting from the smallest filtered table, repeatedly
/// joining the smallest *connected* remaining table (hash joins throughout).
fn greedy_left_deep(graph: &JoinGraph, sizes: &[f64]) -> PhysNode {
    let n = sizes.len();
    let start = (0..n)
        .min_by(|&a, &b| sizes[a].total_cmp(&sizes[b]))
        .unwrap();
    let mut joined = TableSet::singleton(start);
    let mut plan = PhysNode::scan(start);
    while joined.len() < n {
        let candidates = graph.neighborhood(joined);
        let next = candidates
            .iter()
            .min_by(|&a, &b| sizes[a].total_cmp(&sizes[b]))
            .expect("connected subset must always have a joinable neighbor");
        plan = PhysNode::join(JoinAlgo::Hash, plan, PhysNode::scan(next));
        joined = joined.insert(next);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::expr::{CmpOp, ColRef, JoinCond, Predicate, TableRef};
    use crate::table::TableBuilder;
    use crate::types::Value;

    fn fixture() -> (Arc<Catalog>, SpjQuery) {
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("a")
                .int("id", (0..50).collect())
                .int("v", (0..50).map(|i| i % 5).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("b")
                .int("id", (0..100).collect())
                .int("a_id", (0..100).map(|i| i % 50).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("d")
                .int("id", (0..20).collect())
                .int("b_id", (0..20).map(|i| i * 5).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        let q = SpjQuery::new(
            vec![
                TableRef::new("a", "a"),
                TableRef::new("b", "b"),
                TableRef::new("d", "d"),
            ],
            vec![
                JoinCond::new(ColRef::new("a", "id"), ColRef::new("b", "a_id")),
                JoinCond::new(ColRef::new("b", "id"), ColRef::new("d", "b_id")),
            ],
            vec![Predicate::new(
                ColRef::new("a", "v"),
                CmpOp::Lt,
                Value::Int(3),
            )],
        );
        (Arc::new(c), q)
    }

    #[test]
    fn singleton_cards_respect_predicates() {
        let (c, q) = fixture();
        let oracle = TrueCardOracle::new(c);
        // a.v < 3 keeps v in {0,1,2}: 30 of 50 rows.
        assert_eq!(oracle.true_card(&q, TableSet::singleton(0)).unwrap(), 30);
        assert_eq!(oracle.true_card(&q, TableSet::singleton(1)).unwrap(), 100);
    }

    #[test]
    fn full_query_card() {
        let (c, q) = fixture();
        let oracle = TrueCardOracle::new(c);
        // Each of 100 b-rows matches exactly one a-row; a-filter keeps 60%
        // (v%5 in {0,1,2}). d joins b.id = d.b_id for b.id in {0,5,...,95}:
        // those 20 b rows each match 1 d row; of those, a-filter keeps
        // b.a_id = b.id%50 in v<3, i.e. (b.id%50)%5 < 3.
        let expected: u64 = (0..20)
            .map(|i| i * 5 % 50)
            .filter(|a_id| a_id % 5 < 3)
            .count() as u64;
        assert_eq!(oracle.true_card_full(&q).unwrap(), expected);
    }

    #[test]
    fn pairwise_subset() {
        let (c, q) = fixture();
        let oracle = TrueCardOracle::new(c);
        // a ⋈ b with a.v < 3: 60 pairs (each b row matches its unique a).
        assert_eq!(
            oracle.true_card(&q, TableSet::from_iter([0, 1])).unwrap(),
            60
        );
    }

    #[test]
    fn disconnected_subset_multiplies_components() {
        let (c, q) = fixture();
        let oracle = TrueCardOracle::new(c);
        // {a, d} has no join edge: cross product 30 * 20.
        assert_eq!(
            oracle.true_card(&q, TableSet::from_iter([0, 2])).unwrap(),
            600
        );
    }

    #[test]
    fn empty_set_is_one() {
        let (c, q) = fixture();
        let oracle = TrueCardOracle::new(c);
        assert_eq!(oracle.true_card(&q, TableSet::EMPTY).unwrap(), 1);
    }

    #[test]
    fn cache_hits_grow() {
        let (c, q) = fixture();
        let oracle = TrueCardOracle::new(c);
        oracle.true_card_full(&q).unwrap();
        let len = oracle.cache_len();
        assert!(len >= 3);
        // Second call must not add entries.
        oracle.true_card_full(&q).unwrap();
        assert_eq!(oracle.cache_len(), len);
    }
}
