//! The catalog: a named collection of tables plus foreign-key metadata.

use std::collections::HashMap;

use crate::error::{EngineError, Result};
use crate::schema::ForeignKey;
use crate::table::Table;

/// A database: tables indexed by name, and the FK edges among them.
///
/// The FK edges define the *schema join graph*, which workload generators
/// walk to produce multi-join SPJ queries (as JOB and STATS-CEB do over the
/// IMDB and STATS schemas).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<Table>,
    by_name: HashMap<String, usize>,
    foreign_keys: Vec<ForeignKey>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Add a table; replaces any table with the same name.
    pub fn add_table(&mut self, table: Table) {
        let name = table.name().to_string();
        if let Some(&idx) = self.by_name.get(&name) {
            self.tables[idx] = table;
        } else {
            self.by_name.insert(name, self.tables.len());
            self.tables.push(table);
        }
    }

    /// Register a foreign-key edge.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) {
        self.foreign_keys.push(fk);
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.by_name
            .get(name)
            .map(|&i| &self.tables[i])
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Mutable lookup (used by drift experiments appending rows).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        let idx = *self
            .by_name
            .get(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))?;
        Ok(&mut self.tables[idx])
    }

    /// All tables in insertion order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// All registered FK edges.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// FK edges incident to `table` (either as referencing or referenced
    /// side). Used by workload generators to grow connected join subgraphs.
    pub fn edges_of(&self, table: &str) -> Vec<&ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.table == table || fk.ref_table == table)
            .collect()
    }

    /// Total row count across all tables (reporting convenience).
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::nrows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("a")
                .int("id", vec![1, 2])
                .primary_key("id")
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("b")
                .int("id", vec![1])
                .int("a_id", vec![2])
                .primary_key("id")
                .build()
                .unwrap(),
        );
        c.add_foreign_key(ForeignKey::new("b", "a_id", "a", "id"));
        c
    }

    #[test]
    fn lookup_and_rows() {
        let c = catalog();
        assert_eq!(c.table("a").unwrap().nrows(), 2);
        assert!(c.table("zzz").is_err());
        assert_eq!(c.total_rows(), 3);
    }

    #[test]
    fn edges_are_bidirectional() {
        let c = catalog();
        assert_eq!(c.edges_of("a").len(), 1);
        assert_eq!(c.edges_of("b").len(), 1);
        assert!(c.edges_of("zzz").is_empty());
    }

    #[test]
    fn add_table_replaces_same_name() {
        let mut c = catalog();
        c.add_table(
            TableBuilder::new("a")
                .int("id", vec![1, 2, 3])
                .primary_key("id")
                .build()
                .unwrap(),
        );
        assert_eq!(c.table("a").unwrap().nrows(), 3);
        assert_eq!(c.tables().len(), 2);
    }
}
