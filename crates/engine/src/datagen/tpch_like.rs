//! TPC-H-style synthetic schema: uniform distributions and (mostly)
//! independent attributes. The paper's §2.3 points out that such synthetic
//! benchmarks "make oversimplified assumptions on the joint distribution of
//! attributes" — this generator reproduces exactly that easiness, serving
//! as the contrast case to [`fn@crate::datagen::stats_like`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::catalog::Catalog;
use crate::datagen::util::{categorical, dates, uniform_keys};
use crate::error::Result;
use crate::schema::ForeignKey;
use crate::table::TableBuilder;

/// Generate the TPC-H-like catalog at `scale` customers.
///
/// Tables: `region(5)`, `nation(25)`, `supplier`, `customer`, `orders`,
/// `lineitem` with uniform FK fan-outs and independent attributes.
pub fn tpch_like(scale: usize, seed: u64) -> Result<Catalog> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_customer = scale.max(10);
    let n_supplier = (n_customer / 10).max(5);
    let n_orders = n_customer * 5;
    let n_lineitem = n_orders * 4;

    let mut catalog = Catalog::new();

    let regions = ["africa", "america", "asia", "europe", "middle_east"];
    catalog.add_table(
        TableBuilder::new("region")
            .int("id", (0..5).collect())
            .text("name", regions.iter().map(|s| s.to_string()).collect())
            .primary_key("id")
            .build()?,
    );

    catalog.add_table(
        TableBuilder::new("nation")
            .int("id", (0..25).collect())
            .int("region_id", uniform_keys(&mut rng, 5, 25))
            .primary_key("id")
            .build()?,
    );

    catalog.add_table(
        TableBuilder::new("supplier")
            .int("id", (0..n_supplier as i64).collect())
            .int("nation_id", uniform_keys(&mut rng, 25, n_supplier))
            .float(
                "acctbal",
                (0..n_supplier)
                    .map(|_| rng.gen_range(-999.0..10_000.0))
                    .collect(),
            )
            .primary_key("id")
            .build()?,
    );

    catalog.add_table(
        TableBuilder::new("customer")
            .int("id", (0..n_customer as i64).collect())
            .int("nation_id", uniform_keys(&mut rng, 25, n_customer))
            .float(
                "acctbal",
                (0..n_customer)
                    .map(|_| rng.gen_range(-999.0..10_000.0))
                    .collect(),
            )
            .text(
                "mktsegment",
                categorical(
                    &mut rng,
                    &[
                        "automobile",
                        "building",
                        "furniture",
                        "household",
                        "machinery",
                    ],
                    &[1.0, 1.0, 1.0, 1.0, 1.0],
                    n_customer,
                ),
            )
            .primary_key("id")
            .build()?,
    );

    catalog.add_table(
        TableBuilder::new("orders")
            .int("id", (0..n_orders as i64).collect())
            .int("cust_id", uniform_keys(&mut rng, n_customer, n_orders))
            .int("orderdate", dates(&mut rng, n_orders, 2400, false))
            .float(
                "totalprice",
                (0..n_orders)
                    .map(|_| rng.gen_range(800.0..500_000.0))
                    .collect(),
            )
            .int("orderstatus", uniform_keys(&mut rng, 3, n_orders))
            .primary_key("id")
            .build()?,
    );

    catalog.add_table(
        TableBuilder::new("lineitem")
            .int("id", (0..n_lineitem as i64).collect())
            .int("order_id", uniform_keys(&mut rng, n_orders, n_lineitem))
            .int("supp_id", uniform_keys(&mut rng, n_supplier, n_lineitem))
            .int("quantity", uniform_keys(&mut rng, 50, n_lineitem))
            .float(
                "price",
                (0..n_lineitem)
                    .map(|_| rng.gen_range(900.0..105_000.0))
                    .collect(),
            )
            .float(
                "discount",
                (0..n_lineitem).map(|_| rng.gen_range(0.0..0.11)).collect(),
            )
            .int("shipdate", dates(&mut rng, n_lineitem, 2500, false))
            .primary_key("id")
            .build()?,
    );

    for fk in [
        ForeignKey::new("nation", "region_id", "region", "id"),
        ForeignKey::new("supplier", "nation_id", "nation", "id"),
        ForeignKey::new("customer", "nation_id", "nation", "id"),
        ForeignKey::new("orders", "cust_id", "customer", "id"),
        ForeignKey::new("lineitem", "order_id", "orders", "id"),
        ForeignKey::new("lineitem", "supp_id", "supplier", "id"),
    ] {
        catalog.add_foreign_key(fk);
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape() {
        let c = tpch_like(100, 1).unwrap();
        assert_eq!(c.tables().len(), 6);
        assert_eq!(c.foreign_keys().len(), 6);
        assert_eq!(c.table("region").unwrap().nrows(), 5);
        assert_eq!(c.table("lineitem").unwrap().nrows(), 2000);
    }

    #[test]
    fn uniform_fanout() {
        let c = tpch_like(200, 3).unwrap();
        let li = c.table("lineitem").unwrap();
        let keys = li.column_by_name("order_id").unwrap().as_int().unwrap();
        // Uniform: hottest order should have far fewer than 10x the mean
        // fan-out (contrast with the Zipf generators).
        let mut counts = vec![0usize; 1000];
        for &k in keys {
            counts[k as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let mean = keys.len() as f64 / 1000.0;
        assert!(max < mean * 6.0, "max {max}, mean {mean}");
    }

    #[test]
    fn fk_integrity() {
        let c = tpch_like(50, 5).unwrap();
        for fk in c.foreign_keys() {
            let child = c.table(&fk.table).unwrap();
            let parent = c.table(&fk.ref_table).unwrap();
            let keys = child.column_by_name(&fk.column).unwrap().as_int().unwrap();
            assert!(keys.iter().all(|&k| k >= 0 && k < parent.nrows() as i64));
        }
    }
}
