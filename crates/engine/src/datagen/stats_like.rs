//! STATS/STATS-CEB-style synthetic schema: 8 Stack-Exchange tables with
//! heavy-tailed user activity and correlated attributes — the "hard"
//! benchmark shape of Han et al.'s cardinality benchmark (\[12\] in the
//! paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::catalog::Catalog;
use crate::datagen::util::{correlated_ints, dates, zipf_keys};
use crate::error::Result;
use crate::schema::ForeignKey;
use crate::table::TableBuilder;

/// Generate the STATS-like catalog at `scale` base users. Tables:
///
/// * `users(id, reputation, creation_date, views)` — Zipf reputation;
/// * `badges(id, user_id→users, date, class)` — active users earn more;
/// * `posts(id, owner_user_id→users, score, view_count, creation_date,
///   answer_count)` — score correlated with owner reputation;
/// * `comments(id, post_id→posts, user_id→users, score, creation_date)`;
/// * `votes(id, post_id→posts, user_id→users, vote_type, creation_date)`;
/// * `post_history(id, post_id→posts, user_id→users, kind, creation_date)`;
/// * `post_links(id, post_id→posts, related_post_id→posts, link_type)`;
/// * `tags(id, excerpt_post_id→posts, count)`.
pub fn stats_like(scale: usize, seed: u64) -> Result<Catalog> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_users = scale.max(20);
    let n_posts = n_users * 4;
    let n_comments = n_posts * 3;
    let n_votes = n_posts * 4;
    let n_badges = n_users * 2;
    let n_history = n_posts * 2;
    let n_links = n_posts / 4;
    let n_tags = (n_users / 5).max(10);
    let span = 2000; // days

    let mut catalog = Catalog::new();

    // users
    let reputation = zipf_keys(&mut rng, 100_000, n_users, 1.4);
    let user_creation = dates(&mut rng, n_users, span, false);
    let views = correlated_ints(&mut rng, &reputation, 5_000, 0.6);
    catalog.add_table(
        TableBuilder::new("users")
            .int("id", (0..n_users as i64).collect())
            .int("reputation", reputation.clone())
            .int("creation_date", user_creation.clone())
            .int("views", views)
            .primary_key("id")
            .build()?,
    );

    // badges: awarded to active (high-reputation) users more often.
    let badge_user = zipf_keys(&mut rng, n_users, n_badges, 1.3);
    let badge_class: Vec<i64> = badge_user
        .iter()
        .map(|&u| {
            // Users with high reputation earn higher-class badges.
            let rep = reputation[u as usize];
            if rep > 1_000 {
                rng.gen_range(0..3)
            } else {
                rng.gen_range(1..3)
            }
        })
        .collect();
    catalog.add_table(
        TableBuilder::new("badges")
            .int("id", (0..n_badges as i64).collect())
            .int("user_id", badge_user)
            .int("date", dates(&mut rng, n_badges, span, true))
            .int("class", badge_class)
            .primary_key("id")
            .build()?,
    );

    // posts
    let owner = zipf_keys(&mut rng, n_users, n_posts, 1.3);
    let post_score: Vec<i64> = owner
        .iter()
        .map(|&u| {
            let rep = reputation[u as usize] as f64;
            let base = (rep + 1.0).log2();
            (base as i64 + rng.gen_range(-2..3)).max(-5)
        })
        .collect();
    let post_creation: Vec<i64> = owner
        .iter()
        .map(|&u| {
            // A post cannot precede its author's account.
            let lo = user_creation[u as usize];
            rng.gen_range(lo..span as i64)
        })
        .collect();
    catalog.add_table(
        TableBuilder::new("posts")
            .int("id", (0..n_posts as i64).collect())
            .int("owner_user_id", owner)
            .int("score", post_score)
            .int("view_count", zipf_keys(&mut rng, 50_000, n_posts, 1.3))
            .int("creation_date", post_creation)
            .int("answer_count", zipf_keys(&mut rng, 30, n_posts, 1.5))
            .primary_key("id")
            .build()?,
    );

    // comments
    catalog.add_table(
        TableBuilder::new("comments")
            .int("id", (0..n_comments as i64).collect())
            .int("post_id", zipf_keys(&mut rng, n_posts, n_comments, 1.25))
            .int("user_id", zipf_keys(&mut rng, n_users, n_comments, 1.35))
            .int("score", zipf_keys(&mut rng, 100, n_comments, 1.6))
            .int("creation_date", dates(&mut rng, n_comments, span, true))
            .primary_key("id")
            .build()?,
    );

    // votes: type skewed (upvotes dominate).
    catalog.add_table(
        TableBuilder::new("votes")
            .int("id", (0..n_votes as i64).collect())
            .int("post_id", zipf_keys(&mut rng, n_posts, n_votes, 1.3))
            .int("user_id", zipf_keys(&mut rng, n_users, n_votes, 1.2))
            .int("vote_type", zipf_keys(&mut rng, 15, n_votes, 1.8))
            .int("creation_date", dates(&mut rng, n_votes, span, true))
            .primary_key("id")
            .build()?,
    );

    // post_history
    catalog.add_table(
        TableBuilder::new("post_history")
            .int("id", (0..n_history as i64).collect())
            .int("post_id", zipf_keys(&mut rng, n_posts, n_history, 1.1))
            .int("user_id", zipf_keys(&mut rng, n_users, n_history, 1.3))
            .int("kind", zipf_keys(&mut rng, 20, n_history, 1.2))
            .int("creation_date", dates(&mut rng, n_history, span, true))
            .primary_key("id")
            .build()?,
    );

    // post_links (self-referencing posts)
    catalog.add_table(
        TableBuilder::new("post_links")
            .int("id", (0..n_links as i64).collect())
            .int("post_id", zipf_keys(&mut rng, n_posts, n_links, 1.1))
            .int(
                "related_post_id",
                zipf_keys(&mut rng, n_posts, n_links, 1.3),
            )
            .int("link_type", zipf_keys(&mut rng, 3, n_links, 1.0))
            .primary_key("id")
            .build()?,
    );

    // tags
    catalog.add_table(
        TableBuilder::new("tags")
            .int("id", (0..n_tags as i64).collect())
            .int("excerpt_post_id", zipf_keys(&mut rng, n_posts, n_tags, 0.0))
            .int("count", zipf_keys(&mut rng, 2_000, n_tags, 1.4))
            .primary_key("id")
            .build()?,
    );

    for fk in [
        ForeignKey::new("badges", "user_id", "users", "id"),
        ForeignKey::new("posts", "owner_user_id", "users", "id"),
        ForeignKey::new("comments", "post_id", "posts", "id"),
        ForeignKey::new("comments", "user_id", "users", "id"),
        ForeignKey::new("votes", "post_id", "posts", "id"),
        ForeignKey::new("votes", "user_id", "users", "id"),
        ForeignKey::new("post_history", "post_id", "posts", "id"),
        ForeignKey::new("post_history", "user_id", "users", "id"),
        ForeignKey::new("post_links", "post_id", "posts", "id"),
        ForeignKey::new("post_links", "related_post_id", "posts", "id"),
        ForeignKey::new("tags", "excerpt_post_id", "posts", "id"),
    ] {
        catalog.add_foreign_key(fk);
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape() {
        let c = stats_like(100, 1).unwrap();
        assert_eq!(c.tables().len(), 8);
        assert_eq!(c.foreign_keys().len(), 11);
        assert_eq!(c.table("users").unwrap().nrows(), 100);
        assert_eq!(c.table("posts").unwrap().nrows(), 400);
        assert_eq!(c.table("comments").unwrap().nrows(), 1200);
    }

    #[test]
    fn fk_integrity() {
        let c = stats_like(80, 5).unwrap();
        for fk in c.foreign_keys() {
            let child = c.table(&fk.table).unwrap();
            let parent = c.table(&fk.ref_table).unwrap();
            let keys = child.column_by_name(&fk.column).unwrap().as_int().unwrap();
            assert!(keys.iter().all(|&k| k >= 0 && k < parent.nrows() as i64));
        }
    }

    #[test]
    fn post_creation_respects_owner_creation() {
        let c = stats_like(100, 7).unwrap();
        let users = c.table("users").unwrap();
        let posts = c.table("posts").unwrap();
        let uc = users
            .column_by_name("creation_date")
            .unwrap()
            .as_int()
            .unwrap();
        let owner = posts
            .column_by_name("owner_user_id")
            .unwrap()
            .as_int()
            .unwrap();
        let pc = posts
            .column_by_name("creation_date")
            .unwrap()
            .as_int()
            .unwrap();
        assert!(owner.iter().zip(pc).all(|(&o, &d)| d >= uc[o as usize]));
    }

    #[test]
    fn reputation_is_heavy_tailed() {
        let c = stats_like(500, 11).unwrap();
        let rep = c
            .table("users")
            .unwrap()
            .column_by_name("reputation")
            .unwrap()
            .as_int()
            .unwrap()
            .to_vec();
        let max = *rep.iter().max().unwrap() as f64;
        let mean = rep.iter().sum::<i64>() as f64 / rep.len() as f64;
        assert!(max > 20.0 * mean, "max {max}, mean {mean}");
    }
}
