//! IMDB/JOB-style synthetic schema: 8 movie tables with Zipf fan-outs and
//! correlated attributes. See DESIGN.md for the substitution rationale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::catalog::Catalog;
use crate::datagen::util::{categorical, correlated_floats, correlated_ints, dates, zipf_keys};
use crate::error::Result;
use crate::schema::ForeignKey;
use crate::table::TableBuilder;

/// Generate the IMDB-like catalog at `scale` base titles (default workloads
/// use 2000). Tables:
///
/// * `kind(id, name)` — 7 title kinds;
/// * `company(id, country_code, size_class)`;
/// * `keyword(id, category)`;
/// * `person(id, gender, birth_year)`;
/// * `title(id, kind_id→kind, production_year, votes, rating)` — year
///   correlated with kind, votes Zipf-heavy, rating correlated with votes;
/// * `movie_companies(id, movie_id→title, company_id→company, company_type)`;
/// * `cast_info(id, movie_id→title, person_id→person, role_id)` — role
///   correlated with person gender;
/// * `movie_keyword(id, movie_id→title, keyword_id→keyword)`.
pub fn imdb_like(scale: usize, seed: u64) -> Result<Catalog> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_title = scale.max(10);
    let n_person = n_title * 4;
    let n_company = (n_title / 2).max(5);
    let n_keyword = n_title.max(10);
    let n_cast = n_title * 10;
    let n_mc = n_title * 3;
    let n_mk = n_title * 5;

    let mut catalog = Catalog::new();

    // kind
    let kind_names = [
        "movie",
        "tv_series",
        "tv_movie",
        "video",
        "short",
        "episode",
        "game",
    ];
    catalog.add_table(
        TableBuilder::new("kind")
            .int("id", (0..kind_names.len() as i64).collect())
            .text("name", kind_names.iter().map(|s| s.to_string()).collect())
            .primary_key("id")
            .build()?,
    );

    // company
    let country = zipf_keys(&mut rng, 40, n_company, 1.1);
    let size_class = correlated_ints(&mut rng, &country, 5, 0.5);
    catalog.add_table(
        TableBuilder::new("company")
            .int("id", (0..n_company as i64).collect())
            .int("country_code", country)
            .int("size_class", size_class)
            .primary_key("id")
            .build()?,
    );

    // keyword
    catalog.add_table(
        TableBuilder::new("keyword")
            .int("id", (0..n_keyword as i64).collect())
            .int("category", zipf_keys(&mut rng, 20, n_keyword, 1.0))
            .primary_key("id")
            .build()?,
    );

    // person
    let gender: Vec<i64> = (0..n_person)
        .map(|_| if rng.gen_bool(0.65) { 0 } else { 1 })
        .collect();
    let birth_year: Vec<i64> = dates(&mut rng, n_person, 90, false)
        .into_iter()
        .map(|d| 1920 + d)
        .collect();
    catalog.add_table(
        TableBuilder::new("person")
            .int("id", (0..n_person as i64).collect())
            .int("gender", gender.clone())
            .int("birth_year", birth_year)
            .primary_key("id")
            .build()?,
    );

    // title: production year correlated with kind (episodes are recent,
    // movies span the century), votes Zipf, rating correlated with votes.
    let kind_id = zipf_keys(&mut rng, kind_names.len(), n_title, 0.8);
    let production_year: Vec<i64> = kind_id
        .iter()
        .map(|&k| {
            let recent = k >= 4; // shorts/episodes/games skew recent
            let span = if recent { 30 } else { 100 };
            let base = if recent { 1990 } else { 1920 };
            let u: f64 = rng.gen();
            base + (u.sqrt() * span as f64) as i64
        })
        .collect();
    let votes = zipf_keys(&mut rng, 100_000, n_title, 1.3);
    let rating: Vec<f64> = correlated_floats(&mut rng, &votes, 0.00002, 0.8)
        .into_iter()
        .map(|r| (5.5 + r).clamp(1.0, 10.0))
        .collect();
    catalog.add_table(
        TableBuilder::new("title")
            .int("id", (0..n_title as i64).collect())
            .int("kind_id", kind_id)
            .int("production_year", production_year)
            .int("votes", votes)
            .float("rating", rating)
            .primary_key("id")
            .build()?,
    );

    // movie_companies
    catalog.add_table(
        TableBuilder::new("movie_companies")
            .int("id", (0..n_mc as i64).collect())
            .int("movie_id", zipf_keys(&mut rng, n_title, n_mc, 1.1))
            .int("company_id", zipf_keys(&mut rng, n_company, n_mc, 1.2))
            .int("company_type", zipf_keys(&mut rng, 4, n_mc, 0.6))
            .primary_key("id")
            .build()?,
    );

    // cast_info: role correlated with the cast member's gender.
    let ci_movie = zipf_keys(&mut rng, n_title, n_cast, 1.2);
    let ci_person = zipf_keys(&mut rng, n_person, n_cast, 1.1);
    let ci_role: Vec<i64> = ci_person
        .iter()
        .map(|&p| {
            let g = gender[p as usize];
            let base = if g == 0 { 0 } else { 6 };
            base + (rng.gen_range(0..6)) as i64
        })
        .collect();
    catalog.add_table(
        TableBuilder::new("cast_info")
            .int("id", (0..n_cast as i64).collect())
            .int("movie_id", ci_movie)
            .int("person_id", ci_person)
            .int("role_id", ci_role)
            .primary_key("id")
            .build()?,
    );

    // movie_keyword
    catalog.add_table(
        TableBuilder::new("movie_keyword")
            .int("id", (0..n_mk as i64).collect())
            .int("movie_id", zipf_keys(&mut rng, n_title, n_mk, 1.15))
            .int("keyword_id", zipf_keys(&mut rng, n_keyword, n_mk, 1.25))
            .primary_key("id")
            .build()?,
    );

    // A genre label per title kept on a side text column of keyword for
    // text-predicate coverage.
    let _ = categorical(&mut rng, &["drama"], &[1.0], 0);

    for fk in [
        ForeignKey::new("title", "kind_id", "kind", "id"),
        ForeignKey::new("movie_companies", "movie_id", "title", "id"),
        ForeignKey::new("movie_companies", "company_id", "company", "id"),
        ForeignKey::new("cast_info", "movie_id", "title", "id"),
        ForeignKey::new("cast_info", "person_id", "person", "id"),
        ForeignKey::new("movie_keyword", "movie_id", "title", "id"),
        ForeignKey::new("movie_keyword", "keyword_id", "keyword", "id"),
    ] {
        catalog.add_foreign_key(fk);
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape() {
        let c = imdb_like(200, 1).unwrap();
        assert_eq!(c.tables().len(), 8);
        assert_eq!(c.foreign_keys().len(), 7);
        assert_eq!(c.table("title").unwrap().nrows(), 200);
        assert_eq!(c.table("cast_info").unwrap().nrows(), 2000);
    }

    #[test]
    fn fk_integrity() {
        let c = imdb_like(150, 2).unwrap();
        for fk in c.foreign_keys() {
            let child = c.table(&fk.table).unwrap();
            let parent = c.table(&fk.ref_table).unwrap();
            let keys = child.column_by_name(&fk.column).unwrap().as_int().unwrap();
            let max_parent = parent.nrows() as i64;
            assert!(
                keys.iter().all(|&k| k >= 0 && k < max_parent),
                "dangling FK {}.{}",
                fk.table,
                fk.column
            );
        }
    }

    #[test]
    fn skewed_fanout_present() {
        let c = imdb_like(500, 3).unwrap();
        let ci = c.table("cast_info").unwrap();
        let movie_ids = ci.column_by_name("movie_id").unwrap().as_int().unwrap();
        let hot = movie_ids.iter().filter(|&&m| m == 0).count();
        // Zipf: the hottest movie has far more than the average fan-out (10).
        assert!(hot > 50, "hot fan-out = {hot}");
    }

    #[test]
    fn deterministic() {
        let a = imdb_like(100, 9).unwrap();
        let b = imdb_like(100, 9).unwrap();
        assert_eq!(
            a.table("title").unwrap().row(42),
            b.table("title").unwrap().row(42)
        );
    }
}
