//! Single-table generator with controllable skew and correlation, used by
//! the single-table estimator studies (experiments E1/E2, mirroring
//! "Are We Ready for Learned Cardinality Estimation?").

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::datagen::util::{categorical, correlated_floats, correlated_ints, zipf_keys};
use crate::error::Result;
use crate::table::{Table, TableBuilder};

/// Configuration of the correlated single table.
#[derive(Debug, Clone)]
pub struct SingleTableConfig {
    /// Number of rows.
    pub nrows: usize,
    /// Domain size of the skewed integer columns.
    pub domain: usize,
    /// Zipf exponent of column `a` (0 = uniform).
    pub skew: f64,
    /// Correlation strength between `a` and `b` in `\[0, 1\]`.
    pub correlation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SingleTableConfig {
    fn default() -> Self {
        SingleTableConfig {
            nrows: 10_000,
            domain: 100,
            skew: 1.1,
            correlation: 0.8,
            seed: 42,
        }
    }
}

/// Generate table `t(id, a, b, c, d, label)`:
///
/// * `a` — Zipf-skewed integer in `0..domain`;
/// * `b` — correlated with `a` (strength configurable);
/// * `c` — independent uniform integer in `0..domain`;
/// * `d` — float linearly correlated with `a` plus noise;
/// * `label` — skewed categorical text.
pub fn correlated_table(name: &str, cfg: &SingleTableConfig) -> Result<Table> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let a = zipf_keys(&mut rng, cfg.domain, cfg.nrows, cfg.skew);
    let b = correlated_ints(&mut rng, &a, cfg.domain, cfg.correlation);
    let c = zipf_keys(&mut rng, cfg.domain, cfg.nrows, 0.0);
    let d = correlated_floats(&mut rng, &a, 1.5, cfg.domain as f64 * 0.05);
    let label = categorical(
        &mut rng,
        &["alpha", "beta", "gamma", "delta"],
        &[8.0, 4.0, 2.0, 1.0],
        cfg.nrows,
    );
    TableBuilder::new(name)
        .int("id", (0..cfg.nrows as i64).collect())
        .int("a", a)
        .int("b", b)
        .int("c", c)
        .float("d", d)
        .text("label", label)
        .primary_key("id")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let cfg = SingleTableConfig::default();
        let t1 = correlated_table("t", &cfg).unwrap();
        let t2 = correlated_table("t", &cfg).unwrap();
        assert_eq!(t1.nrows(), 10_000);
        assert_eq!(t1.schema.arity(), 6);
        // Deterministic given the seed.
        assert_eq!(t1.row(123), t2.row(123));
    }

    #[test]
    fn correlation_is_observable() {
        let cfg = SingleTableConfig {
            correlation: 1.0,
            ..Default::default()
        };
        let t = correlated_table("t", &cfg).unwrap();
        let a = t.column_by_name("a").unwrap().as_int().unwrap();
        let b = t.column_by_name("b").unwrap().as_int().unwrap();
        let d = cfg.domain as i64;
        assert!(a
            .iter()
            .zip(b)
            .all(|(&x, &y)| y == (x.rem_euclid(d) + 1).rem_euclid(d)));
    }

    #[test]
    fn different_seeds_differ() {
        let t1 = correlated_table("t", &SingleTableConfig::default()).unwrap();
        let t2 = correlated_table(
            "t",
            &SingleTableConfig {
                seed: 7,
                ..Default::default()
            },
        )
        .unwrap();
        let a1 = t1.column_by_name("a").unwrap().as_int().unwrap();
        let a2 = t2.column_by_name("a").unwrap().as_int().unwrap();
        assert_ne!(a1, a2);
    }
}
