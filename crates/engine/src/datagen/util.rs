//! Shared generator utilities: skewed key sampling and correlated columns.

use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Zipf};

/// Sample `n` foreign keys into `0..domain`, Zipf-distributed with exponent
/// `skew` (0.0 = uniform). Hot parents receive disproportionately many
/// children — the fan-out shape that makes IMDB/STATS joins hard.
pub fn zipf_keys(rng: &mut StdRng, domain: usize, n: usize, skew: f64) -> Vec<i64> {
    assert!(domain > 0, "zipf domain must be non-empty");
    if skew <= 0.0 {
        return (0..n).map(|_| rng.gen_range(0..domain) as i64).collect();
    }
    let dist = Zipf::new(domain as u64, skew).expect("valid zipf parameters");
    (0..n)
        .map(|_| (dist.sample(rng) as i64 - 1).clamp(0, domain as i64 - 1))
        .collect()
}

/// Sample `n` values in `0..domain` uniformly.
pub fn uniform_keys(rng: &mut StdRng, domain: usize, n: usize) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(0..domain) as i64).collect()
}

/// Derive a column correlated with `base`: with probability `strength`
/// the value is a deterministic function of the base value (`base % domain`
/// shifted); otherwise uniform noise. `strength = 1` is a functional
/// dependency, `strength = 0` is independence.
pub fn correlated_ints(rng: &mut StdRng, base: &[i64], domain: usize, strength: f64) -> Vec<i64> {
    base.iter()
        .map(|&b| {
            if rng.gen_bool(strength.clamp(0.0, 1.0)) {
                (b.rem_euclid(domain as i64) + 1).rem_euclid(domain as i64)
            } else {
                rng.gen_range(0..domain) as i64
            }
        })
        .collect()
}

/// A float column linearly correlated with an integer base column plus
/// Gaussian noise.
pub fn correlated_floats(rng: &mut StdRng, base: &[i64], slope: f64, noise: f64) -> Vec<f64> {
    use rand_distr::Normal;
    let normal = Normal::new(0.0, noise.max(1e-12)).unwrap();
    base.iter()
        .map(|&b| b as f64 * slope + normal.sample(rng))
        .collect()
}

/// Integer "dates": days since epoch 0, drawn uniformly from a window and
/// optionally skewed toward the end of the window (recency bias).
pub fn dates(rng: &mut StdRng, n: usize, span_days: usize, recency_bias: bool) -> Vec<i64> {
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            let frac = if recency_bias { u.sqrt() } else { u };
            (frac * span_days as f64) as i64
        })
        .collect()
}

/// Pick categorical labels with the given (unnormalized) weights.
pub fn categorical(rng: &mut StdRng, labels: &[&str], weights: &[f64], n: usize) -> Vec<String> {
    let total: f64 = weights.iter().sum();
    (0..n)
        .map(|_| {
            let mut r = rng.gen_range(0.0..total);
            for (label, &w) in labels.iter().zip(weights) {
                if r < w {
                    return label.to_string();
                }
                r -= w;
            }
            labels.last().unwrap().to_string()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn zipf_is_skewed() {
        let mut r = rng();
        let keys = zipf_keys(&mut r, 100, 10_000, 1.2);
        assert_eq!(keys.len(), 10_000);
        assert!(keys.iter().all(|&k| (0..100).contains(&k)));
        // Key 0 must be far more frequent than key 50.
        let count = |v: i64| keys.iter().filter(|&&k| k == v).count();
        assert!(count(0) > 10 * count(50).max(1));
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let mut r = rng();
        let keys = zipf_keys(&mut r, 10, 10_000, 0.0);
        let count0 = keys.iter().filter(|&&k| k == 0).count() as f64;
        assert!((count0 - 1_000.0).abs() < 150.0);
    }

    #[test]
    fn correlation_strength_extremes() {
        let mut r = rng();
        let base: Vec<i64> = (0..1000).map(|i| i % 7).collect();
        let perfect = correlated_ints(&mut r, &base, 7, 1.0);
        assert!(base
            .iter()
            .zip(&perfect)
            .all(|(&b, &c)| c == (b + 1).rem_euclid(7)));
        let noise = correlated_ints(&mut r, &base, 7, 0.0);
        // Independence: the functional relation should hold ~1/7 of the time.
        let hits = base
            .iter()
            .zip(&noise)
            .filter(|(&b, &c)| c == (b + 1).rem_euclid(7))
            .count();
        assert!(hits < 300);
    }

    #[test]
    fn dates_within_span() {
        let mut r = rng();
        let d = dates(&mut r, 1000, 365, true);
        assert!(d.iter().all(|&x| (0..365).contains(&x)));
        // Recency bias pushes the mean above the midpoint.
        let mean: f64 = d.iter().map(|&x| x as f64).sum::<f64>() / 1000.0;
        assert!(mean > 365.0 / 2.0);
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng();
        let labels = categorical(&mut r, &["hot", "cold"], &[9.0, 1.0], 10_000);
        let hot = labels.iter().filter(|s| *s == "hot").count();
        assert!(hot > 8_500 && hot < 9_500);
    }

    #[test]
    fn correlated_floats_track_base() {
        let mut r = rng();
        let base: Vec<i64> = (0..100).collect();
        let f = correlated_floats(&mut r, &base, 2.0, 0.01);
        assert!((f[50] - 100.0).abs() < 1.0);
    }
}
