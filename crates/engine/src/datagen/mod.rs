//! Synthetic dataset generators.
//!
//! Three multi-table schemas mirror the benchmarks of the paper's §2.3:
//!
//! * [`fn@imdb_like`]: an 8-table movie schema with Zipf-skewed fan-outs and
//!   correlated attributes, standing in for IMDB/JOB;
//! * [`fn@stats_like`]: an 8-table Stack-Exchange-style schema with
//!   heavy-tailed user activity, standing in for STATS/STATS-CEB;
//! * [`fn@tpch_like`]: a uniform, near-independent warehouse schema, standing
//!   in for TPC-H — deliberately "too easy", as the paper notes synthetic
//!   benchmarks are.
//!
//! [`single`] generates a single table with controllable skew and
//! correlation for the single-table estimator studies (E1/E2).

pub mod imdb_like;
pub mod single;
pub mod stats_like;
pub mod tpch_like;
pub mod util;

pub use imdb_like::imdb_like;
pub use single::{correlated_table, SingleTableConfig};
pub use stats_like::stats_like;
pub use tpch_like::tpch_like;
