//! Columnar storage: one tightly-packed vector per column.
//!
//! Strings are dictionary-encoded: the column stores `u32` codes into a
//! per-column dictionary. Predicate evaluation on text first resolves the
//! literal to a code, then compares codes, so equality filters never touch
//! string data on the hot path.

use crate::error::{EngineError, Result};
use crate::types::{DataType, Value};

/// A single column of a table.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers (also used for all key columns).
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Dictionary-encoded text. `codes[i]` indexes into `dict`.
    Text {
        /// Distinct strings, in first-seen order.
        dict: Vec<String>,
        /// Per-row dictionary codes.
        codes: Vec<u32>,
    },
}

impl Column {
    /// Number of rows stored.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Text { codes, .. } => codes.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical type of the column.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Text { .. } => DataType::Text,
        }
    }

    /// Materialize the value at `row` (panics if out of bounds).
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Float(v) => Value::Float(v[row]),
            Column::Text { dict, codes } => Value::Text(dict[codes[row] as usize].clone()),
        }
    }

    /// Integer view of the value at `row`, used for join keys.
    pub fn key_at(&self, row: usize) -> Result<i64> {
        match self {
            Column::Int(v) => Ok(v[row]),
            other => Err(EngineError::TypeMismatch {
                expected: "INT join key",
                found: other.dtype().to_string(),
            }),
        }
    }

    /// Borrow the integer data, if this is an `Int` column.
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the float data, if this is a `Float` column.
    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view of the value at `row`: ints cast to f64; text maps to
    /// its dictionary code so histograms can still be built over it.
    pub fn numeric_at(&self, row: usize) -> f64 {
        match self {
            Column::Int(v) => v[row] as f64,
            Column::Float(v) => v[row],
            Column::Text { codes, .. } => codes[row] as f64,
        }
    }

    /// Build a text column from raw strings (computing the dictionary).
    pub fn from_strings(values: Vec<String>) -> Column {
        let mut dict: Vec<String> = Vec::new();
        let mut index = std::collections::HashMap::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            let code = *index.entry(v.clone()).or_insert_with(|| {
                dict.push(v);
                (dict.len() - 1) as u32
            });
            codes.push(code);
        }
        Column::Text { dict, codes }
    }

    /// Look up the dictionary code of a string literal, if present.
    pub fn text_code(&self, literal: &str) -> Option<u32> {
        match self {
            Column::Text { dict, .. } => dict.iter().position(|s| s == literal).map(|p| p as u32),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_column_basics() {
        let c = Column::Int(vec![3, 1, 4]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.dtype(), DataType::Int);
        assert_eq!(c.value(1), Value::Int(1));
        assert_eq!(c.key_at(2).unwrap(), 4);
        assert_eq!(c.numeric_at(0), 3.0);
    }

    #[test]
    fn float_column_rejects_key_access() {
        let c = Column::Float(vec![0.5]);
        assert!(c.key_at(0).is_err());
    }

    #[test]
    fn text_dictionary_encoding_dedups() {
        let c = Column::from_strings(vec!["a".into(), "b".into(), "a".into()]);
        match &c {
            Column::Text { dict, codes } => {
                assert_eq!(dict.len(), 2);
                assert_eq!(codes, &vec![0, 1, 0]);
            }
            _ => panic!("expected text column"),
        }
        assert_eq!(c.text_code("b"), Some(1));
        assert_eq!(c.text_code("zzz"), None);
        assert_eq!(c.value(2), Value::Text("a".into()));
    }

    #[test]
    fn empty_column() {
        let c = Column::Int(vec![]);
        assert!(c.is_empty());
    }
}
