//! # lqo-engine
//!
//! The relational substrate for the `learned-qo` framework: an in-memory
//! columnar SPJ (select-project-join) engine with
//!
//! * typed columnar storage ([`table::Table`], [`column::Column`]),
//! * a catalog with primary/foreign-key metadata ([`catalog::Catalog`]),
//! * synthetic data generators modelled after IMDB/JOB, STATS/STATS-CEB and
//!   TPC-H ([`datagen`]),
//! * classical statistics — equi-depth histograms, most-common values,
//!   HyperLogLog distinct sketches, reservoir samples ([`stats`]),
//! * an SPJ query model with a small SQL-ish parser ([`query`]),
//! * logical join trees and physical plans ([`plan`]),
//! * a deterministic executor that counts *work units* alongside wall time
//!   and exposes true intermediate cardinalities ([`exec`]),
//! * and a Volcano-style cost-based optimizer with pluggable cardinality
//!   sources and Bao-style hint sets ([`optimizer`]).
//!
//! Everything downstream (learned cardinality estimators, learned cost
//! models, learned join-order search and end-to-end learned optimizers)
//! hooks into this crate through three seams, mirroring the three
//! components of a classical optimizer described in the paper:
//! [`optimizer::CardSource`] (cardinality estimation),
//! [`optimizer::cost`] (cost model) and [`optimizer::Optimizer`] /
//! [`optimizer::HintSet`] (plan enumeration).

#![warn(missing_docs)]

pub mod catalog;
pub mod column;
pub mod datagen;
pub mod error;
pub mod exec;
pub mod optimizer;
pub mod plan;
pub mod query;
pub mod schema;
pub mod stats;
pub mod table;
pub mod types;

pub use catalog::Catalog;
pub use error::{EngineError, Result};
pub use exec::{
    ExecConfig, ExecMode, ExecResult, Executor, ParallelConfig, TrueCardOracle, WorkMeter,
};
pub use optimizer::{
    enumerate_residual, residual_cost, CardSource, HintSet, Optimizer, ResidualChoice,
    ResidualLeaf, ResidualNode, TraditionalCardSource, TrueCardSource,
};
pub use plan::{JoinAlgo, JoinTree, PhysNode};
pub use query::{CmpOp, ColRef, JoinCond, Predicate, SpjQuery, TableRef, TableSet};
pub use stats::CatalogStats;
pub use table::Table;
pub use types::{DataType, Value};
