//! Optimizer hint sets — the steering surface Bao-style methods tune.

/// Constraints on plan enumeration. A hint set restricts which physical
/// operators the optimizer may use and, optionally, the shape and leading
/// prefix of the join order — mirroring PostgreSQL's `enable_*` GUCs (used
/// by Bao) and `pg_hint_plan`'s `Leading` hints (used by HyperQO).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintSet {
    /// Permit hash joins.
    pub allow_hash: bool,
    /// Permit nested-loop joins.
    pub allow_nl: bool,
    /// Permit merge joins.
    pub allow_merge: bool,
    /// Restrict enumeration to left-deep trees.
    pub left_deep_only: bool,
    /// Force the join order to start with these table positions, in order
    /// (implies a left-deep prefix). Empty = unconstrained.
    pub leading: Vec<usize>,
    /// Use exhaustive DP up to this many tables; greedy beyond.
    pub dp_table_limit: usize,
}

impl Default for HintSet {
    fn default() -> Self {
        HintSet {
            allow_hash: true,
            allow_nl: true,
            allow_merge: true,
            left_deep_only: false,
            leading: Vec::new(),
            dp_table_limit: 12,
        }
    }
}

impl HintSet {
    /// The unrestricted hint set.
    pub fn none() -> HintSet {
        HintSet::default()
    }

    /// The standard Bao-style arm family: every non-empty combination of
    /// the three join operators, plus a left-deep variant of the
    /// all-operators arm. Arm 0 is always the unrestricted native optimizer.
    pub fn standard_arms() -> Vec<HintSet> {
        let mut arms = Vec::new();
        for mask in (1u8..8).rev() {
            arms.push(HintSet {
                allow_hash: mask & 0b100 != 0,
                allow_nl: mask & 0b010 != 0,
                allow_merge: mask & 0b001 != 0,
                ..HintSet::default()
            });
        }
        arms.push(HintSet {
            left_deep_only: true,
            ..HintSet::default()
        });
        arms
    }

    /// A hint set forcing a leading join-order prefix.
    pub fn with_leading(leading: Vec<usize>) -> HintSet {
        HintSet {
            leading,
            ..HintSet::default()
        }
    }

    /// Number of join algorithms permitted.
    pub fn num_allowed_algos(&self) -> usize {
        self.allow_hash as usize + self.allow_nl as usize + self.allow_merge as usize
    }

    /// Short label for reports, e.g. `"hash+merge,left-deep"`.
    pub fn label(&self) -> String {
        let mut ops = Vec::new();
        if self.allow_hash {
            ops.push("hash");
        }
        if self.allow_nl {
            ops.push("nl");
        }
        if self.allow_merge {
            ops.push("merge");
        }
        let mut s = ops.join("+");
        if self.left_deep_only {
            s.push_str(",left-deep");
        }
        if !self.leading.is_empty() {
            s.push_str(&format!(",leading={:?}", self.leading));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_allows_everything() {
        let h = HintSet::default();
        assert_eq!(h.num_allowed_algos(), 3);
        assert!(!h.left_deep_only);
        assert!(h.leading.is_empty());
    }

    #[test]
    fn standard_arms_start_unrestricted() {
        let arms = HintSet::standard_arms();
        assert_eq!(arms.len(), 8);
        assert_eq!(arms[0], HintSet::default());
        // Every arm allows at least one operator.
        assert!(arms.iter().all(|a| a.num_allowed_algos() >= 1));
        // All arms are distinct.
        for (i, a) in arms.iter().enumerate() {
            for b in &arms[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(HintSet::default().label(), "hash+nl+merge");
        let h = HintSet {
            allow_merge: false,
            left_deep_only: true,
            ..HintSet::default()
        };
        assert_eq!(h.label(), "hash+nl,left-deep");
        assert!(HintSet::with_leading(vec![2, 0])
            .label()
            .contains("leading"));
    }
}
