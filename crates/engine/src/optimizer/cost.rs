//! The native analytical cost model.
//!
//! Predicts plan cost from estimated cardinalities using the same per-tuple
//! constants as the executor, but *without* the executor's runtime effects
//! (hash spills, nested-loop cache residency). See
//! [`crate::exec::workunits`] for why that gap is intentional.

use crate::catalog::Catalog;
use crate::error::Result;
use crate::exec::workunits::CostParams;
use crate::optimizer::card_source::CardSource;
use crate::plan::physical::{JoinAlgo, PhysNode};
use crate::query::spj::SpjQuery;

/// Estimated cost of one join operator, given input/output cardinalities.
pub fn join_op_cost(
    algo: JoinAlgo,
    params: &CostParams,
    left_rows: f64,
    right_rows: f64,
    out_rows: f64,
    out_width: usize,
    has_condition: bool,
) -> f64 {
    if !has_condition && algo != JoinAlgo::NestedLoop {
        // Hash/merge joins cannot evaluate a pure cross product.
        return f64::INFINITY;
    }
    match algo {
        JoinAlgo::Hash => params.hash_join_work(left_rows, right_rows, out_rows, out_width),
        JoinAlgo::NestedLoop => params.nl_join_work(left_rows, right_rows, out_rows, out_width),
        JoinAlgo::Merge => params.merge_join_work(left_rows, right_rows, out_rows, out_width),
    }
}

/// Estimated total cost of a plan under a cardinality source.
pub fn plan_cost(
    plan: &PhysNode,
    query: &SpjQuery,
    catalog: &Catalog,
    card: &dyn CardSource,
    params: &CostParams,
) -> Result<f64> {
    Ok(cost_rec(plan, query, catalog, card, params)?.0)
}

/// Recursive helper returning `(cost, estimated output rows)`.
fn cost_rec(
    plan: &PhysNode,
    query: &SpjQuery,
    catalog: &Catalog,
    card: &dyn CardSource,
    params: &CostParams,
) -> Result<(f64, f64)> {
    match plan {
        PhysNode::Scan { pos } => {
            let table = catalog.table(&query.tables[*pos].table)?;
            let npreds = query.predicates_on(*pos).len();
            let cost = params.scan_work(table.nrows() as f64, npreds);
            let rows = card.cardinality(query, crate::query::table_set::TableSet::singleton(*pos));
            Ok((cost, rows))
        }
        PhysNode::Join { algo, left, right } => {
            let (lcost, lrows) = cost_rec(left, query, catalog, card, params)?;
            let (rcost, rrows) = cost_rec(right, query, catalog, card, params)?;
            let out_set = plan.tables();
            let out_rows = card.cardinality(query, out_set);
            let has_cond = !query
                .joins_between(left.tables(), right.tables())
                .is_empty();
            let op = join_op_cost(
                *algo,
                params,
                lrows,
                rrows,
                out_rows,
                out_set.len(),
                has_cond,
            );
            Ok((lcost + rcost + op, out_rows))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::card_source::{CardSource, TraditionalCardSource};
    use crate::query::expr::{ColRef, JoinCond, TableRef};
    use crate::query::table_set::TableSet;
    use crate::stats::table_stats::{CatalogStats, StatsConfig};
    use crate::table::TableBuilder;
    use std::sync::Arc;

    fn setup() -> (Arc<Catalog>, Arc<dyn CardSource>, SpjQuery) {
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("a")
                .int("id", (0..100).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("b")
                .int("id", (0..1000).collect())
                .int("a_id", (0..1000).map(|i| i % 100).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        let c = Arc::new(c);
        let stats = Arc::new(CatalogStats::build(&c, StatsConfig::default()));
        let src: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(c.clone(), stats));
        let q = SpjQuery::new(
            vec![TableRef::new("a", "a"), TableRef::new("b", "b")],
            vec![JoinCond::new(
                ColRef::new("a", "id"),
                ColRef::new("b", "a_id"),
            )],
            vec![],
        );
        (c, src, q)
    }

    #[test]
    fn hash_beats_nested_loop_on_large_inputs() {
        let (c, src, q) = setup();
        let hash = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1));
        let nl = PhysNode::join(JoinAlgo::NestedLoop, PhysNode::scan(0), PhysNode::scan(1));
        let ch = plan_cost(&hash, &q, &c, src.as_ref(), &CostParams::default()).unwrap();
        let cn = plan_cost(&nl, &q, &c, src.as_ref(), &CostParams::default()).unwrap();
        assert!(ch < cn);
    }

    #[test]
    fn cross_product_hash_is_infinite() {
        let (c, src, mut q) = setup();
        q.joins.clear();
        let hash = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1));
        let cost = plan_cost(&hash, &q, &c, src.as_ref(), &CostParams::default()).unwrap();
        assert!(cost.is_infinite());
        let nl = PhysNode::join(JoinAlgo::NestedLoop, PhysNode::scan(0), PhysNode::scan(1));
        let cost = plan_cost(&nl, &q, &c, src.as_ref(), &CostParams::default()).unwrap();
        assert!(cost.is_finite());
    }

    #[test]
    fn cost_tracks_estimated_cardinality() {
        // Doubling the cardinality estimate of the output raises cost.
        struct Fixed(f64);
        impl CardSource for Fixed {
            fn cardinality(&self, _q: &SpjQuery, set: TableSet) -> f64 {
                if set.len() > 1 {
                    self.0
                } else {
                    100.0
                }
            }
        }
        let (c, _, q) = setup();
        let plan = PhysNode::join(JoinAlgo::Hash, PhysNode::scan(0), PhysNode::scan(1));
        let small = plan_cost(&plan, &q, &c, &Fixed(10.0), &CostParams::default()).unwrap();
        let big = plan_cost(&plan, &q, &c, &Fixed(10_000.0), &CostParams::default()).unwrap();
        assert!(big > small);
    }
}
