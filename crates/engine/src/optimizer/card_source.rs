//! Cardinality sources: the seam through which every cardinality estimator
//! — classical, true, injected, or learned — plugs into the optimizer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::catalog::Catalog;
use crate::exec::oracle::TrueCardOracle;
use crate::query::join_graph::JoinGraph;
use crate::query::spj::SpjQuery;
use crate::query::table_set::TableSet;
use crate::stats::table_stats::CatalogStats;

/// Supplies (estimated) cardinalities of sub-queries to the cost model.
pub trait CardSource: Send + Sync {
    /// Estimated number of result tuples of the sub-query induced by `set`.
    fn cardinality(&self, query: &SpjQuery, set: TableSet) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "card-source"
    }
}

/// The perfect estimator: answers with exact cardinalities from the oracle.
/// Plans costed under it define the "TrueCard" upper bound used in the E3
/// end-to-end evaluation (as in the STATS benchmark paper).
pub struct TrueCardSource {
    oracle: Arc<TrueCardOracle>,
    misses: AtomicU64,
    obs: lqo_obs::ObsContext,
}

impl TrueCardSource {
    /// Wrap an oracle.
    pub fn new(oracle: Arc<TrueCardOracle>) -> TrueCardSource {
        TrueCardSource {
            oracle,
            misses: AtomicU64::new(0),
            obs: lqo_obs::ObsContext::disabled(),
        }
    }

    /// Report oracle misses to `obs` (counter `lqo.card.true.misses`).
    pub fn with_obs(mut self, obs: lqo_obs::ObsContext) -> TrueCardSource {
        self.obs = obs;
        self
    }

    /// How many lookups the oracle could not answer (each was substituted
    /// with `1.0`). A non-zero value means the "TrueCard upper bound" is
    /// not actually true cardinalities — callers defining baselines (E3)
    /// must assert this stays zero.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl CardSource for TrueCardSource {
    fn cardinality(&self, query: &SpjQuery, set: TableSet) -> f64 {
        match self.oracle.true_card(query, set) {
            Ok(c) => c as f64,
            Err(_) => {
                // An oracle miss silently degrades the TrueCard baseline;
                // make it observable instead of papering over it.
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.obs.count("lqo.card.true.misses", 1);
                1.0
            }
        }
    }

    fn name(&self) -> &str {
        "true-card"
    }
}

/// PostgreSQL-style estimation: histogram/MCV selectivities per predicate,
/// attribute-independence across predicates, and `1/max(ndv_l, ndv_r)` per
/// join edge.
pub struct TraditionalCardSource {
    catalog: Arc<Catalog>,
    stats: Arc<CatalogStats>,
}

impl TraditionalCardSource {
    /// Build over a catalog and its statistics.
    pub fn new(catalog: Arc<Catalog>, stats: Arc<CatalogStats>) -> TraditionalCardSource {
        TraditionalCardSource { catalog, stats }
    }

    /// Estimated selectivity of all predicates on table position `pos`.
    pub fn table_selectivity(&self, query: &SpjQuery, pos: usize) -> f64 {
        let Ok(table) = self.catalog.table(&query.tables[pos].table) else {
            return 1.0;
        };
        let Some(tstats) = self.stats.table(table.name()) else {
            return 1.0;
        };
        let mut sel = 1.0;
        for pred in query.predicates_on(pos) {
            if let Ok(cstats) = tstats.column(table, &pred.col.column) {
                sel *= cstats.selectivity(pred.op, &pred.value);
            }
        }
        sel
    }

    /// NDV of the column a join condition references, post-nothing (base
    /// table NDV, as classical optimizers use).
    fn join_col_ndv(&self, query: &SpjQuery, col: &crate::query::expr::ColRef) -> f64 {
        let Ok(pos) = query.col_pos(col) else {
            return 1.0;
        };
        let Ok(table) = self.catalog.table(&query.tables[pos].table) else {
            return 1.0;
        };
        self.stats
            .table(table.name())
            .and_then(|ts| ts.column(table, &col.column).ok())
            .map(|cs| cs.ndv)
            .unwrap_or(1.0)
    }
}

impl CardSource for TraditionalCardSource {
    fn cardinality(&self, query: &SpjQuery, set: TableSet) -> f64 {
        let mut card = 1.0f64;
        for pos in set.iter() {
            let nrows = self
                .catalog
                .table(&query.tables[pos].table)
                .map(|t| t.nrows() as f64)
                .unwrap_or(1.0);
            card *= nrows * self.table_selectivity(query, pos);
        }
        for join in query.joins_within(set) {
            let ndv_l = self.join_col_ndv(query, &join.left);
            let ndv_r = self.join_col_ndv(query, &join.right);
            card /= ndv_l.max(ndv_r).max(1.0);
        }
        card.max(1.0)
    }

    fn name(&self) -> &str {
        "traditional"
    }
}

/// A source that returns injected per-sub-query estimates (keyed by the
/// canonical sub-query form) and falls back to an inner source otherwise.
/// This is the batch-injection interface PilotScope's cardinality driver
/// uses, and the hook through which learned estimators are evaluated
/// end-to-end (E3).
pub struct InjectedCardSource {
    overrides: Mutex<HashMap<String, f64>>,
    fallback: Arc<dyn CardSource>,
}

impl InjectedCardSource {
    /// Create with a fallback source.
    pub fn new(fallback: Arc<dyn CardSource>) -> InjectedCardSource {
        InjectedCardSource {
            overrides: Mutex::new(HashMap::new()),
            fallback,
        }
    }

    /// Inject an estimate for the sub-query induced by `set`. Non-finite
    /// injections (NaN/±∞, e.g. from a misbehaving learned estimator) are
    /// dropped rather than stored — the fallback source answers instead,
    /// so one bad push cannot poison every plan for the sub-query.
    pub fn inject(&self, query: &SpjQuery, set: TableSet, card: f64) {
        if !card.is_finite() {
            return;
        }
        self.overrides
            .lock()
            .unwrap()
            .insert(query.canonical_key(set), card.max(1.0));
    }

    /// Inject estimates for every connected sub-query of `query` from a
    /// closure (batch interface).
    pub fn inject_all(
        &self,
        query: &SpjQuery,
        max_size: usize,
        mut estimate: impl FnMut(&SpjQuery, TableSet) -> f64,
    ) {
        let graph = JoinGraph::new(query);
        for set in graph.connected_subsets(max_size) {
            self.inject(query, set, estimate(query, set));
        }
    }

    /// Number of injected entries.
    pub fn len(&self) -> usize {
        self.overrides.lock().unwrap().len()
    }

    /// True when nothing is injected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all injected entries.
    pub fn clear(&self) {
        self.overrides.lock().unwrap().clear();
    }
}

impl CardSource for InjectedCardSource {
    fn cardinality(&self, query: &SpjQuery, set: TableSet) -> f64 {
        let key = query.canonical_key(set);
        if let Some(&c) = self.overrides.lock().unwrap().get(&key) {
            return c;
        }
        self.fallback.cardinality(query, set)
    }

    fn name(&self) -> &str {
        "injected"
    }
}

/// Lero's tuning knob: multiply every join-level estimate by
/// `factor^(|set| - 1)`, leaving single tables untouched. Different factors
/// explore systematically different regions of the plan space.
pub struct ScaledCardSource {
    inner: Arc<dyn CardSource>,
    factor: f64,
}

impl ScaledCardSource {
    /// Scale join estimates of `inner` by powers of `factor`.
    pub fn new(inner: Arc<dyn CardSource>, factor: f64) -> ScaledCardSource {
        ScaledCardSource { inner, factor }
    }

    /// The scaling factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

impl CardSource for ScaledCardSource {
    fn cardinality(&self, query: &SpjQuery, set: TableSet) -> f64 {
        let base = self.inner.cardinality(query, set);
        if set.len() <= 1 {
            base
        } else {
            (base * self.factor.powi(set.len() as i32 - 1)).max(1.0)
        }
    }

    fn name(&self) -> &str {
        "scaled"
    }
}

/// Decorator that reports every cardinality lookup to an
/// [`lqo_obs::ObsContext`]:
/// each call is appended to the current query trace as a
/// [`lqo_obs::trace::CardLookup`] and counted under `lqo.card.lookups`.
/// Wrapped locally by the obs-aware enumerators, so estimator code and
/// the public `CardSource` implementations stay untouched.
pub struct TracingCardSource<'a> {
    inner: &'a dyn CardSource,
    obs: &'a lqo_obs::ObsContext,
}

impl<'a> TracingCardSource<'a> {
    /// Wrap `inner`, reporting lookups to `obs`.
    pub fn new(inner: &'a dyn CardSource, obs: &'a lqo_obs::ObsContext) -> TracingCardSource<'a> {
        TracingCardSource { inner, obs }
    }
}

impl CardSource for TracingCardSource<'_> {
    fn cardinality(&self, query: &SpjQuery, set: TableSet) -> f64 {
        let est = self.inner.cardinality(query, set);
        self.obs.count("lqo.card.lookups", 1);
        self.obs.with_query(|t| {
            t.planner.card_lookups.push(lqo_obs::trace::CardLookup {
                tables: set.0,
                est_rows: est,
            });
        });
        est
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Wraps a [`CardSource`] for the profiler: every lookup bumps the exact
/// estimator-call counter and runs under a (sampled) `estimate` hot
/// phase, so inference wall time lands in the phase tree separable from
/// enumeration and cost-model time.
pub struct ProfCardSource<'a> {
    inner: &'a dyn CardSource,
    prof: &'a lqo_prof::ProfContext,
}

impl<'a> ProfCardSource<'a> {
    /// Wrap `inner`, reporting lookups to `prof`.
    pub fn new(inner: &'a dyn CardSource, prof: &'a lqo_prof::ProfContext) -> ProfCardSource<'a> {
        ProfCardSource { inner, prof }
    }
}

impl CardSource for ProfCardSource<'_> {
    fn cardinality(&self, query: &SpjQuery, set: TableSet) -> f64 {
        self.prof.note_estimator_call();
        let _phase = self.prof.phase_hot("estimate");
        self.inner.cardinality(query, set)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::expr::{CmpOp, ColRef, JoinCond, Predicate, TableRef};
    use crate::stats::table_stats::StatsConfig;
    use crate::table::TableBuilder;
    use crate::types::Value;

    fn setup() -> (Arc<Catalog>, Arc<CatalogStats>, SpjQuery) {
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("a")
                .int("id", (0..100).collect())
                .int("v", (0..100).map(|i| i % 10).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("b")
                .int("id", (0..500).collect())
                .int("a_id", (0..500).map(|i| i % 100).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        let c = Arc::new(c);
        let stats = Arc::new(CatalogStats::build(&c, StatsConfig::default()));
        let q = SpjQuery::new(
            vec![TableRef::new("a", "a"), TableRef::new("b", "b")],
            vec![JoinCond::new(
                ColRef::new("a", "id"),
                ColRef::new("b", "a_id"),
            )],
            vec![Predicate::new(
                ColRef::new("a", "v"),
                CmpOp::Eq,
                Value::Int(3),
            )],
        );
        (c, stats, q)
    }

    #[test]
    fn traditional_estimates_are_reasonable() {
        let (c, stats, q) = setup();
        let src = TraditionalCardSource::new(c, stats);
        // Single table: 100 rows * sel(v = 3) = 100 * 0.1 = 10.
        let est = src.cardinality(&q, TableSet::singleton(0));
        assert!((est - 10.0).abs() < 1.0, "est = {est}");
        // Join: 10 * 500 / max(ndv=100, ndv=100) = 50.
        let est = src.cardinality(&q, q.all_tables());
        assert!((est - 50.0).abs() < 10.0, "est = {est}");
    }

    #[test]
    fn true_source_matches_oracle() {
        let (c, _, q) = setup();
        let oracle = Arc::new(TrueCardOracle::new(c));
        let src = TrueCardSource::new(oracle.clone());
        let true_card = oracle.true_card_full(&q).unwrap() as f64;
        assert_eq!(src.cardinality(&q, q.all_tables()), true_card);
        // True full card: a rows with v=3 are ids {3,13,...,93}; each
        // matches 5 b rows -> 50.
        assert_eq!(true_card, 50.0);
    }

    #[test]
    fn true_source_counts_oracle_misses() {
        let (c, _, q) = setup();
        let src = TrueCardSource::new(Arc::new(TrueCardOracle::new(c)));
        // Valid lookups are not misses.
        let _ = src.cardinality(&q, q.all_tables());
        let _ = src.cardinality(&q, TableSet::singleton(0));
        assert_eq!(src.misses(), 0);
        // A query over a table the catalog does not hold cannot be
        // executed: the substitute 1.0 must be counted, not silent.
        let bad = SpjQuery::new(vec![TableRef::new("missing", "m")], vec![], vec![]);
        assert_eq!(src.cardinality(&bad, bad.all_tables()), 1.0);
        assert_eq!(src.misses(), 1);
        assert_eq!(src.cardinality(&bad, bad.all_tables()), 1.0);
        assert_eq!(src.misses(), 2);
    }

    #[test]
    fn injection_overrides_and_falls_back() {
        let (c, stats, q) = setup();
        let fallback: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(c, stats));
        let injected = InjectedCardSource::new(fallback.clone());
        assert!(injected.is_empty());
        injected.inject(&q, q.all_tables(), 1234.0);
        assert_eq!(injected.cardinality(&q, q.all_tables()), 1234.0);
        // Non-injected subset falls back.
        assert_eq!(
            injected.cardinality(&q, TableSet::singleton(1)),
            fallback.cardinality(&q, TableSet::singleton(1))
        );
        injected.clear();
        assert!(injected.is_empty());
    }

    #[test]
    fn non_finite_injections_are_dropped() {
        let (c, stats, q) = setup();
        let fallback: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(c, stats));
        let injected = InjectedCardSource::new(fallback.clone());
        injected.inject(&q, q.all_tables(), f64::NAN);
        injected.inject(&q, q.all_tables(), f64::INFINITY);
        assert!(injected.is_empty());
        assert_eq!(
            injected.cardinality(&q, q.all_tables()),
            fallback.cardinality(&q, q.all_tables())
        );
    }

    #[test]
    fn inject_all_covers_connected_subsets() {
        let (c, stats, q) = setup();
        let fallback: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(c, stats));
        let injected = InjectedCardSource::new(fallback);
        injected.inject_all(&q, 4, |_, set| set.len() as f64 * 7.0);
        // 2 singletons + 1 pair = 3 connected subsets.
        assert_eq!(injected.len(), 3);
        assert_eq!(injected.cardinality(&q, q.all_tables()), 14.0);
    }

    #[test]
    fn scaling_leaves_singletons_untouched() {
        let (c, stats, q) = setup();
        let inner: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(c, stats));
        let scaled = ScaledCardSource::new(inner.clone(), 10.0);
        assert_eq!(
            scaled.cardinality(&q, TableSet::singleton(0)),
            inner.cardinality(&q, TableSet::singleton(0))
        );
        let base = inner.cardinality(&q, q.all_tables());
        assert!((scaled.cardinality(&q, q.all_tables()) - base * 10.0).abs() < 1e-6);
    }
}
