//! Plan enumeration: exhaustive DP over connected subsets and GOO-style
//! greedy construction.

use std::collections::HashMap;

use lqo_obs::ObsContext;
use lqo_prof::ProfContext;

use crate::catalog::Catalog;
use crate::error::{EngineError, Result};
use crate::exec::workunits::CostParams;
use crate::optimizer::card_source::{CardSource, ProfCardSource, TracingCardSource};
use crate::optimizer::cost::join_op_cost;
use crate::optimizer::hints::HintSet;
use crate::plan::physical::{JoinAlgo, PhysNode};
use crate::query::join_graph::JoinGraph;
use crate::query::spj::SpjQuery;
use crate::query::table_set::TableSet;

/// An optimized plan with its estimated cost.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// The chosen physical plan.
    pub plan: PhysNode,
    /// Estimated cost under the cardinality source used at optimization.
    pub cost: f64,
}

pub(crate) fn allowed_algos(hints: &HintSet) -> Vec<JoinAlgo> {
    let mut v = Vec::with_capacity(3);
    if hints.allow_hash {
        v.push(JoinAlgo::Hash);
    }
    if hints.allow_nl {
        v.push(JoinAlgo::NestedLoop);
    }
    if hints.allow_merge {
        v.push(JoinAlgo::Merge);
    }
    v
}

struct LeadingConstraint {
    prefix: Vec<TableSet>,
    full: TableSet,
}

impl LeadingConstraint {
    fn new(leading: &[usize]) -> LeadingConstraint {
        let mut prefix = Vec::with_capacity(leading.len() + 1);
        let mut acc = TableSet::EMPTY;
        prefix.push(acc);
        for &t in leading {
            acc = acc.insert(t);
            prefix.push(acc);
        }
        LeadingConstraint { prefix, full: acc }
    }

    fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    /// May `set` appear as a sub-plan?
    fn set_ok(&self, set: TableSet) -> bool {
        if self.len() == 0 || set.len() == 1 {
            return true;
        }
        let inter = set.intersect(self.full);
        if inter.is_empty() {
            return true;
        }
        if set.len() <= self.len() {
            set == self.prefix[set.len()]
        } else {
            inter == self.full
        }
    }

    /// May `left ⋈ right` form the sub-plan over their union?
    fn partition_ok(&self, left: TableSet, right: TableSet) -> bool {
        if self.len() == 0 {
            return true;
        }
        let union = left.union(right);
        let inter = union.intersect(self.full);
        if inter.is_empty() {
            return true;
        }
        if union.len() <= self.len() {
            // Inside the prefix: the spine is fixed, left-deep.
            left == self.prefix[union.len() - 1] && right.len() == 1
        } else {
            // Above the prefix: the whole prefix must stay on the left.
            inter.is_subset_of(left)
        }
    }
}

/// Exhaustive dynamic programming over connected subsets (DPsub). Requires
/// a connected join graph; errors otherwise so callers can fall back to
/// greedy enumeration.
pub fn dp_optimize(
    query: &SpjQuery,
    graph: &JoinGraph,
    catalog: &Catalog,
    card: &dyn CardSource,
    params: &CostParams,
    hints: &HintSet,
) -> Result<PlanChoice> {
    dp_optimize_obs(
        query,
        graph,
        catalog,
        card,
        params,
        hints,
        &ObsContext::disabled(),
        &ProfContext::disabled(),
    )
}

/// [`dp_optimize`] with observability: records the enumeration algorithm,
/// subproblem and cost-evaluation counts, and the chosen plan's cost on
/// the in-flight query trace (no-ops when `obs` is disabled).
#[allow(clippy::too_many_arguments)]
pub fn dp_optimize_obs(
    query: &SpjQuery,
    graph: &JoinGraph,
    catalog: &Catalog,
    card: &dyn CardSource,
    params: &CostParams,
    hints: &HintSet,
    obs: &ObsContext,
    prof: &ProfContext,
) -> Result<PlanChoice> {
    let _span = obs.span("plan.dp");
    let _prof_enum = prof.phase("enumerate");
    let profiled;
    let card: &dyn CardSource = if prof.is_enabled() {
        profiled = ProfCardSource::new(card, prof);
        &profiled
    } else {
        card
    };
    let traced;
    let card: &dyn CardSource = if obs.is_enabled() {
        traced = TracingCardSource::new(card, obs);
        &traced
    } else {
        card
    };
    let mut subproblems = 0u64;
    let mut cost_evals = 0u64;
    let n = query.num_tables();
    if n == 0 {
        return Err(EngineError::NoPlanFound("query has no tables".into()));
    }
    if !graph.is_connected(query.all_tables()) {
        return Err(EngineError::NoPlanFound(
            "join graph is disconnected; use greedy enumeration".into(),
        ));
    }
    let algos = allowed_algos(hints);
    if algos.is_empty() {
        return Err(EngineError::NoPlanFound(
            "all join algorithms disabled".into(),
        ));
    }
    let leading = LeadingConstraint::new(&hints.leading);

    struct Entry {
        plan: PhysNode,
        cost: f64,
        rows: f64,
    }
    let mut best: HashMap<u64, Entry> = HashMap::new();

    // Base case: single-table scans.
    for pos in 0..n {
        let table = catalog.table(&query.tables[pos].table)?;
        let npreds = query.predicates_on(pos).len();
        let set = TableSet::singleton(pos);
        best.insert(
            set.0,
            Entry {
                plan: PhysNode::scan(pos),
                cost: params.scan_work(table.nrows() as f64, npreds),
                rows: card.cardinality(query, set),
            },
        );
    }

    let full = query.all_tables();
    for mask in 1..=full.0 {
        let set = TableSet(mask & full.0);
        if set.0 != mask || set.len() < 2 {
            continue;
        }
        if !graph.is_connected(set) || !leading.set_ok(set) {
            continue;
        }
        subproblems += 1;
        let out_rows = card.cardinality(query, set);
        let width = set.len();
        let mut best_here: Option<Entry> = None;
        // One (sampled) cost phase per subproblem: the partition/algo
        // search below is pure cost-model arithmetic, no card lookups.
        let _prof_cost = prof.phase_hot("cost");
        for left in set.proper_subsets() {
            let right = set.minus(left);
            if hints.left_deep_only && right.len() != 1 {
                continue;
            }
            if !leading.partition_ok(left, right) {
                continue;
            }
            let (Some(le), Some(re)) = (best.get(&left.0), best.get(&right.0)) else {
                continue;
            };
            // `set` is connected and both halves are connected, so at
            // least one join edge crosses the cut.
            let base = le.cost + re.cost;
            let (lrows, rrows) = (le.rows, re.rows);
            for &algo in &algos {
                cost_evals += 1;
                let op = join_op_cost(algo, params, lrows, rrows, out_rows, width, true);
                let total = base + op;
                // total_cmp so a NaN cost (from a misbehaving estimator)
                // sorts last instead of poisoning the incumbent.
                if best_here
                    .as_ref()
                    .is_none_or(|b| total.total_cmp(&b.cost).is_lt())
                {
                    best_here = Some(Entry {
                        plan: PhysNode::join(algo, le.plan.clone(), re.plan.clone()),
                        cost: total,
                        rows: out_rows,
                    });
                }
            }
        }
        drop(_prof_cost);
        if let Some(e) = best_here {
            best.insert(set.0, e);
        }
    }

    let choice = best
        .remove(&full.0)
        .map(|e| PlanChoice {
            plan: e.plan,
            cost: e.cost,
        })
        .ok_or_else(|| EngineError::NoPlanFound("DP produced no plan for the full query".into()))?;
    record_enumeration(obs, prof, "dp", subproblems, cost_evals, choice.cost);
    Ok(choice)
}

/// Attach enumeration provenance to the in-flight trace and metrics.
fn record_enumeration(
    obs: &ObsContext,
    prof: &ProfContext,
    algo: &str,
    subproblems: u64,
    cost_evals: u64,
    cost: f64,
) {
    if prof.is_enabled() {
        // Exact cost-evaluation count as work units on the cost frame
        // (its wall clock comes from the sampled hot phases); the
        // caller's `enumerate` phase is still open, so this lands at
        // `...;enumerate;cost`.
        prof.record_child("cost", 0, 0, cost_evals as f64);
    }
    if !obs.is_enabled() {
        return;
    }
    obs.with_query(|t| {
        t.planner.algo = Some(algo.to_string());
        t.planner.subproblems = subproblems;
        t.planner.cost_evals = cost_evals;
        t.planner.chosen_cost = Some(cost);
    });
    obs.count("lqo.plan.queries", 1);
    obs.observe("lqo.plan.subproblems", subproblems as f64);
    obs.observe("lqo.plan.cost_evals", cost_evals as f64);
}

struct Item {
    plan: PhysNode,
    set: TableSet,
    rows: f64,
    cost: f64,
}

/// Enumeration effort counters for observability.
#[derive(Default)]
struct EnumCounters {
    /// Candidate subproblems (table-set pairs) evaluated.
    subproblems: u64,
    /// Cost-model invocations.
    cost_evals: u64,
}

/// Best permitted join of two items; cross products always fall back to
/// nested loops (the only operator that can evaluate them), regardless of
/// hints, so a plan always exists.
#[allow(clippy::too_many_arguments)]
fn best_join(
    query: &SpjQuery,
    card: &dyn CardSource,
    params: &CostParams,
    algos: &[JoinAlgo],
    left: &Item,
    right: &Item,
    counters: &mut EnumCounters,
    prof: &ProfContext,
) -> (JoinAlgo, f64, f64) {
    counters.subproblems += 1;
    let out_set = left.set.union(right.set);
    let out_rows = card.cardinality(query, out_set);
    let width = out_set.len();
    // Card lookup above stays outside the (sampled) cost phase, so
    // estimate and cost time are siblings under `enumerate`.
    let _prof_cost = prof.phase_hot("cost");
    let has_cond = !query.joins_between(left.set, right.set).is_empty();
    if !has_cond {
        counters.cost_evals += 1;
        let op = join_op_cost(
            JoinAlgo::NestedLoop,
            params,
            left.rows,
            right.rows,
            out_rows,
            width,
            false,
        );
        return (JoinAlgo::NestedLoop, op, out_rows);
    }
    let mut best = (JoinAlgo::NestedLoop, f64::INFINITY, out_rows);
    for &algo in algos {
        counters.cost_evals += 1;
        let op = join_op_cost(algo, params, left.rows, right.rows, out_rows, width, true);
        if op.total_cmp(&best.1).is_lt() {
            best = (algo, op, out_rows);
        }
    }
    if best.1.is_infinite() {
        // No permitted algorithm: fall back to nested loops.
        counters.cost_evals += 1;
        let op = join_op_cost(
            JoinAlgo::NestedLoop,
            params,
            left.rows,
            right.rows,
            out_rows,
            width,
            true,
        );
        best = (JoinAlgo::NestedLoop, op, out_rows);
    }
    best
}

/// GOO-style greedy enumeration: repeatedly join the pair of sub-plans with
/// the cheapest join, preferring joinable (connected) pairs over cross
/// products. Handles disconnected graphs, any query size, leading prefixes
/// and left-deep restrictions.
pub fn greedy_optimize(
    query: &SpjQuery,
    graph: &JoinGraph,
    catalog: &Catalog,
    card: &dyn CardSource,
    params: &CostParams,
    hints: &HintSet,
) -> Result<PlanChoice> {
    greedy_optimize_obs(
        query,
        graph,
        catalog,
        card,
        params,
        hints,
        &ObsContext::disabled(),
        &ProfContext::disabled(),
    )
}

/// [`greedy_optimize`] with observability: records the enumeration
/// algorithm, candidate-pair and cost-evaluation counts, and the chosen
/// plan's cost on the in-flight query trace (no-ops when `obs` is
/// disabled).
#[allow(clippy::too_many_arguments)]
pub fn greedy_optimize_obs(
    query: &SpjQuery,
    graph: &JoinGraph,
    catalog: &Catalog,
    card: &dyn CardSource,
    params: &CostParams,
    hints: &HintSet,
    obs: &ObsContext,
    prof: &ProfContext,
) -> Result<PlanChoice> {
    let _span = obs.span("plan.greedy");
    let _prof_enum = prof.phase("enumerate");
    let profiled;
    let card: &dyn CardSource = if prof.is_enabled() {
        profiled = ProfCardSource::new(card, prof);
        &profiled
    } else {
        card
    };
    let traced;
    let card: &dyn CardSource = if obs.is_enabled() {
        traced = TracingCardSource::new(card, obs);
        &traced
    } else {
        card
    };
    let mut counters = EnumCounters::default();
    let n = query.num_tables();
    if n == 0 {
        return Err(EngineError::NoPlanFound("query has no tables".into()));
    }
    let algos = allowed_algos(hints);
    if algos.is_empty() {
        return Err(EngineError::NoPlanFound(
            "all join algorithms disabled".into(),
        ));
    }
    let mut items: Vec<Item> = Vec::with_capacity(n);
    for pos in 0..n {
        let table = catalog.table(&query.tables[pos].table)?;
        let npreds = query.predicates_on(pos).len();
        let set = TableSet::singleton(pos);
        items.push(Item {
            plan: PhysNode::scan(pos),
            set,
            rows: card.cardinality(query, set),
            cost: params.scan_work(table.nrows() as f64, npreds),
        });
    }

    // Forced leading prefix: fold the named tables into one spine item.
    let mut spine: Option<Item> = None;
    for &t in &hints.leading {
        let idx = items
            .iter()
            .position(|it| it.set == TableSet::singleton(t))
            .ok_or_else(|| EngineError::NoPlanFound(format!("leading table {t} unavailable")))?;
        let next = items.swap_remove(idx);
        spine = Some(match spine {
            None => next,
            Some(s) => {
                let (algo, op, rows) =
                    best_join(query, card, params, &algos, &s, &next, &mut counters, prof);
                Item {
                    plan: PhysNode::join(algo, s.plan, next.plan),
                    set: s.set.union(next.set),
                    rows,
                    cost: s.cost + next.cost + op,
                }
            }
        });
    }

    if hints.left_deep_only || spine.is_some() {
        // Left-deep continuation from the spine (or cheapest table).
        let mut spine = match spine {
            Some(s) => s,
            None => {
                // total_cmp: a NaN estimate from a misbehaving source must
                // not panic the planner (NaN sorts last, so it never wins).
                let idx = (0..items.len())
                    .min_by(|&a, &b| items[a].rows.total_cmp(&items[b].rows))
                    .unwrap();
                items.swap_remove(idx)
            }
        };
        while !items.is_empty() {
            let mut best_idx = 0;
            let mut best_score = f64::INFINITY;
            let mut best_conn = false;
            for (i, it) in items.iter().enumerate() {
                let conn = graph.has_edge_between(spine.set, it.set);
                let (_, op, _) =
                    best_join(query, card, params, &algos, &spine, it, &mut counters, prof);
                // Connected candidates strictly dominate cross products.
                if (conn, -op) > (best_conn, -best_score) {
                    best_conn = conn;
                    best_score = op;
                    best_idx = i;
                }
            }
            let next = items.swap_remove(best_idx);
            let (algo, op, rows) = best_join(
                query,
                card,
                params,
                &algos,
                &spine,
                &next,
                &mut counters,
                prof,
            );
            spine = Item {
                plan: PhysNode::join(algo, spine.plan, next.plan),
                set: spine.set.union(next.set),
                rows,
                cost: spine.cost + next.cost + op,
            };
        }
        record_enumeration(
            obs,
            prof,
            "greedy",
            counters.subproblems,
            counters.cost_evals,
            spine.cost,
        );
        return Ok(PlanChoice {
            plan: spine.plan,
            cost: spine.cost,
        });
    }

    // Full GOO: merge the globally cheapest pair until one item remains.
    while items.len() > 1 {
        let mut best_pair = (0usize, 1usize);
        let mut best_op = f64::INFINITY;
        let mut best_conn = false;
        for i in 0..items.len() {
            for j in 0..items.len() {
                if i == j {
                    continue;
                }
                let conn = graph.has_edge_between(items[i].set, items[j].set);
                let (_, op, _) = best_join(
                    query,
                    card,
                    params,
                    &algos,
                    &items[i],
                    &items[j],
                    &mut counters,
                    prof,
                );
                if (conn, -op) > (best_conn, -best_op) {
                    best_conn = conn;
                    best_op = op;
                    best_pair = (i, j);
                }
            }
        }
        let (i, j) = best_pair;
        let (hi, lo) = (i.max(j), i.min(j));
        let right = items.swap_remove(hi);
        let left = items.swap_remove(lo);
        // `right`/`left` may be swapped relative to best_pair orientation;
        // re-derive the actual orientation.
        let (l, r) = if i < j { (left, right) } else { (right, left) };
        let (algo, op, rows) = best_join(query, card, params, &algos, &l, &r, &mut counters, prof);
        items.push(Item {
            plan: PhysNode::join(algo, l.plan, r.plan),
            set: l.set.union(r.set),
            rows,
            cost: l.cost + r.cost + op,
        });
    }
    let final_item = items.pop().unwrap();
    record_enumeration(
        obs,
        prof,
        "greedy",
        counters.subproblems,
        counters.cost_evals,
        final_item.cost,
    );
    Ok(PlanChoice {
        plan: final_item.plan,
        cost: final_item.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::card_source::{TraditionalCardSource, TrueCardSource};
    use crate::query::expr::{ColRef, JoinCond, TableRef};
    use crate::stats::table_stats::{CatalogStats, StatsConfig};
    use crate::table::TableBuilder;
    use crate::TrueCardOracle;
    use std::sync::Arc;

    /// Chain schema a -> b -> d with skew: b has 10 rows per a, d has 3 per b.
    fn setup() -> (Arc<Catalog>, SpjQuery) {
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("a")
                .int("id", (0..50).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("b")
                .int("id", (0..500).collect())
                .int("a_id", (0..500).map(|i| i % 50).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("d")
                .int("id", (0..1500).collect())
                .int("b_id", (0..1500).map(|i| i % 500).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        let q = SpjQuery::new(
            vec![
                TableRef::new("a", "a"),
                TableRef::new("b", "b"),
                TableRef::new("d", "d"),
            ],
            vec![
                JoinCond::new(ColRef::new("a", "id"), ColRef::new("b", "a_id")),
                JoinCond::new(ColRef::new("b", "id"), ColRef::new("d", "b_id")),
            ],
            vec![],
        );
        (Arc::new(c), q)
    }

    fn sources(c: &Arc<Catalog>) -> (TraditionalCardSource, TrueCardSource) {
        let stats = Arc::new(CatalogStats::build(c, StatsConfig::default()));
        let oracle = Arc::new(TrueCardOracle::new(c.clone()));
        (
            TraditionalCardSource::new(c.clone(), stats),
            TrueCardSource::new(oracle),
        )
    }

    #[test]
    fn dp_produces_valid_executable_plan() {
        let (c, q) = setup();
        let (trad, _) = sources(&c);
        let g = JoinGraph::new(&q);
        let choice = dp_optimize(
            &q,
            &g,
            &c,
            &trad,
            &CostParams::default(),
            &HintSet::default(),
        )
        .unwrap();
        assert_eq!(choice.plan.tables(), q.all_tables());
        assert!(choice.cost.is_finite());
        let ex = crate::exec::executor::Executor::with_defaults(&c);
        assert_eq!(ex.execute(&q, &choice.plan).unwrap().count, 1500);
    }

    #[test]
    fn dp_is_no_worse_than_greedy_under_same_cards() {
        let (c, q) = setup();
        let (_, truth) = sources(&c);
        let g = JoinGraph::new(&q);
        let dp = dp_optimize(
            &q,
            &g,
            &c,
            &truth,
            &CostParams::default(),
            &HintSet::default(),
        )
        .unwrap();
        let greedy = greedy_optimize(
            &q,
            &g,
            &c,
            &truth,
            &CostParams::default(),
            &HintSet::default(),
        )
        .unwrap();
        assert!(dp.cost <= greedy.cost + 1e-9);
    }

    #[test]
    fn left_deep_hint_restricts_shape() {
        let (c, q) = setup();
        let (trad, _) = sources(&c);
        let g = JoinGraph::new(&q);
        let hints = HintSet {
            left_deep_only: true,
            ..HintSet::default()
        };
        let dp = dp_optimize(&q, &g, &c, &trad, &CostParams::default(), &hints).unwrap();
        assert!(dp.plan.join_tree().is_left_deep());
        let greedy = greedy_optimize(&q, &g, &c, &trad, &CostParams::default(), &hints).unwrap();
        assert!(greedy.plan.join_tree().is_left_deep());
    }

    #[test]
    fn leading_hint_fixes_prefix() {
        let (c, q) = setup();
        let (trad, _) = sources(&c);
        let g = JoinGraph::new(&q);
        for leading in [vec![2, 1], vec![1, 0], vec![0, 1, 2]] {
            let hints = HintSet::with_leading(leading.clone());
            let dp = dp_optimize(&q, &g, &c, &trad, &CostParams::default(), &hints).unwrap();
            let order = dp.plan.join_tree().leaf_order();
            assert_eq!(
                &order[..leading.len()],
                &leading[..],
                "DP violated leading {leading:?}: got {order:?}"
            );
            let gr = greedy_optimize(&q, &g, &c, &trad, &CostParams::default(), &hints).unwrap();
            let order = gr.plan.join_tree().leaf_order();
            assert_eq!(&order[..leading.len()], &leading[..]);
        }
    }

    #[test]
    fn operator_hints_respected() {
        let (c, q) = setup();
        let (trad, _) = sources(&c);
        let g = JoinGraph::new(&q);
        let hints = HintSet {
            allow_hash: false,
            allow_nl: false,
            allow_merge: true,
            ..HintSet::default()
        };
        let dp = dp_optimize(&q, &g, &c, &trad, &CostParams::default(), &hints).unwrap();
        dp.plan.visit_bottom_up(&mut |n| {
            if let PhysNode::Join { algo, .. } = n {
                assert_eq!(*algo, JoinAlgo::Merge);
            }
        });
    }

    #[test]
    fn disconnected_graph_dp_errors_greedy_succeeds() {
        let (c, mut q) = setup();
        q.joins.pop(); // disconnect d
        let (trad, _) = sources(&c);
        let g = JoinGraph::new(&q);
        assert!(dp_optimize(
            &q,
            &g,
            &c,
            &trad,
            &CostParams::default(),
            &HintSet::default()
        )
        .is_err());
        let gr = greedy_optimize(
            &q,
            &g,
            &c,
            &trad,
            &CostParams::default(),
            &HintSet::default(),
        )
        .unwrap();
        assert_eq!(gr.plan.tables(), q.all_tables());
        // a⋈b yields 500 rows; crossing with d's 1500 rows gives 750k.
        let ex = crate::exec::executor::Executor::with_defaults(&c);
        assert_eq!(ex.execute(&q, &gr.plan).unwrap().count, 500 * 1500);
    }

    #[test]
    fn all_disabled_is_an_error() {
        let (c, q) = setup();
        let (trad, _) = sources(&c);
        let g = JoinGraph::new(&q);
        let hints = HintSet {
            allow_hash: false,
            allow_nl: false,
            allow_merge: false,
            ..HintSet::default()
        };
        assert!(dp_optimize(&q, &g, &c, &trad, &CostParams::default(), &hints).is_err());
        assert!(greedy_optimize(&q, &g, &c, &trad, &CostParams::default(), &hints).is_err());
    }

    #[test]
    fn profiler_phases_cover_enumeration() {
        let (c, q) = setup();
        let (trad, _) = sources(&c);
        let prof = ProfContext::enabled();
        let opt = crate::optimizer::Optimizer::with_defaults(&c).with_prof(prof.clone());
        let choice = opt.optimize(&q, &trad, &HintSet::default()).unwrap();
        assert!(choice.cost.is_finite());
        let total = prof.total();
        assert!(total.frames.contains_key("enumerate"), "{total:?}");
        assert!(total.frames.contains_key("enumerate;estimate"));
        assert!(total.frames.contains_key("enumerate;cost"));
        assert!(prof.estimator_calls() > 0);
        // Cost frame carries the exact cost-evaluation count as units.
        assert!(total.frames["enumerate;cost"].units > 0.0);
        // Per-query estimator-call delta is exposed on the profile.
        let prof2 = ProfContext::enabled();
        let opt2 = crate::optimizer::Optimizer::with_defaults(&c).with_prof(prof2.clone());
        prof2.begin_query("q");
        opt2.optimize(&q, &trad, &HintSet::default()).unwrap();
        let qp = prof2.end_query().unwrap();
        assert_eq!(
            qp.counters[lqo_prof::CTR_ESTIMATOR_CALLS],
            prof2.estimator_calls()
        );
    }

    #[test]
    fn single_table_query() {
        let (c, _) = setup();
        let q = SpjQuery::new(vec![TableRef::new("a", "a")], vec![], vec![]);
        let (trad, _) = sources(&c);
        let g = JoinGraph::new(&q);
        let dp = dp_optimize(
            &q,
            &g,
            &c,
            &trad,
            &CostParams::default(),
            &HintSet::default(),
        )
        .unwrap();
        assert_eq!(dp.plan, PhysNode::scan(0));
    }
}
