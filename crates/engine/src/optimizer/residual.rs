//! Enumeration over a partially-materialized query: the residual join
//! graph whose leaves are a mix of already-materialized intermediate
//! relations (exact observed cardinality, zero acquisition cost) and
//! not-yet-executed base-table scans.
//!
//! This is the planning half of mid-query adaptive re-optimization: when
//! a materialization checkpoint observes a cardinality badly off its
//! estimate, the remaining work is re-planned *from here* — every
//! relation built so far becomes an opaque leaf, and only the joins
//! still ahead are enumerated. Unlike the full optimizer, every
//! cardinality lookup and cost evaluation here charges a caller-supplied
//! [`WorkMeter`], so re-planning effort is bounded by the same work-unit
//! currency as execution and trips [`EngineError::WorkLimitExceeded`]
//! when the reopt guard's budget runs out.

use std::collections::HashMap;

use crate::error::{EngineError, Result};
use crate::exec::executor::WorkMeter;
use crate::exec::workunits::CostParams;
use crate::optimizer::card_source::CardSource;
use crate::optimizer::cost::join_op_cost;
use crate::optimizer::enumerate::allowed_algos;
use crate::optimizer::hints::HintSet;
use crate::plan::physical::JoinAlgo;
use crate::query::spj::SpjQuery;
use crate::query::table_set::TableSet;

/// Work units charged to the re-planning budget per cardinality lookup.
pub const RESIDUAL_LOOKUP_WORK: f64 = 4.0;
/// Work units charged to the re-planning budget per cost-model
/// evaluation.
pub const RESIDUAL_COST_EVAL_WORK: f64 = 0.25;

/// One leaf of the residual join graph.
#[derive(Debug, Clone)]
pub struct ResidualLeaf {
    /// Base tables this leaf covers.
    pub set: TableSet,
    /// Row count used for planning: the exact observed cardinality for
    /// materialized intermediates, the (calibrated) estimate for pending
    /// scans.
    pub rows: f64,
    /// Acquisition cost: zero for materialized intermediates (the work is
    /// sunk), the scan cost for pending scans.
    pub cost: f64,
    /// Whether the leaf is an already-materialized relation.
    pub materialized: bool,
}

/// A plan over residual leaves. Leaves are indices into the caller's
/// [`ResidualLeaf`] slice, so the same tree shape can be compared
/// structurally across re-planning rounds (the no-op-splice check).
#[derive(Debug, Clone, PartialEq)]
pub enum ResidualNode {
    /// The leaf at this index in the leaf slice.
    Leaf(usize),
    /// A join of two residual sub-plans (left = build side).
    Join {
        /// Join algorithm.
        algo: JoinAlgo,
        /// Build side.
        left: Box<ResidualNode>,
        /// Probe side.
        right: Box<ResidualNode>,
    },
}

impl ResidualNode {
    /// Base tables covered by this sub-plan.
    pub fn tables(&self, leaves: &[ResidualLeaf]) -> TableSet {
        match self {
            ResidualNode::Leaf(i) => leaves[*i].set,
            ResidualNode::Join { left, right, .. } => {
                left.tables(leaves).union(right.tables(leaves))
            }
        }
    }

    /// Number of join operators in this sub-plan.
    pub fn num_joins(&self) -> usize {
        match self {
            ResidualNode::Leaf(_) => 0,
            ResidualNode::Join { left, right, .. } => 1 + left.num_joins() + right.num_joins(),
        }
    }
}

/// A residual plan with its estimated cost.
#[derive(Debug, Clone)]
pub struct ResidualChoice {
    /// The chosen residual plan.
    pub plan: ResidualNode,
    /// Estimated cost (sunk acquisition costs of materialized leaves
    /// excluded — they are zero by construction).
    pub cost: f64,
}

struct ResidualCtx<'a> {
    query: &'a SpjQuery,
    leaves: &'a [ResidualLeaf],
    card: &'a dyn CardSource,
    params: &'a CostParams,
    algos: Vec<JoinAlgo>,
    /// Adjacency over leaf indices: bit `j` of `adj[i]` is set iff a join
    /// condition connects leaves `i` and `j`.
    adj: Vec<u64>,
}

impl ResidualCtx<'_> {
    fn union_set(&self, mask: u64) -> TableSet {
        let mut set = TableSet::EMPTY;
        for (i, leaf) in self.leaves.iter().enumerate() {
            if mask >> i & 1 == 1 {
                set = set.union(leaf.set);
            }
        }
        set
    }

    fn rows_of(&self, mask: u64, budget: &mut WorkMeter) -> Result<f64> {
        budget.add(RESIDUAL_LOOKUP_WORK)?;
        Ok(self.card.cardinality(self.query, self.union_set(mask)))
    }

    /// Is the leaf-index `mask` connected in the quotient join graph?
    fn connected(&self, mask: u64) -> bool {
        if mask == 0 {
            return false;
        }
        let seed = mask & mask.wrapping_neg();
        let mut seen = seed;
        loop {
            let mut grew = seen;
            for i in 0..self.leaves.len() {
                if seen >> i & 1 == 1 {
                    grew |= self.adj[i] & mask;
                }
            }
            if grew == seen {
                return seen == mask;
            }
            seen = grew;
        }
    }

    /// Cheapest permitted join of two sub-plans with known row counts;
    /// cross products fall back to nested loops so a plan always exists.
    /// Mirrors the full enumerator's `best_join`, with every evaluation
    /// charged to the re-planning budget.
    fn best_pair(
        &self,
        lset: TableSet,
        lrows: f64,
        rset: TableSet,
        rrows: f64,
        out_rows: f64,
        budget: &mut WorkMeter,
    ) -> Result<(JoinAlgo, f64)> {
        let width = lset.union(rset).len();
        let has_cond = !self.query.joins_between(lset, rset).is_empty();
        if !has_cond {
            budget.add(RESIDUAL_COST_EVAL_WORK)?;
            let op = join_op_cost(
                JoinAlgo::NestedLoop,
                self.params,
                lrows,
                rrows,
                out_rows,
                width,
                false,
            );
            return Ok((JoinAlgo::NestedLoop, op));
        }
        let mut best = (JoinAlgo::NestedLoop, f64::INFINITY);
        for &algo in &self.algos {
            budget.add(RESIDUAL_COST_EVAL_WORK)?;
            let op = join_op_cost(algo, self.params, lrows, rrows, out_rows, width, true);
            if op.total_cmp(&best.1).is_lt() {
                best = (algo, op);
            }
        }
        if best.1.is_infinite() {
            budget.add(RESIDUAL_COST_EVAL_WORK)?;
            best.1 = join_op_cost(
                JoinAlgo::NestedLoop,
                self.params,
                lrows,
                rrows,
                out_rows,
                width,
                true,
            );
            best.0 = JoinAlgo::NestedLoop;
        }
        Ok(best)
    }
}

/// Enumerate the best plan over the residual join graph. Exhaustive DP
/// over connected leaf subsets when the leaf count fits the hint's DP
/// limit and the quotient graph is connected; GOO-style greedy otherwise.
/// Every cardinality lookup and cost evaluation charges `budget`, so a
/// tight re-planning budget aborts with
/// [`EngineError::WorkLimitExceeded`] rather than overrunning.
pub fn enumerate_residual(
    query: &SpjQuery,
    leaves: &[ResidualLeaf],
    card: &dyn CardSource,
    params: &CostParams,
    hints: &HintSet,
    budget: &mut WorkMeter,
) -> Result<ResidualChoice> {
    let n = leaves.len();
    if n == 0 {
        return Err(EngineError::NoPlanFound("residual has no leaves".into()));
    }
    if n > 64 {
        return Err(EngineError::NoPlanFound(
            "residual exceeds 64 leaves".into(),
        ));
    }
    if n == 1 {
        return Ok(ResidualChoice {
            plan: ResidualNode::Leaf(0),
            cost: leaves[0].cost,
        });
    }
    let algos = allowed_algos(hints);
    if algos.is_empty() {
        return Err(EngineError::NoPlanFound(
            "all join algorithms disabled".into(),
        ));
    }
    let mut adj = vec![0u64; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if !query.joins_between(leaves[i].set, leaves[j].set).is_empty() {
                adj[i] |= 1 << j;
                adj[j] |= 1 << i;
            }
        }
    }
    let ctx = ResidualCtx {
        query,
        leaves,
        card,
        params,
        algos,
        adj,
    };
    let full: u64 = if n == 64 { u64::MAX } else { (1 << n) - 1 };
    if n <= hints.dp_table_limit && ctx.connected(full) {
        dp_residual(&ctx, full, budget)
    } else {
        greedy_residual(&ctx, budget)
    }
}

fn dp_residual(ctx: &ResidualCtx<'_>, full: u64, budget: &mut WorkMeter) -> Result<ResidualChoice> {
    struct Entry {
        plan: ResidualNode,
        cost: f64,
        rows: f64,
    }
    let mut best: HashMap<u64, Entry> = HashMap::new();
    for (i, leaf) in ctx.leaves.iter().enumerate() {
        best.insert(
            1 << i,
            Entry {
                plan: ResidualNode::Leaf(i),
                cost: leaf.cost,
                rows: leaf.rows,
            },
        );
    }
    for mask in 1..=full {
        if mask & full != mask || mask.count_ones() < 2 || !ctx.connected(mask) {
            continue;
        }
        let out_rows = ctx.rows_of(mask, budget)?;
        let mut best_here: Option<Entry> = None;
        // Enumerate proper non-empty submask splits; visiting each
        // unordered pair in both orientations covers both build sides.
        let mut left = (mask - 1) & mask;
        while left != 0 {
            let right = mask & !left;
            if let (Some(le), Some(re)) = (best.get(&left), best.get(&right)) {
                let (algo, op) = ctx.best_pair(
                    ctx.union_set(left),
                    le.rows,
                    ctx.union_set(right),
                    re.rows,
                    out_rows,
                    budget,
                )?;
                let total = le.cost + re.cost + op;
                // total_cmp so NaN costs sort last instead of poisoning
                // the incumbent (house NaN rule).
                if best_here
                    .as_ref()
                    .is_none_or(|b| total.total_cmp(&b.cost).is_lt())
                {
                    best_here = Some(Entry {
                        plan: ResidualNode::Join {
                            algo,
                            left: Box::new(le.plan.clone()),
                            right: Box::new(re.plan.clone()),
                        },
                        cost: total,
                        rows: out_rows,
                    });
                }
            }
            left = (left - 1) & mask;
        }
        if let Some(e) = best_here {
            best.insert(mask, e);
        }
    }
    best.remove(&full)
        .map(|e| ResidualChoice {
            plan: e.plan,
            cost: e.cost,
        })
        .ok_or_else(|| EngineError::NoPlanFound("residual DP produced no plan".into()))
}

fn greedy_residual(ctx: &ResidualCtx<'_>, budget: &mut WorkMeter) -> Result<ResidualChoice> {
    struct Item {
        plan: ResidualNode,
        mask: u64,
        set: TableSet,
        rows: f64,
        cost: f64,
    }
    let mut items: Vec<Item> = ctx
        .leaves
        .iter()
        .enumerate()
        .map(|(i, leaf)| Item {
            plan: ResidualNode::Leaf(i),
            mask: 1 << i,
            set: leaf.set,
            rows: leaf.rows,
            cost: leaf.cost,
        })
        .collect();
    while items.len() > 1 {
        let mut best_pair = (0usize, 1usize);
        let mut best_op = f64::INFINITY;
        let mut best_conn = false;
        for i in 0..items.len() {
            for j in 0..items.len() {
                if i == j {
                    continue;
                }
                let conn = !ctx
                    .query
                    .joins_between(items[i].set, items[j].set)
                    .is_empty();
                let out_rows = ctx.rows_of(items[i].mask | items[j].mask, budget)?;
                let (_, op) = ctx.best_pair(
                    items[i].set,
                    items[i].rows,
                    items[j].set,
                    items[j].rows,
                    out_rows,
                    budget,
                )?;
                // Connected candidates strictly dominate cross products.
                if (conn, -op) > (best_conn, -best_op) {
                    best_conn = conn;
                    best_op = op;
                    best_pair = (i, j);
                }
            }
        }
        let (i, j) = best_pair;
        let (hi, lo) = (i.max(j), i.min(j));
        let b = items.swap_remove(hi);
        let a = items.swap_remove(lo);
        let (l, r) = if i < j { (a, b) } else { (b, a) };
        let out_rows = ctx.rows_of(l.mask | r.mask, budget)?;
        let (algo, op) = ctx.best_pair(l.set, l.rows, r.set, r.rows, out_rows, budget)?;
        items.push(Item {
            plan: ResidualNode::Join {
                algo,
                left: Box::new(l.plan),
                right: Box::new(r.plan),
            },
            mask: l.mask | r.mask,
            set: l.set.union(r.set),
            rows: out_rows,
            cost: l.cost + r.cost + op,
        });
    }
    let item = items.pop().expect("at least one residual item");
    Ok(ResidualChoice {
        plan: item.plan,
        cost: item.cost,
    })
}

/// Re-cost an existing residual plan under (possibly different) leaf rows
/// and cardinalities, charging `budget` like [`enumerate_residual`] —
/// this is how the running plan's remaining cost is computed for the
/// keep-or-switch comparison, and how cached residual plans are re-scored
/// before reuse.
pub fn residual_cost(
    query: &SpjQuery,
    leaves: &[ResidualLeaf],
    node: &ResidualNode,
    card: &dyn CardSource,
    params: &CostParams,
    hints: &HintSet,
    budget: &mut WorkMeter,
) -> Result<f64> {
    let algos = allowed_algos(hints);
    if algos.is_empty() {
        return Err(EngineError::NoPlanFound(
            "all join algorithms disabled".into(),
        ));
    }
    let ctx = ResidualCtx {
        query,
        leaves,
        card,
        params,
        algos,
        adj: Vec::new(),
    };
    fn rec(
        ctx: &ResidualCtx<'_>,
        node: &ResidualNode,
        budget: &mut WorkMeter,
    ) -> Result<(f64, f64, TableSet)> {
        match node {
            ResidualNode::Leaf(i) => {
                let leaf = &ctx.leaves[*i];
                Ok((leaf.cost, leaf.rows, leaf.set))
            }
            ResidualNode::Join { algo, left, right } => {
                let (lcost, lrows, lset) = rec(ctx, left, budget)?;
                let (rcost, rrows, rset) = rec(ctx, right, budget)?;
                let out_set = lset.union(rset);
                budget.add(RESIDUAL_LOOKUP_WORK)?;
                let out_rows = ctx.card.cardinality(ctx.query, out_set);
                budget.add(RESIDUAL_COST_EVAL_WORK)?;
                let has_cond = !ctx.query.joins_between(lset, rset).is_empty();
                let op = join_op_cost(
                    *algo,
                    ctx.params,
                    lrows,
                    rrows,
                    out_rows,
                    out_set.len(),
                    has_cond,
                );
                Ok((lcost + rcost + op, out_rows, out_set))
            }
        }
    }
    rec(&ctx, node, budget).map(|(cost, _, _)| cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::card_source::TraditionalCardSource;
    use crate::query::expr::{ColRef, JoinCond, TableRef};
    use crate::query::spj::SpjQuery;
    use crate::stats::table_stats::{CatalogStats, StatsConfig};
    use crate::table::TableBuilder;
    use crate::Catalog;
    use std::sync::Arc;

    /// Chain a -> b -> d (same shape as the enumerate tests).
    fn setup() -> (Arc<Catalog>, SpjQuery, TraditionalCardSource) {
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("a")
                .int("id", (0..50).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("b")
                .int("id", (0..500).collect())
                .int("a_id", (0..500).map(|i| i % 50).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        c.add_table(
            TableBuilder::new("d")
                .int("id", (0..1500).collect())
                .int("b_id", (0..1500).map(|i| i % 500).collect())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        let q = SpjQuery::new(
            vec![
                TableRef::new("a", "a"),
                TableRef::new("b", "b"),
                TableRef::new("d", "d"),
            ],
            vec![
                JoinCond::new(ColRef::new("a", "id"), ColRef::new("b", "a_id")),
                JoinCond::new(ColRef::new("b", "id"), ColRef::new("d", "b_id")),
            ],
            vec![],
        );
        let c = Arc::new(c);
        let stats = Arc::new(CatalogStats::build(&c, StatsConfig::default()));
        let card = TraditionalCardSource::new(c.clone(), stats);
        (c, q, card)
    }

    fn leaves_all_pending(q: &SpjQuery, card: &dyn CardSource) -> Vec<ResidualLeaf> {
        (0..q.num_tables())
            .map(|i| {
                let set = TableSet::singleton(i);
                ResidualLeaf {
                    set,
                    rows: card.cardinality(q, set),
                    cost: 10.0,
                    materialized: false,
                }
            })
            .collect()
    }

    #[test]
    fn residual_dp_covers_all_leaves() {
        let (_c, q, card) = setup();
        let leaves = leaves_all_pending(&q, &card);
        let mut budget = WorkMeter::new(None);
        let choice = enumerate_residual(
            &q,
            &leaves,
            &card,
            &CostParams::default(),
            &HintSet::default(),
            &mut budget,
        )
        .unwrap();
        assert_eq!(choice.plan.tables(&leaves), q.all_tables());
        assert_eq!(choice.plan.num_joins(), 2);
        assert!(choice.cost.is_finite());
        assert!(budget.work() > 0.0, "enumeration charged the budget");
    }

    #[test]
    fn materialized_leaf_becomes_input() {
        let (_c, q, card) = setup();
        // a⋈b is already materialized with its exact 500 rows.
        let ab = TableSet::singleton(0).union(TableSet::singleton(1));
        let leaves = vec![
            ResidualLeaf {
                set: ab,
                rows: 500.0,
                cost: 0.0,
                materialized: true,
            },
            ResidualLeaf {
                set: TableSet::singleton(2),
                rows: card.cardinality(&q, TableSet::singleton(2)),
                cost: 10.0,
                materialized: false,
            },
        ];
        let mut budget = WorkMeter::new(None);
        let choice = enumerate_residual(
            &q,
            &leaves,
            &card,
            &CostParams::default(),
            &HintSet::default(),
            &mut budget,
        )
        .unwrap();
        assert_eq!(choice.plan.tables(&leaves), q.all_tables());
        assert_eq!(choice.plan.num_joins(), 1);
    }

    #[test]
    fn tight_budget_trips_work_limit() {
        let (_c, q, card) = setup();
        let leaves = leaves_all_pending(&q, &card);
        let mut budget = WorkMeter::new(Some(RESIDUAL_LOOKUP_WORK / 2.0));
        let err = enumerate_residual(
            &q,
            &leaves,
            &card,
            &CostParams::default(),
            &HintSet::default(),
            &mut budget,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::WorkLimitExceeded { .. }));
    }

    #[test]
    fn recost_matches_enumerated_cost() {
        let (_c, q, card) = setup();
        let leaves = leaves_all_pending(&q, &card);
        let mut budget = WorkMeter::new(None);
        let params = CostParams::default();
        let hints = HintSet::default();
        let choice = enumerate_residual(&q, &leaves, &card, &params, &hints, &mut budget).unwrap();
        let recost = residual_cost(
            &q,
            &leaves,
            &choice.plan,
            &card,
            &params,
            &hints,
            &mut budget,
        )
        .unwrap();
        assert_eq!(recost.to_bits(), choice.cost.to_bits());
    }

    #[test]
    fn disconnected_residual_falls_back_to_greedy() {
        let (_c, mut q, card) = setup();
        q.joins.pop(); // disconnect d
        let leaves = leaves_all_pending(&q, &card);
        let mut budget = WorkMeter::new(None);
        let choice = enumerate_residual(
            &q,
            &leaves,
            &card,
            &CostParams::default(),
            &HintSet::default(),
            &mut budget,
        )
        .unwrap();
        assert_eq!(choice.plan.tables(&leaves), q.all_tables());
        // The cross product must be a nested-loop join.
        fn check(n: &ResidualNode) {
            if let ResidualNode::Join { left, right, .. } = n {
                check(left);
                check(right);
            }
        }
        check(&choice.plan);
    }
}
