//! The classical cost-based optimizer: pluggable cardinality sources, an
//! analytical cost model, hint sets, and DP/greedy plan enumeration.
//!
//! This is the "native optimizer" every learned method is measured against,
//! and — through [`CardSource`], [`HintSet`] and the enumeration entry
//! points — also the substrate learned methods steer (Bao steers hints,
//! Lero scales cardinalities, HyperQO constrains leading orders, injected
//! estimators replace cardinalities wholesale).

pub mod card_source;
pub mod cost;
pub mod enumerate;
pub mod hints;
pub mod residual;

use lqo_flight::{FlightContext, FlightEvent, Producer};
use lqo_obs::ObsContext;
use lqo_prof::ProfContext;

use crate::catalog::Catalog;
use crate::error::Result;
use crate::exec::workunits::CostParams;
use crate::plan::physical::PhysNode;
use crate::query::join_graph::JoinGraph;
use crate::query::spj::SpjQuery;

pub use card_source::{
    CardSource, InjectedCardSource, ProfCardSource, ScaledCardSource, TracingCardSource,
    TraditionalCardSource, TrueCardSource,
};
pub use cost::plan_cost;
pub use enumerate::{
    dp_optimize, dp_optimize_obs, greedy_optimize, greedy_optimize_obs, PlanChoice,
};
pub use hints::HintSet;
pub use residual::{enumerate_residual, residual_cost, ResidualChoice, ResidualLeaf, ResidualNode};

/// The cost-based optimizer.
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    params: CostParams,
    obs: ObsContext,
    prof: ProfContext,
    flight: FlightContext,
}

impl<'a> Optimizer<'a> {
    /// Create an optimizer with given cost parameters.
    pub fn new(catalog: &'a Catalog, params: CostParams) -> Optimizer<'a> {
        Optimizer {
            catalog,
            params,
            obs: ObsContext::disabled(),
            prof: ProfContext::disabled(),
            flight: FlightContext::disabled(),
        }
    }

    /// Optimizer with default cost parameters.
    pub fn with_defaults(catalog: &'a Catalog) -> Optimizer<'a> {
        Optimizer::new(catalog, CostParams::default())
    }

    /// Attach an observability context; planner provenance (enumeration
    /// counters, cardinality lookups, hints, chosen cost) is recorded on
    /// the context's current query trace.
    pub fn with_obs(mut self, obs: ObsContext) -> Optimizer<'a> {
        self.obs = obs;
        self
    }

    /// Attach a profiling context; enumeration runs under an
    /// `enumerate` phase with nested `estimate` (per card lookup,
    /// sampled) and `cost` (per subproblem, sampled) hot phases, and
    /// every lookup reaching the cardinality source bumps the exact
    /// estimator-call counter.
    pub fn with_prof(mut self, prof: ProfContext) -> Optimizer<'a> {
        self.prof = prof;
        self
    }

    /// Attach a flight recorder; plan-enumeration span boundaries are
    /// published onto the black-box ring so incident bundles can show
    /// where in the query lifecycle a fault fired.
    pub fn with_flight(mut self, flight: FlightContext) -> Optimizer<'a> {
        self.flight = flight;
        self
    }

    /// Cost parameters in use.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Optimize under a hint set. Uses exhaustive DP when the query is
    /// connected and small enough, greedy otherwise.
    pub fn optimize(
        &self,
        query: &SpjQuery,
        card: &dyn CardSource,
        hints: &HintSet,
    ) -> Result<PlanChoice> {
        if self.obs.is_enabled() {
            let name = card.name().to_string();
            let label = hints.label();
            self.obs.with_query(|t| {
                t.planner.card_source = Some(name);
                t.planner.hints = Some(label);
            });
        }
        if self.flight.is_enabled() {
            self.flight.publish(
                Producer::Optimizer,
                FlightEvent::Span {
                    name: "plan.optimize".to_string(),
                    begin: true,
                },
            );
        }
        let graph = JoinGraph::new(query);
        let choice = if query.num_tables() <= hints.dp_table_limit
            && graph.is_connected(query.all_tables())
        {
            dp_optimize_obs(
                query,
                &graph,
                self.catalog,
                card,
                &self.params,
                hints,
                &self.obs,
                &self.prof,
            )
        } else {
            greedy_optimize_obs(
                query,
                &graph,
                self.catalog,
                card,
                &self.params,
                hints,
                &self.obs,
                &self.prof,
            )
        };
        if self.flight.is_enabled() {
            self.flight.publish(
                Producer::Optimizer,
                FlightEvent::Span {
                    name: "plan.optimize".to_string(),
                    begin: false,
                },
            );
        }
        choice
    }

    /// Optimize with default hints.
    pub fn optimize_default(&self, query: &SpjQuery, card: &dyn CardSource) -> Result<PlanChoice> {
        self.optimize(query, card, &HintSet::default())
    }

    /// Greedy optimization regardless of size (used as a baseline).
    pub fn greedy(
        &self,
        query: &SpjQuery,
        card: &dyn CardSource,
        hints: &HintSet,
    ) -> Result<PlanChoice> {
        let graph = JoinGraph::new(query);
        greedy_optimize_obs(
            query,
            &graph,
            self.catalog,
            card,
            &self.params,
            hints,
            &self.obs,
            &self.prof,
        )
    }

    /// Estimated cost of an arbitrary plan under a cardinality source.
    pub fn cost(&self, query: &SpjQuery, plan: &PhysNode, card: &dyn CardSource) -> Result<f64> {
        plan_cost(plan, query, self.catalog, card, &self.params)
    }
}
