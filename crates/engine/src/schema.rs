//! Table schemas and key metadata.

use serde::{Deserialize, Serialize};

use crate::types::DataType;

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name, unique within its table.
    pub name: String,
    /// Logical type.
    pub dtype: DataType,
}

impl ColumnDef {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
        }
    }
}

/// Schema of a table: ordered column definitions plus an optional primary
/// key (always a single integer column in this engine).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name, unique within the catalog.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Index into `columns` of the primary key, if any.
    pub primary_key: Option<usize>,
}

impl TableSchema {
    /// Create a schema; `primary_key` names the PK column if present.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        primary_key: Option<&str>,
    ) -> Self {
        let pk = primary_key.and_then(|p| columns.iter().position(|c| c.name == p));
        TableSchema {
            name: name.into(),
            columns,
            primary_key: pk,
        }
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// A foreign-key edge between two tables in the catalog. These edges define
/// the join graph that the workload generators draw joins from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Referencing table name.
    pub table: String,
    /// Referencing column name.
    pub column: String,
    /// Referenced table name.
    pub ref_table: String,
    /// Referenced column name (its primary key in all generators).
    pub ref_column: String,
}

impl ForeignKey {
    /// Shorthand constructor.
    pub fn new(
        table: impl Into<String>,
        column: impl Into<String>,
        ref_table: impl Into<String>,
        ref_column: impl Into<String>,
    ) -> Self {
        ForeignKey {
            table: table.into(),
            column: column.into(),
            ref_table: ref_table.into(),
            ref_column: ref_column.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("x", DataType::Float),
            ],
            Some("id"),
        )
    }

    #[test]
    fn pk_resolution() {
        let s = schema();
        assert_eq!(s.primary_key, Some(0));
        assert_eq!(s.arity(), 2);
    }

    #[test]
    fn missing_pk_is_none() {
        let s = TableSchema::new("t", vec![ColumnDef::new("x", DataType::Int)], Some("nope"));
        assert_eq!(s.primary_key, None);
    }

    #[test]
    fn column_index_lookup() {
        let s = schema();
        assert_eq!(s.column_index("x"), Some(1));
        assert_eq!(s.column_index("y"), None);
    }
}
