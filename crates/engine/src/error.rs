//! Engine-wide error type.

use std::fmt;

/// Errors produced by the storage, query, execution and optimizer layers.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A table name could not be resolved in the catalog.
    UnknownTable(String),
    /// A column name could not be resolved in a table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Missing column name.
        column: String,
    },
    /// An alias used in a query does not refer to any `FROM` entry.
    UnknownAlias(String),
    /// A value or column had an unexpected data type.
    TypeMismatch {
        /// What the operation required.
        expected: &'static str,
        /// What it found instead.
        found: String,
    },
    /// The SQL-ish parser rejected the input.
    Parse(String),
    /// The executor exceeded its configured work budget.
    WorkLimitExceeded {
        /// The configured budget, in work units.
        limit: f64,
    },
    /// A plan was structurally invalid for the query it was executed against.
    InvalidPlan(String),
    /// The optimizer could not produce a plan (e.g. disconnected join graph
    /// with cross products disabled).
    NoPlanFound(String),
    /// A learned component missed its inference deadline or exhausted the
    /// per-query plan-time budget; the guard rejected its answer.
    InferenceTimeout {
        /// The guarded component (e.g. `"card:learned"`, `"driver:bao"`).
        component: String,
    },
    /// A learned component misbehaved (panicked, or returned a
    /// NaN/∞/negative/out-of-bounds value) and was contained by the guard.
    ModelFault {
        /// The guarded component.
        component: String,
        /// Short fault label (`"panic"`, `"non-finite"`, ...).
        fault: String,
    },
    /// A parallel worker thread panicked mid-morsel. The panic was
    /// contained by the pool; depending on configuration the query either
    /// surfaces this error or degrades to the serial execution path.
    WorkerFault {
        /// The operator the faulting morsel belonged to.
        op: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            EngineError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            EngineError::UnknownAlias(a) => write!(f, "unknown alias: {a}"),
            EngineError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            EngineError::Parse(msg) => write!(f, "parse error: {msg}"),
            EngineError::WorkLimitExceeded { limit } => {
                write!(f, "executor exceeded work limit of {limit} units")
            }
            EngineError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            EngineError::NoPlanFound(msg) => write!(f, "no plan found: {msg}"),
            EngineError::InferenceTimeout { component } => {
                write!(f, "inference deadline exceeded in {component}")
            }
            EngineError::ModelFault { component, fault } => {
                write!(f, "model fault in {component}: {fault}")
            }
            EngineError::WorkerFault { op } => {
                write!(f, "parallel worker fault during {op}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience alias used throughout the engine.
pub type Result<T> = std::result::Result<T, EngineError>;
