//! Property tests validating the executor against a brute-force evaluator
//! written directly over the raw vectors — a fully independent oracle
//! (the engine's own `TrueCardOracle` uses the executor, so it cannot
//! catch a systematic executor bug; this can).

use proptest::prelude::*;

use lqo_engine::query::expr::{CmpOp, ColRef, JoinCond, Predicate, TableRef};
use lqo_engine::table::TableBuilder;
use lqo_engine::{Catalog, Executor, JoinAlgo, PhysNode, SpjQuery, Value};

fn cmp_ok(op: CmpOp, lhs: i64, rhs: i64) -> bool {
    op.matches(lhs.cmp(&rhs))
}

prop_compose! {
    /// A random small integer column.
    fn column(max_len: usize, domain: i64)
        (v in prop::collection::vec(0..domain, 1..=max_len)) -> Vec<i64> {
        v
    }
}

prop_compose! {
    fn cmp_op()(i in 0usize..6) -> CmpOp {
        CmpOp::ALL[i]
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Filtered scan count equals a direct filter over the vector.
    #[test]
    fn scan_matches_brute_force(
        vals in column(80, 12),
        op in cmp_op(),
        literal in 0i64..12,
    ) {
        let mut catalog = Catalog::new();
        let n = vals.len();
        catalog.add_table(
            TableBuilder::new("t")
                .int("id", (0..n as i64).collect())
                .int("v", vals.clone())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        let q = SpjQuery::new(
            vec![TableRef::bare("t")],
            vec![],
            vec![Predicate::new(ColRef::new("t", "v"), op, Value::Int(literal))],
        );
        let executor = Executor::with_defaults(&catalog);
        let got = executor.execute(&q, &PhysNode::scan(0)).unwrap().count;
        let expected = vals.iter().filter(|&&v| cmp_ok(op, v, literal)).count() as u64;
        prop_assert_eq!(got, expected);
    }

    /// Every join algorithm's count equals the brute-force double loop,
    /// in both orientations, with a filter on one side.
    #[test]
    fn join_matches_brute_force(
        a_keys in column(50, 8),
        b_keys in column(50, 8),
        a_vals in column(50, 5),
        op in cmp_op(),
        literal in 0i64..5,
    ) {
        let na = a_keys.len().min(a_vals.len());
        let a_keys = &a_keys[..na];
        let a_vals = &a_vals[..na];

        let mut catalog = Catalog::new();
        catalog.add_table(
            TableBuilder::new("a")
                .int("id", (0..na as i64).collect())
                .int("k", a_keys.to_vec())
                .int("v", a_vals.to_vec())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        catalog.add_table(
            TableBuilder::new("b")
                .int("id", (0..b_keys.len() as i64).collect())
                .int("k", b_keys.clone())
                .primary_key("id")
                .build()
                .unwrap(),
        );
        let q = SpjQuery::new(
            vec![TableRef::bare("a"), TableRef::bare("b")],
            vec![JoinCond::new(ColRef::new("a", "k"), ColRef::new("b", "k"))],
            vec![Predicate::new(ColRef::new("a", "v"), op, Value::Int(literal))],
        );
        // Brute force: double loop over the raw vectors.
        let mut expected = 0u64;
        for (i, &ak) in a_keys.iter().enumerate() {
            if !cmp_ok(op, a_vals[i], literal) {
                continue;
            }
            expected += b_keys.iter().filter(|&&bk| bk == ak).count() as u64;
        }
        let executor = Executor::with_defaults(&catalog);
        for algo in JoinAlgo::ALL {
            let fwd = PhysNode::join(algo, PhysNode::scan(0), PhysNode::scan(1));
            prop_assert_eq!(executor.execute(&q, &fwd).unwrap().count, expected);
            let rev = PhysNode::join(algo, PhysNode::scan(1), PhysNode::scan(0));
            prop_assert_eq!(executor.execute(&q, &rev).unwrap().count, expected);
        }
    }

    /// Multi-condition joins match brute force too.
    #[test]
    fn multi_condition_join_matches_brute_force(
        a_k1 in column(40, 4),
        a_k2 in column(40, 4),
        b_k1 in column(40, 4),
        b_k2 in column(40, 4),
    ) {
        let na = a_k1.len().min(a_k2.len());
        let nb = b_k1.len().min(b_k2.len());
        let (a_k1, a_k2) = (&a_k1[..na], &a_k2[..na]);
        let (b_k1, b_k2) = (&b_k1[..nb], &b_k2[..nb]);

        let mut catalog = Catalog::new();
        catalog.add_table(
            TableBuilder::new("a")
                .int("k1", a_k1.to_vec())
                .int("k2", a_k2.to_vec())
                .build()
                .unwrap(),
        );
        catalog.add_table(
            TableBuilder::new("b")
                .int("k1", b_k1.to_vec())
                .int("k2", b_k2.to_vec())
                .build()
                .unwrap(),
        );
        let q = SpjQuery::new(
            vec![TableRef::bare("a"), TableRef::bare("b")],
            vec![
                JoinCond::new(ColRef::new("a", "k1"), ColRef::new("b", "k1")),
                JoinCond::new(ColRef::new("a", "k2"), ColRef::new("b", "k2")),
            ],
            vec![],
        );
        let mut expected = 0u64;
        for i in 0..na {
            for j in 0..nb {
                if a_k1[i] == b_k1[j] && a_k2[i] == b_k2[j] {
                    expected += 1;
                }
            }
        }
        let executor = Executor::with_defaults(&catalog);
        for algo in JoinAlgo::ALL {
            let plan = PhysNode::join(algo, PhysNode::scan(0), PhysNode::scan(1));
            prop_assert_eq!(executor.execute(&q, &plan).unwrap().count, expected);
        }
    }
}
