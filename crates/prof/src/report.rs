//! ANSI "top phases" rendering of a [`Profile`].
//!
//! One line per frame, heaviest estimated wall time first, with a
//! share-of-total bar, call counts (marking sampled frames), and the
//! deterministic work-unit column side by side with wall clock — the
//! dual-accounting view at a glance.

use crate::profile::Profile;

const BOLD: &str = "\x1b[1m";
const DIM: &str = "\x1b[2m";
const CYAN: &str = "\x1b[36m";
const YELLOW: &str = "\x1b[33m";
const RESET: &str = "\x1b[0m";

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn bar(share: f64, width: usize) -> String {
    let filled = ((share * width as f64).round() as usize).min(width);
    format!("{}{}", "█".repeat(filled), "░".repeat(width - filled))
}

/// Render the top `limit` frames by estimated wall time as an ANSI
/// table. `color = false` strips the escape codes (for logs/artifacts).
pub fn render_top_with(profile: &Profile, limit: usize, color: bool) -> String {
    let (b, d, c, y, r) = if color {
        (BOLD, DIM, CYAN, YELLOW, RESET)
    } else {
        ("", "", "", "", "")
    };
    let total: u64 = profile.root_wall_ns().max(1);
    let mut frames: Vec<_> = profile.frames.iter().collect();
    frames.sort_by(|(pa, sa), (pb, sb)| {
        sb.est_wall_ns()
            .cmp(&sa.est_wall_ns())
            .then_with(|| pa.cmp(pb))
    });
    let path_w = frames
        .iter()
        .take(limit)
        .map(|(p, _)| p.len())
        .max()
        .unwrap_or(5)
        .max(5);
    let mut out = format!(
        "{b}top phases{r} {d}(total {}){r}\n{b}{:<path_w$}  {:>9}  {:>10}  {:>12}  share{r}\n",
        fmt_ns(total),
        "phase",
        "wall",
        "calls",
        "work-units",
    );
    for (path, stat) in frames.into_iter().take(limit) {
        let wall = stat.est_wall_ns();
        let share = wall as f64 / total as f64;
        let sampled_mark = if stat.sampled < stat.calls { "~" } else { "" };
        out.push_str(&format!(
            "{c}{path:<path_w$}{r}  {:>9}  {:>10}  {:>12}  {y}{}{r} {d}{:>5.1}%{r}\n",
            fmt_ns(wall),
            format!("{}{}", sampled_mark, stat.calls),
            if stat.units == 0.0 {
                "-".to_string()
            } else {
                format!("{:.1}", stat.units)
            },
            bar(share.min(1.0), 12),
            share * 100.0,
        ));
    }
    out
}

/// [`render_top_with`] in color.
pub fn render_top(profile: &Profile, limit: usize) -> String {
    render_top_with(profile, limit, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sorted_with_shares() {
        let mut p = Profile::new();
        p.add("plan", 1, 1, 2_000_000, 0.0);
        p.add("plan;enumerate;estimate", 64, 8, 8_000, 64.0);
        p.add("execute", 1, 1, 8_000_000, 420.0);
        let text = render_top_with(&p, 10, false);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("top phases"), "{text}");
        // execute (8ms) ranks above plan (2ms).
        let exec_line = lines.iter().position(|l| l.starts_with("execute")).unwrap();
        let plan_line = lines.iter().position(|l| l.starts_with("plan ")).unwrap();
        assert!(exec_line < plan_line, "{text}");
        // Sampled frame is marked and scaled: 8µs over 8 of 64 → 64µs.
        let est = lines.iter().find(|l| l.contains("estimate")).unwrap();
        assert!(est.contains("~64"), "{est}");
        assert!(est.contains("64.0µs"), "{est}");
        assert!(!text.contains('\x1b'));
        assert!(render_top(&p, 2).contains('\x1b'));
    }

    #[test]
    fn empty_profile_renders_header_only() {
        let text = render_top_with(&Profile::new(), 5, false);
        assert_eq!(text.lines().count(), 2);
    }
}
