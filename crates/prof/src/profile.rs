//! Aggregated phase profiles and the folded-stack (flamegraph) format.
//!
//! A [`Profile`] is a map from a **phase path** — nested phase names
//! joined with `;`, e.g. `execute;hash_join;scan` — to a [`PhaseStat`]
//! holding call counts, sampled-timing totals, and work units. The path
//! separator is the same one the flamegraph folded format uses, so
//! export is a straight dump: one `path value` line per frame
//! ([`Profile::to_folded`]), consumable by `inferno` / `flamegraph.pl`
//! or re-parsed by [`parse_folded`].

use std::collections::BTreeMap;

/// Separator between nested phase names in a path.
pub const PATH_SEP: char = ';';

/// Aggregated statistics of one phase path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseStat {
    /// Total phase entries attributed to this path. Under sampling, the
    /// profiler adds the sampling stride per sampled entry, so `calls`
    /// stays an (exact-in-expectation) estimate of the true entry count.
    pub calls: u64,
    /// Entries that were actually wall-clock timed (`<= calls`).
    pub sampled: u64,
    /// Wall clock spent in *sampled* entries, nanoseconds. The estimated
    /// total is [`PhaseStat::est_wall_ns`].
    pub wall_ns: u64,
    /// Deterministic work units charged to this phase (executor work
    /// meter, estimator call counts, ...). Never sampled: charges are
    /// recorded exactly, so this column is machine-independent.
    pub units: f64,
}

impl PhaseStat {
    /// Estimated total wall time: sampled time scaled by `calls/sampled`.
    pub fn est_wall_ns(&self) -> u64 {
        if self.sampled == 0 {
            0
        } else {
            ((self.wall_ns as u128 * self.calls as u128) / self.sampled as u128) as u64
        }
    }

    fn merge(&mut self, other: &PhaseStat) {
        self.calls += other.calls;
        self.sampled += other.sampled;
        self.wall_ns += other.wall_ns;
        self.units += other.units;
    }
}

/// A tree of phase timings, flattened to path → stat.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Phase statistics keyed by `;`-joined path.
    pub frames: BTreeMap<String, PhaseStat>,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// True when no frame has been recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Add `(calls, sampled, wall_ns, units)` to the frame at `path`,
    /// creating it if absent. The path is only allocated on a frame's
    /// first appearance — steady-state recording is allocation-free.
    pub fn add(&mut self, path: &str, calls: u64, sampled: u64, wall_ns: u64, units: f64) {
        let stat = match self.frames.get_mut(path) {
            Some(stat) => stat,
            None => self.frames.entry(path.to_string()).or_default(),
        };
        stat.calls += calls;
        stat.sampled += sampled;
        stat.wall_ns += wall_ns;
        stat.units += units;
    }

    /// Add `units` to the frame at `path`, creating it if absent.
    pub fn charge(&mut self, path: &str, units: f64) {
        match self.frames.get_mut(path) {
            Some(stat) => stat.units += units,
            None => self.frames.entry(path.to_string()).or_default().units += units,
        }
    }

    /// Merge another profile into this one, frame by frame.
    pub fn merge(&mut self, other: &Profile) {
        for (path, stat) in &other.frames {
            self.frames.entry(path.clone()).or_default().merge(stat);
        }
    }

    /// Sum of estimated wall time over *root* frames (paths with no
    /// parent in the map), i.e. total profiled time without
    /// double-counting nested phases.
    pub fn root_wall_ns(&self) -> u64 {
        self.frames
            .iter()
            .filter(|(path, _)| !self.has_parent(path))
            .map(|(_, s)| s.est_wall_ns())
            .sum()
    }

    fn has_parent(&self, path: &str) -> bool {
        path.rfind(PATH_SEP)
            .is_some_and(|i| self.frames.contains_key(&path[..i]))
    }

    /// Render in the flamegraph **folded** format: one `path value` line
    /// per frame, value = estimated wall nanoseconds, sorted by path.
    /// Frames that were never wall-timed (count-only) are kept with
    /// value 0 so the call structure survives the round trip.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (path, stat) in &self.frames {
            out.push_str(path);
            out.push(' ');
            out.push_str(&stat.est_wall_ns().to_string());
            out.push('\n');
        }
        out
    }
}

/// Parse folded-stack text back into `path → value`. Blank lines are
/// skipped; returns `None` if any line is not `path <u64>` or names an
/// empty frame (`;;`, leading/trailing `;`).
pub fn parse_folded(input: &str) -> Option<BTreeMap<String, u64>> {
    let mut out = BTreeMap::new();
    for line in input.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let (path, value) = line.rsplit_once(' ')?;
        if path.is_empty() || path.split(PATH_SEP).any(|seg| seg.is_empty()) {
            return None;
        }
        out.insert(path.to_string(), value.parse::<u64>().ok()?);
    }
    Some(out)
}

/// One query's worth of profiling: the phase tree plus event counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// The profiled query (SQL-ish text, as given to `begin_query`).
    pub query: String,
    /// Phase tree for this query alone.
    pub profile: Profile,
    /// Named event counters (`model_calls`, `cache_hits`,
    /// `guard_deadline`, `estimator_calls`, ...), recorded exactly.
    pub counters: BTreeMap<String, u64>,
    /// Phases still open when the query ended. Non-zero marks the
    /// profile as structurally incomplete (a guard leaked or the query
    /// unwound mid-phase); the profiler never panics on this.
    pub unclosed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_round_trips() {
        let mut p = Profile::new();
        p.add("plan", 1, 1, 1000, 0.0);
        p.add("plan;enumerate", 1, 1, 800, 0.0);
        p.add("plan;enumerate;estimate", 40, 10, 50, 40.0);
        p.add("execute", 1, 1, 5000, 123.5);
        let text = p.to_folded();
        let parsed = parse_folded(&text).expect("parse");
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed["plan;enumerate"], 800);
        // 50ns over 10 sampled of 40 calls -> estimated 200ns total.
        assert_eq!(parsed["plan;enumerate;estimate"], 200);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_folded("no-value\n").is_none());
        assert!(parse_folded("path not-a-number\n").is_none());
        assert!(parse_folded("a;;b 3\n").is_none());
        assert!(parse_folded(";a 3\n").is_none());
        assert_eq!(parse_folded("\n  \n").unwrap().len(), 0);
    }

    #[test]
    fn root_wall_skips_nested_frames() {
        let mut p = Profile::new();
        p.add("plan", 1, 1, 1000, 0.0);
        p.add("plan;enumerate", 1, 1, 800, 0.0);
        p.add("execute", 1, 1, 5000, 0.0);
        // `orphan;leaf` has no recorded parent, so it *is* a root.
        p.add("orphan;leaf", 1, 1, 70, 0.0);
        assert_eq!(p.root_wall_ns(), 1000 + 5000 + 70);
    }

    #[test]
    fn merge_adds_frame_wise() {
        let mut a = Profile::new();
        a.add("x", 1, 1, 10, 1.0);
        let mut b = Profile::new();
        b.add("x", 2, 1, 30, 0.5);
        b.add("y", 1, 0, 0, 0.0);
        a.merge(&b);
        assert_eq!(a.frames["x"].calls, 3);
        assert_eq!(a.frames["x"].wall_ns, 40);
        assert!((a.frames["x"].units - 1.5).abs() < 1e-12);
        assert!(a.frames.contains_key("y"));
    }
}
