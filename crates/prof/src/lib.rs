//! # lqo-prof — low-overhead hierarchical profiling
//!
//! A profiling layer built on the same handle pattern as
//! [`lqo_obs::ObsContext`]: a [`ProfContext`] is an `Option<Arc>` —
//! disabled contexts carry no allocation and every recording call
//! returns after one branch — threaded through the stack with
//! `with_prof` builders that mirror `with_obs`/`with_watch`/`with_cache`.
//!
//! What it adds over plain obs spans:
//!
//! * **Hierarchical phase paths.** Nested [`ProfContext::phase`] calls
//!   build `;`-joined paths (`plan;enumerate;estimate`) on a
//!   thread-local stack, aggregated into a [`Profile`] — both per query
//!   and cumulatively. When the context was built over an enabled
//!   [`ObsContext`], every recorded phase also opens an obs span, so
//!   profiler phases nest under the existing span tree.
//! * **Dual accounting.** Each frame carries wall-clock *and*
//!   deterministic work units ([`ProfContext::charge`]), plus exact
//!   event counters ([`ProfContext::bump`]), so learned-inference
//!   overhead (model calls, cache hits/misses, guard deadlines) is
//!   separable from execution cost — and the unit columns are
//!   machine-independent, which is what the perf-baseline comparator
//!   keys its noise-free checks on.
//! * **A sampling mode.** High-frequency leaves (per-estimate, per-cost
//!   evaluation) go through [`ProfContext::phase_hot`]: with
//!   `sample_every = n`, only every n-th entry is timed (weighted by
//!   `n` so call counts stay unbiased) and the rest cost one relaxed
//!   atomic increment. Whole detail *subtrees* (the executor's
//!   per-operator phases) are gated per query through
//!   [`ProfContext::sample_detail`] + [`ProfContext::phase_sampled`].
//!   Phase names are `&'static str` and charges accumulate lock-free on
//!   the thread-local phase stack, so an unsampled query pays a handful
//!   of atomic ops. The `<2%` overhead bound is asserted by
//!   `crates/testkit/tests/prof_overhead.rs`.
//! * **Folded-stack export** ([`Profile::to_folded`]) in the flamegraph
//!   format, and an ANSI "top phases" report ([`report::render_top`]).
//!
//! Unclosed phases never panic: `end_query` drains whatever is left on
//! the stack and marks the profile ([`QueryProfile::unclosed`]).

#![warn(missing_docs)]

pub mod profile;
pub mod report;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use lqo_obs::span::SpanGuard;
use lqo_obs::ObsContext;

pub use profile::{parse_folded, PhaseStat, Profile, QueryProfile, PATH_SEP};
pub use report::render_top;

/// Counter name for calls reaching a base cardinality estimator.
pub const CTR_ESTIMATOR_CALLS: &str = "estimator_calls";

/// Profiler configuration.
#[derive(Debug, Clone)]
pub struct ProfConfig {
    /// Sampling stride for [`ProfContext::phase_hot`]: 1 = time every
    /// entry (exact), n > 1 = time one entry in n and weight it by n.
    /// [`ProfContext::phase`] is always exact regardless of this.
    pub sample_every: u64,
}

impl Default for ProfConfig {
    fn default() -> ProfConfig {
        ProfConfig { sample_every: 1 }
    }
}

impl ProfConfig {
    /// The serving-friendly sampling configuration (stride 64) whose
    /// overhead the testkit bounds below 2%.
    pub fn sampling() -> ProfConfig {
        ProfConfig { sample_every: 64 }
    }
}

/// One open phase on a thread's stack. Phase names are `&'static str`
/// so opening a phase never allocates; [`ProfContext::charge`] deposits
/// units here (thread-local, lock-free) and they are committed together
/// with the timing when the phase closes.
struct OpenPhase {
    /// Context identity (`Arc::as_ptr`), so two contexts profiling on
    /// one thread do not cross-parent (same pattern as the obs tracer's
    /// span stack).
    key: usize,
    /// Guard token tying this entry to its [`ProfPhase`].
    token: u64,
    name: &'static str,
    /// Work units charged while this phase was innermost.
    units: f64,
}

thread_local! {
    /// Open-phase stack of this thread, across all contexts.
    static PHASE_STACK: RefCell<Vec<OpenPhase>> = const { RefCell::new(Vec::new()) };
}

struct ProfState {
    /// Cumulative profile across all queries (and outside queries).
    total: Profile,
    /// The query being profiled, if any.
    current: Option<QueryProfile>,
    /// Completed per-query profiles, in completion order.
    finished: Vec<QueryProfile>,
    /// Cumulative exact event counters.
    counters: std::collections::BTreeMap<String, u64>,
    /// `estimator_calls` atomic value when the current query began.
    est_at_begin: u64,
}

struct ProfInner {
    config: ProfConfig,
    /// Entry ticker for `phase_hot` sampling decisions.
    ticks: AtomicU64,
    /// Decision ticker for `sample_detail` (kept separate from `ticks`
    /// so per-entry and per-query sampling strides stay independent).
    detail_ticks: AtomicU64,
    /// Guard-token source (tokens tie stack entries to their guards).
    tokens: AtomicU64,
    /// Dedicated hot counter: calls reaching a base estimator.
    estimator_calls: AtomicU64,
    /// Span mirror: recorded phases also open spans here.
    obs: ObsContext,
    state: Mutex<ProfState>,
}

/// Shared handle to one profiling session. Cheap to clone; a disabled
/// context is a `None` and every operation returns immediately.
#[derive(Clone, Default)]
pub struct ProfContext {
    inner: Option<Arc<ProfInner>>,
}

impl ProfContext {
    /// An enabled context with the given configuration, mirroring
    /// recorded phases as spans on `obs` (pass
    /// [`ObsContext::disabled`] for no mirroring).
    pub fn new(config: ProfConfig, obs: ObsContext) -> ProfContext {
        let config = ProfConfig {
            sample_every: config.sample_every.max(1),
        };
        ProfContext {
            inner: Some(Arc::new(ProfInner {
                config,
                ticks: AtomicU64::new(0),
                detail_ticks: AtomicU64::new(0),
                tokens: AtomicU64::new(0),
                estimator_calls: AtomicU64::new(0),
                obs,
                state: Mutex::new(ProfState {
                    total: Profile::new(),
                    current: None,
                    finished: Vec::new(),
                    counters: std::collections::BTreeMap::new(),
                    est_at_begin: 0,
                }),
            })),
        }
    }

    /// An enabled, exact (stride-1) context without span mirroring.
    pub fn enabled() -> ProfContext {
        ProfContext::new(ProfConfig::default(), ObsContext::disabled())
    }

    /// An enabled context in sampling mode (stride `n`, clamped to ≥1).
    pub fn sampling(n: u64) -> ProfContext {
        ProfContext::new(ProfConfig { sample_every: n }, ObsContext::disabled())
    }

    /// The no-op context.
    pub fn disabled() -> ProfContext {
        ProfContext { inner: None }
    }

    /// Whether this context records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The configured sampling stride (1 when disabled).
    pub fn sample_every(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(1, |inner| inner.config.sample_every)
    }

    fn key(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| Arc::as_ptr(inner) as usize)
    }

    /// Open a phase; it closes (timed and attributed to the current
    /// path) when the guard drops. Always exact — use for per-query
    /// structure (parse/plan/execute). Names are `&'static str` so
    /// opening never allocates.
    pub fn phase(&self, name: &'static str) -> ProfPhase {
        match &self.inner {
            None => ProfPhase::noop(),
            Some(inner) => self.open(inner, name, 1),
        }
    }

    /// Open a *hot* phase: with sampling stride n, one entry in n is
    /// timed (weighted by n); the rest cost one atomic increment and
    /// are not pushed on the path stack, so hot phases must be leaves.
    pub fn phase_hot(&self, name: &'static str) -> ProfPhase {
        match &self.inner {
            None => ProfPhase::noop(),
            Some(inner) => {
                let every = inner.config.sample_every;
                if every > 1 {
                    let tick = inner.ticks.fetch_add(1, Ordering::Relaxed);
                    if tick % every != 0 {
                        return ProfPhase::noop();
                    }
                }
                self.open(inner, name, every)
            }
        }
    }

    /// One detail-sampling decision: always true at stride 1, true one
    /// call in `sample_every` in sampling mode, false when disabled.
    /// Callers that would open many exact phases per query (the
    /// per-operator plan tree) ask once per query and skip the whole
    /// subtree on unsampled queries, pairing the sampled ones with
    /// [`ProfContext::phase_sampled`] so call counts stay unbiased.
    pub fn sample_detail(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                let every = inner.config.sample_every;
                every <= 1 || inner.detail_ticks.fetch_add(1, Ordering::Relaxed) % every == 0
            }
        }
    }

    /// Open an exact-timed phase whose call count carries the sampling
    /// stride as weight — the companion of
    /// [`ProfContext::sample_detail`]: a detail subtree recorded on one
    /// query in n counts n entries per phase.
    pub fn phase_sampled(&self, name: &'static str) -> ProfPhase {
        match &self.inner {
            None => ProfPhase::noop(),
            Some(inner) => self.open(inner, name, inner.config.sample_every),
        }
    }

    fn open(&self, inner: &Arc<ProfInner>, name: &'static str, weight: u64) -> ProfPhase {
        let token = inner.tokens.fetch_add(1, Ordering::Relaxed);
        let key = Arc::as_ptr(inner) as usize;
        PHASE_STACK.with(|s| {
            s.borrow_mut().push(OpenPhase {
                key,
                token,
                name,
                units: 0.0,
            })
        });
        ProfPhase {
            ctx: Some(inner.clone()),
            token,
            weight,
            start: Instant::now(),
            _span: inner.obs.span(name),
        }
    }

    /// The `;`-joined path of currently open phases of this context on
    /// this thread (empty when none).
    pub fn current_path(&self) -> String {
        let key = self.key();
        PHASE_STACK.with(|s| {
            let stack = s.borrow();
            let mut path = String::new();
            for p in stack.iter() {
                if p.key == key {
                    if !path.is_empty() {
                        path.push(PATH_SEP);
                    }
                    path.push_str(p.name);
                }
            }
            path
        })
    }

    /// Charge deterministic work units to the innermost open phase of
    /// this thread (or to the `(root)` frame when none is open).
    /// Charges are exact — never sampled away. They accumulate
    /// lock-free on the thread-local stack entry and are committed when
    /// the phase closes, so [`ProfContext::total`] sees them once the
    /// carrying phase has ended.
    pub fn charge(&self, units: f64) {
        if let Some(inner) = &self.inner {
            let key = Arc::as_ptr(inner) as usize;
            let deferred = PHASE_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                match stack.iter_mut().rev().find(|p| p.key == key) {
                    Some(p) => {
                        p.units += units;
                        true
                    }
                    None => false,
                }
            });
            if !deferred {
                let mut state = inner.state.lock();
                state.total.charge("(root)", units);
                if let Some(q) = state.current.as_mut() {
                    q.profile.charge("(root)", units);
                }
            }
        }
    }

    /// Record a completed child phase under the current path without
    /// opening a guard — how coordinators attribute work measured
    /// elsewhere (per-morsel and per-worker busy/idle times come from
    /// the pool's stats, not from guards on worker threads).
    pub fn record_child(&self, name: &str, calls: u64, wall_ns: u64, units: f64) {
        if self.inner.is_some() {
            let parent = self.current_path();
            let path = if parent.is_empty() {
                name.to_string()
            } else {
                format!("{parent}{PATH_SEP}{name}")
            };
            self.record_at(&path, calls, wall_ns, units);
        }
    }

    /// Record a completed phase at an absolute path. `calls` entries,
    /// all counted as sampled, `wall_ns` total. Deterministic input →
    /// deterministic profile, which is what the folded-stack golden
    /// test is built on.
    pub fn record_at(&self, path: &str, calls: u64, wall_ns: u64, units: f64) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock();
            state.total.add(path, calls, calls, wall_ns, units);
            if let Some(q) = state.current.as_mut() {
                q.profile.add(path, calls, calls, wall_ns, units);
            }
        }
    }

    /// Add `delta` to the named exact event counter (cumulative and,
    /// when a query is active, per-query).
    pub fn bump(&self, counter: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock();
            *state.counters.entry(counter.to_string()).or_default() += delta;
            if let Some(q) = state.current.as_mut() {
                *q.counters.entry(counter.to_string()).or_default() += delta;
            }
        }
    }

    /// Count one call reaching a base cardinality estimator. Kept on a
    /// dedicated atomic (not the counter map) because it sits on the
    /// planning hot path; per-query deltas land in the query profile's
    /// counters at `end_query`.
    pub fn note_estimator_call(&self) {
        if let Some(inner) = &self.inner {
            inner.estimator_calls.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total base-estimator calls recorded so far.
    pub fn estimator_calls(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.estimator_calls.load(Ordering::Relaxed))
    }

    /// Start profiling a query. A still-open previous query is finished
    /// first (and lands in the finished log), so a panicking caller
    /// cannot lose it.
    pub fn begin_query(&self, query: &str) {
        if let Some(inner) = &self.inner {
            let est_now = inner.estimator_calls.load(Ordering::Relaxed);
            let mut state = inner.state.lock();
            if state.current.is_some() {
                drop(state);
                self.end_query();
                state = inner.state.lock();
            }
            state.est_at_begin = est_now;
            state.current = Some(QueryProfile {
                query: query.to_string(),
                ..QueryProfile::default()
            });
        }
    }

    /// Finish the current query profile and move it to the finished
    /// log; returns a clone. Phases of this context still open on this
    /// thread are drained (not timed) and counted in
    /// [`QueryProfile::unclosed`] — never a panic.
    pub fn end_query(&self) -> Option<QueryProfile> {
        let inner = self.inner.as_deref()?;
        let key = self.key();
        // Drain leftover open phases of this context from this thread's
        // stack. Their guards, if dropped later, find their token gone
        // and record nothing.
        let leaked: Vec<(&'static str, f64)> = PHASE_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let mut drained = Vec::new();
            stack.retain(|p| {
                if p.key == key {
                    drained.push((p.name, p.units));
                    false
                } else {
                    true
                }
            });
            drained
        });
        let est_now = inner.estimator_calls.load(Ordering::Relaxed);
        let mut state = inner.state.lock();
        let mut q = state.current.take()?;
        q.unclosed += leaked.len() as u64;
        for (name, units) in &leaked {
            // Keep the frame visible in the tree, marked, untimed. Units
            // pending on the drained entry are conserved (charges are
            // exact even across a leak).
            let path = format!("(unclosed){PATH_SEP}{name}");
            q.profile.add(&path, 1, 0, 0, *units);
            if *units != 0.0 {
                state.total.add(&path, 0, 0, 0, *units);
            }
        }
        let est_delta = est_now - state.est_at_begin;
        if est_delta > 0 {
            *q.counters
                .entry(CTR_ESTIMATOR_CALLS.to_string())
                .or_default() += est_delta;
        }
        state.finished.push(q.clone());
        Some(q)
    }

    /// The cumulative profile across everything recorded so far.
    pub fn total(&self) -> Profile {
        match &self.inner {
            Some(inner) => inner.state.lock().total.clone(),
            None => Profile::new(),
        }
    }

    /// Cumulative exact event counters (the dedicated estimator-call
    /// atomic is folded in under [`CTR_ESTIMATOR_CALLS`]).
    pub fn counters(&self) -> std::collections::BTreeMap<String, u64> {
        match &self.inner {
            Some(inner) => {
                let mut map = inner.state.lock().counters.clone();
                let est = inner.estimator_calls.load(Ordering::Relaxed);
                if est > 0 {
                    *map.entry(CTR_ESTIMATOR_CALLS.to_string()).or_default() += est;
                }
                map
            }
            None => std::collections::BTreeMap::new(),
        }
    }

    /// All finished per-query profiles so far (clones; the log is kept).
    pub fn finished(&self) -> Vec<QueryProfile> {
        match &self.inner {
            Some(inner) => inner.state.lock().finished.clone(),
            None => Vec::new(),
        }
    }

    /// Drain the finished-profile log.
    pub fn take_finished(&self) -> Vec<QueryProfile> {
        match &self.inner {
            Some(inner) => std::mem::take(&mut inner.state.lock().finished),
            None => Vec::new(),
        }
    }
}

fn close_phase(inner: &Arc<ProfInner>, token: u64, weight: u64, elapsed_ns: u64) {
    let key = Arc::as_ptr(inner) as usize;
    let closed = PHASE_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        // Drained by end_query → the token is gone → record nothing.
        let pos = stack
            .iter()
            .rposition(|p| p.key == key && p.token == token)?;
        let own = stack.remove(pos);
        let mut path = String::new();
        for p in stack[..pos].iter() {
            if p.key == key {
                path.push_str(p.name);
                path.push(PATH_SEP);
            }
        }
        path.push_str(own.name);
        Some((path, own.units))
    });
    if let Some((path, units)) = closed {
        let mut state = inner.state.lock();
        state.total.add(&path, weight, 1, elapsed_ns, units);
        if let Some(q) = state.current.as_mut() {
            q.profile.add(&path, weight, 1, elapsed_ns, units);
        }
    }
}

/// RAII guard of one open phase; records on drop.
pub struct ProfPhase {
    ctx: Option<Arc<ProfInner>>,
    token: u64,
    weight: u64,
    start: Instant,
    _span: SpanGuard,
}

impl ProfPhase {
    fn noop() -> ProfPhase {
        ProfPhase {
            ctx: None,
            token: 0,
            weight: 0,
            start: Instant::now(),
            _span: SpanGuard::noop(),
        }
    }
}

impl Drop for ProfPhase {
    fn drop(&mut self) {
        if let Some(inner) = self.ctx.take() {
            let elapsed_ns = self.start.elapsed().as_nanos() as u64;
            close_phase(&inner, self.token, self.weight, elapsed_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_context_is_inert() {
        let prof = ProfContext::disabled();
        assert!(!prof.is_enabled());
        drop(prof.phase("a"));
        drop(prof.phase_hot("b"));
        prof.charge(1.0);
        prof.bump("model_calls", 1);
        prof.note_estimator_call();
        prof.begin_query("q");
        assert!(prof.end_query().is_none());
        assert!(prof.total().is_empty());
        assert!(prof.finished().is_empty());
        assert_eq!(prof.estimator_calls(), 0);
        assert_eq!(prof.sample_every(), 1);
        assert!(prof.counters().is_empty());
    }

    #[test]
    fn nested_phases_build_paths() {
        let prof = ProfContext::enabled();
        prof.begin_query("q1");
        {
            let _plan = prof.phase("plan");
            {
                let _enu = prof.phase("enumerate");
                assert_eq!(prof.current_path(), "plan;enumerate");
                drop(prof.phase_hot("estimate"));
                drop(prof.phase_hot("estimate"));
            }
        }
        {
            let _exec = prof.phase("execute");
            prof.charge(42.0);
        }
        let q = prof.end_query().expect("profile");
        assert_eq!(q.query, "q1");
        assert_eq!(q.unclosed, 0);
        let f = &q.profile.frames;
        assert_eq!(f["plan"].calls, 1);
        assert_eq!(f["plan;enumerate"].calls, 1);
        assert_eq!(f["plan;enumerate;estimate"].calls, 2);
        assert_eq!(f["plan;enumerate;estimate"].sampled, 2);
        assert!((f["execute"].units - 42.0).abs() < 1e-12);
        // The cumulative profile saw the same frames.
        assert_eq!(prof.total().frames["plan;enumerate;estimate"].calls, 2);
    }

    #[test]
    fn sampling_weights_call_counts() {
        let prof = ProfContext::sampling(8);
        for _ in 0..64 {
            drop(prof.phase_hot("estimate"));
        }
        let total = prof.total();
        let stat = &total.frames["estimate"];
        assert_eq!(stat.calls, 64, "8 sampled entries × weight 8");
        assert_eq!(stat.sampled, 8);
        // Cold phases stay exact under sampling.
        for _ in 0..3 {
            drop(prof.phase("plan"));
        }
        assert_eq!(prof.total().frames["plan"].calls, 3);
        assert_eq!(prof.total().frames["plan"].sampled, 3);
    }

    #[test]
    fn unclosed_phase_is_marked_not_fatal() {
        let prof = ProfContext::enabled();
        prof.begin_query("q");
        let guard = prof.phase("execute");
        let q = prof.end_query().expect("profile");
        assert_eq!(q.unclosed, 1);
        assert!(q.profile.frames.contains_key("(unclosed);execute"));
        // Dropping the stale guard afterwards is harmless and records
        // nothing new.
        drop(guard);
        assert!(!prof.total().frames.contains_key("execute"));
    }

    #[test]
    fn two_contexts_on_one_thread_do_not_cross_parent() {
        let a = ProfContext::enabled();
        let b = ProfContext::enabled();
        let _ga = a.phase("outer_a");
        {
            let _gb = b.phase("inner_b");
            assert_eq!(a.current_path(), "outer_a");
            assert_eq!(b.current_path(), "inner_b");
        }
        drop(_ga);
        assert!(a.total().frames.contains_key("outer_a"));
        assert!(b.total().frames.contains_key("inner_b"));
        assert!(!b.total().frames.contains_key("outer_a;inner_b"));
    }

    #[test]
    fn estimator_calls_delta_lands_per_query() {
        let prof = ProfContext::enabled();
        prof.note_estimator_call();
        prof.begin_query("q1");
        for _ in 0..5 {
            prof.note_estimator_call();
        }
        let q1 = prof.end_query().unwrap();
        assert_eq!(q1.counters[CTR_ESTIMATOR_CALLS], 5);
        prof.begin_query("q2");
        let q2 = prof.end_query().unwrap();
        assert!(!q2.counters.contains_key(CTR_ESTIMATOR_CALLS));
        assert_eq!(prof.estimator_calls(), 6);
        assert_eq!(prof.counters()[CTR_ESTIMATOR_CALLS], 6);
    }

    #[test]
    fn begin_query_finishes_predecessor() {
        let prof = ProfContext::enabled();
        prof.begin_query("q1");
        prof.begin_query("q2");
        prof.end_query();
        let names: Vec<String> = prof.finished().iter().map(|q| q.query.clone()).collect();
        assert_eq!(names, ["q1", "q2"]);
        assert_eq!(prof.take_finished().len(), 2);
        assert!(prof.finished().is_empty());
    }

    #[test]
    fn record_child_attributes_under_open_phase() {
        let prof = ProfContext::enabled();
        let _exec = prof.phase("execute");
        prof.record_child("morsel", 16, 4096, 12.0);
        prof.record_child("worker0_busy", 1, 900, 0.0);
        drop(_exec);
        let total = prof.total();
        assert_eq!(total.frames["execute;morsel"].calls, 16);
        assert_eq!(total.frames["execute;worker0_busy"].wall_ns, 900);
        // With no phase open, record_child records at the root.
        prof.record_child("idle", 1, 7, 0.0);
        assert_eq!(prof.total().frames["idle"].wall_ns, 7);
    }

    #[test]
    fn phases_mirror_into_obs_spans() {
        let obs = ObsContext::enabled();
        let prof = ProfContext::new(ProfConfig::default(), obs.clone());
        {
            let _outer = obs.span("query");
            drop(prof.phase("plan"));
        }
        let spans = obs.tracer().unwrap().closed_spans();
        let plan = spans.iter().find(|s| s.name == "plan").expect("plan span");
        assert!(plan.parent.is_some(), "prof phase nests under obs span");
    }
}
