//! Join-combination strategies for estimators that model single tables.
//!
//! * [`independence_join`] — the classical `1/max(ndv)` formula (what the
//!   older single-table methods use for joins);
//! * [`JoinBackbone`] — NeuroCard/DeepDB-style *fanout scaling*: the exact
//!   cardinality of the **unfiltered** join pattern is precomputed per
//!   subset (a schema-level join synopsis, built once like any other
//!   statistic) and multiplied by the per-table filter selectivities. This
//!   substitutes for training over the full-outer-join sample those
//!   systems use; DESIGN.md records the substitution.

use std::sync::Arc;

use lqo_engine::{SpjQuery, TableSet, TrueCardOracle};

use crate::estimator::FitContext;

/// Classical independence combination: product of per-table cardinalities
/// times `1/max(ndv_l, ndv_r)` per join edge.
pub fn independence_join(
    ctx: &FitContext,
    query: &SpjQuery,
    set: TableSet,
    table_card: impl Fn(usize) -> f64,
) -> f64 {
    let mut card = 1.0;
    for pos in set.iter() {
        card *= table_card(pos).max(0.0);
    }
    for join in query.joins_within(set) {
        let ndv = |col: &lqo_engine::ColRef| -> f64 {
            let Ok(pos) = query.col_pos(col) else {
                return 1.0;
            };
            let Ok(table) = ctx.catalog.table(&query.tables[pos].table) else {
                return 1.0;
            };
            ctx.stats
                .table(table.name())
                .and_then(|ts| ts.column(table, &col.column).ok())
                .map(|cs| cs.ndv)
                .unwrap_or(1.0)
        };
        card /= ndv(&join.left).max(ndv(&join.right)).max(1.0);
    }
    card.max(1.0)
}

/// Precomputed unfiltered-join cardinalities (a join synopsis over the
/// schema's FK patterns), used for fanout-scaled combination.
pub struct JoinBackbone {
    oracle: Arc<TrueCardOracle>,
}

impl JoinBackbone {
    /// Build over a shared oracle (results are cached inside the oracle,
    /// so each join pattern is computed once per process).
    pub fn new(oracle: Arc<TrueCardOracle>) -> JoinBackbone {
        JoinBackbone { oracle }
    }

    /// Exact cardinality of the join pattern of `set` with all filter
    /// predicates stripped.
    pub fn unfiltered_card(&self, query: &SpjQuery, set: TableSet) -> f64 {
        let mut stripped = query.clone();
        stripped.predicates.clear();
        self.oracle
            .true_card(&stripped, set)
            .map(|c| c as f64)
            .unwrap_or(1.0)
    }

    /// Fanout-scaled combination: `|J_unfiltered| * Π_t sel_t`, where
    /// `sel_t` is the estimator's per-table filter selectivity.
    pub fn fanout_join(
        &self,
        ctx: &FitContext,
        query: &SpjQuery,
        set: TableSet,
        table_card: impl Fn(usize) -> f64,
    ) -> f64 {
        let base = self.unfiltered_card(query, set);
        let mut sel = 1.0;
        for pos in set.iter() {
            let nrows = ctx
                .catalog
                .table(&query.tables[pos].table)
                .map(|t| t.nrows() as f64)
                .unwrap_or(1.0)
                .max(1.0);
            sel *= (table_card(pos) / nrows).clamp(0.0, 1.0);
        }
        (base * sel).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::test_support::fixture;

    #[test]
    fn independence_join_on_single_table_is_table_card() {
        let (ctx, _, queries) = fixture();
        let q = &queries[0];
        let card = independence_join(&ctx, q, TableSet::singleton(0), |_| 42.0);
        assert_eq!(card, 42.0);
    }

    #[test]
    fn independence_join_divides_by_ndv() {
        let (ctx, _, queries) = fixture();
        let q = &queries[0]; // users ⋈ posts on users.id = posts.owner_user_id
        let users = ctx.catalog.table("users").unwrap().nrows() as f64;
        let posts = ctx.catalog.table("posts").unwrap().nrows() as f64;
        let card = independence_join(&ctx, q, q.all_tables(), |pos| {
            if q.tables[pos].table == "users" {
                users
            } else {
                posts
            }
        });
        // ndv(users.id) = users, so the estimate is posts (modulo the
        // smaller ndv of the FK side).
        assert!(card <= users * posts / users * 1.01);
        assert!(card >= 1.0);
    }

    #[test]
    fn fanout_join_uses_unfiltered_truth() {
        let (ctx, oracle, queries) = fixture();
        let backbone = JoinBackbone::new(oracle.clone());
        let q = &queries[0];
        let unf = backbone.unfiltered_card(q, q.all_tables());
        // Unfiltered users ⋈ posts = |posts| exactly (FK integrity).
        assert_eq!(unf, ctx.catalog.table("posts").unwrap().nrows() as f64);
        // With perfect per-table selectivities the fanout estimate is close
        // to the truth under the filter-independence assumption.
        let truth = oracle.true_card_full(q).unwrap() as f64;
        let est = backbone.fanout_join(&ctx, q, q.all_tables(), |pos| {
            oracle.true_card(q, TableSet::singleton(pos)).unwrap() as f64
        });
        let qerr = lqo_ml::metrics::q_error(est, truth);
        assert!(qerr < 3.0, "q-error {qerr} (est {est}, truth {truth})");
    }

    #[test]
    fn fanout_join_floors_at_one() {
        let (ctx, oracle, queries) = fixture();
        let backbone = JoinBackbone::new(oracle);
        let q = &queries[0];
        let est = backbone.fanout_join(&ctx, q, q.all_tables(), |_| 0.0);
        assert_eq!(est, 1.0);
    }
}
