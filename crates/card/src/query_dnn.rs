//! Query-driven estimators with deep models: MLP \[32\], MSCN \[23\],
//! Robust-MSCN \[45\], Fauce-style deep ensembles with uncertainty \[33\],
//! NNGP-style Bayesian regression \[75\] and LPCE-style progressive
//! refinement \[59\].

use std::collections::HashMap;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lqo_engine::{SpjQuery, TableSet};
use lqo_ml::gbdt::{Gbdt, GbdtConfig};
use lqo_ml::linalg::{dot, solve, Matrix};
use lqo_ml::mlp::{Mlp, MlpConfig};
use lqo_ml::mscn::{Mscn, MscnConfig};
use lqo_ml::scaler::log_label;

use crate::estimator::{CardEstimator, Category, FitContext, LabeledSubquery};
use crate::featurize::Featurizer;
use crate::query_driven::training_matrix;

/// Fully-connected network on flat query features \[32\].
pub struct MlpQdEstimator {
    feat: Featurizer,
    model: Mlp,
}

impl MlpQdEstimator {
    /// Fit on a labeled workload.
    pub fn fit(ctx: &FitContext, workload: &[LabeledSubquery]) -> MlpQdEstimator {
        let feat = Featurizer::new(&ctx.catalog, &ctx.stats);
        let (xs, ys) = training_matrix(&feat, workload);
        let mut model = Mlp::new(MlpConfig {
            learning_rate: 2e-3,
            ..MlpConfig::new(vec![feat.dim(), 64, 64, 1])
        });
        model.fit_regression(&xs, &ys, 60, 32, 41);
        MlpQdEstimator { feat, model }
    }
}

impl CardEstimator for MlpQdEstimator {
    fn name(&self) -> &'static str {
        "MLP-QD"
    }
    fn category(&self) -> Category {
        Category::QueryDrivenDnn
    }
    fn technique(&self) -> &'static str {
        "Fully Connected Neural Network"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        log_label::decode(self.model.predict_scalar(&self.feat.featurize(query, set))).max(1.0)
    }
    fn model_size(&self) -> usize {
        self.model.num_params()
    }
}

fn fit_mscn(
    ctx: &FitContext,
    workload: &[LabeledSubquery],
    mask_prob: f64,
    seed: u64,
) -> (Featurizer, Mscn) {
    let feat = Featurizer::new(&ctx.catalog, &ctx.stats);
    let mut model = Mscn::new(MscnConfig {
        learning_rate: 2e-3,
        seed,
        ..MscnConfig::new(vec![
            feat.table_item_dim(),
            feat.join_item_dim(),
            feat.pred_item_dim(),
        ])
    });
    let samples: Vec<(Vec<Vec<Vec<f64>>>, f64)> = workload
        .iter()
        .map(|l| {
            (
                feat.featurize_sets(&l.query, l.set),
                log_label::encode(l.card),
            )
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5);
    let mut idx: Vec<usize> = (0..samples.len()).collect();
    use rand::seq::SliceRandom;
    for _ in 0..40 {
        idx.shuffle(&mut rng);
        for chunk in idx.chunks(32) {
            let mut masked: Vec<(Vec<Vec<Vec<f64>>>, f64)> = Vec::with_capacity(chunk.len());
            for &i in chunk {
                let (sets, y) = &samples[i];
                let mut sets = sets.clone();
                if mask_prob > 0.0 {
                    // Robust-MSCN query masking: drop predicate items at
                    // random during training to simulate unseen workloads.
                    sets[2].retain(|_| !rng.gen_bool(mask_prob));
                }
                masked.push((sets, *y));
            }
            let batch: Vec<(&[Vec<Vec<f64>>], f64)> =
                masked.iter().map(|(s, y)| (s.as_slice(), *y)).collect();
            model.train_batch(&batch);
        }
    }
    (feat, model)
}

/// Multi-set convolutional network \[23\].
pub struct MscnEstimator {
    feat: Featurizer,
    model: Mscn,
}

impl MscnEstimator {
    /// Fit on a labeled workload.
    pub fn fit(ctx: &FitContext, workload: &[LabeledSubquery]) -> MscnEstimator {
        let (feat, model) = fit_mscn(ctx, workload, 0.0, 43);
        MscnEstimator { feat, model }
    }
}

impl CardEstimator for MscnEstimator {
    fn name(&self) -> &'static str {
        "MSCN"
    }
    fn category(&self) -> Category {
        Category::QueryDrivenDnn
    }
    fn technique(&self) -> &'static str {
        "Multi-Set Convolutional Network"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        log_label::decode(self.model.predict(&self.feat.featurize_sets(query, set))).max(1.0)
    }
    fn model_size(&self) -> usize {
        self.model.num_params()
    }
}

/// MSCN trained with query masking for robustness to workload drift \[45\].
pub struct RobustMscnEstimator {
    feat: Featurizer,
    model: Mscn,
}

impl RobustMscnEstimator {
    /// Fit on a labeled workload with 25% predicate masking.
    pub fn fit(ctx: &FitContext, workload: &[LabeledSubquery]) -> RobustMscnEstimator {
        let (feat, model) = fit_mscn(ctx, workload, 0.25, 47);
        RobustMscnEstimator { feat, model }
    }
}

impl CardEstimator for RobustMscnEstimator {
    fn name(&self) -> &'static str {
        "Robust-MSCN"
    }
    fn category(&self) -> Category {
        Category::QueryDrivenDnn
    }
    fn technique(&self) -> &'static str {
        "Query Masking"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        log_label::decode(self.model.predict(&self.feat.featurize_sets(query, set))).max(1.0)
    }
    fn model_size(&self) -> usize {
        self.model.num_params()
    }
}

/// Deep ensemble with uncertainty \[33\]: several MLPs from different seeds;
/// the spread of their predictions is the uncertainty estimate.
pub struct FauceEstimator {
    feat: Featurizer,
    models: Vec<Mlp>,
}

impl FauceEstimator {
    /// Fit a 5-member ensemble.
    pub fn fit(ctx: &FitContext, workload: &[LabeledSubquery]) -> FauceEstimator {
        let feat = Featurizer::new(&ctx.catalog, &ctx.stats);
        let (xs, ys) = training_matrix(&feat, workload);
        let models = (0..5)
            .map(|k| {
                let mut m = Mlp::new(MlpConfig {
                    learning_rate: 2e-3,
                    seed: 100 + k,
                    ..MlpConfig::new(vec![feat.dim(), 48, 48, 1])
                });
                m.fit_regression(&xs, &ys, 50, 32, 200 + k);
                m
            })
            .collect();
        FauceEstimator { feat, models }
    }

    /// `(estimate, relative uncertainty)` — the std-dev of the ensemble's
    /// log-space predictions.
    pub fn estimate_with_uncertainty(&self, query: &SpjQuery, set: TableSet) -> (f64, f64) {
        let x = self.feat.featurize(query, set);
        let preds: Vec<f64> = self.models.iter().map(|m| m.predict_scalar(&x)).collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64;
        (log_label::decode(mean).max(1.0), var.sqrt())
    }
}

impl CardEstimator for FauceEstimator {
    fn name(&self) -> &'static str {
        "Fauce"
    }
    fn category(&self) -> Category {
        Category::QueryDrivenDnn
    }
    fn technique(&self) -> &'static str {
        "Ensemble of Deep Models"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        self.estimate_with_uncertainty(query, set).0
    }
    fn model_size(&self) -> usize {
        self.models.iter().map(Mlp::num_params).sum()
    }
}

/// Random-feature Bayesian linear regression — a finite-width stand-in for
/// the neural-network Gaussian process of \[75\], keeping its key property:
/// calibrated predictive uncertainty alongside the estimate.
pub struct NngpEstimator {
    feat: Featurizer,
    /// Random projection `omega` (features x dim) and phases.
    omega: Matrix,
    phase: Vec<f64>,
    /// Posterior mean weights.
    mean_w: Vec<f64>,
    /// Gram matrix `A = PhiᵀPhi + sigma² I` for predictive variance.
    gram: Matrix,
    noise: f64,
}

const NNGP_FEATURES: usize = 64;

impl NngpEstimator {
    fn features(&self, x: &[f64]) -> Vec<f64> {
        let proj = self.omega.matvec(x);
        proj.iter()
            .zip(&self.phase)
            .map(|(&p, &b)| ((p + b).cos()) * (2.0 / NNGP_FEATURES as f64).sqrt())
            .collect()
    }

    /// Fit the posterior on a labeled workload.
    pub fn fit(ctx: &FitContext, workload: &[LabeledSubquery]) -> NngpEstimator {
        let feat = Featurizer::new(&ctx.catalog, &ctx.stats);
        let (xs, ys) = training_matrix(&feat, workload);
        let mut rng = StdRng::seed_from_u64(53);
        let dim = feat.dim();
        let lengthscale = 1.5;
        let mut omega = Matrix::zeros(NNGP_FEATURES, dim);
        for v in &mut omega.data {
            // Box–Muller standard normals scaled by 1/lengthscale.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            *v = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() / lengthscale;
        }
        let phase: Vec<f64> = (0..NNGP_FEATURES)
            .map(|_| rng.gen_range(0.0..2.0 * std::f64::consts::PI))
            .collect();
        let noise = 0.1;
        let mut this = NngpEstimator {
            feat,
            omega,
            phase,
            mean_w: vec![0.0; NNGP_FEATURES],
            gram: Matrix::zeros(NNGP_FEATURES, NNGP_FEATURES),
            noise,
        };
        let mut a = Matrix::zeros(NNGP_FEATURES, NNGP_FEATURES);
        let mut b = vec![0.0; NNGP_FEATURES];
        for (x, &y) in xs.iter().zip(&ys) {
            let phi = this.features(x);
            for i in 0..NNGP_FEATURES {
                b[i] += phi[i] * y;
                for j in 0..NNGP_FEATURES {
                    a.data[i * NNGP_FEATURES + j] += phi[i] * phi[j];
                }
            }
        }
        for i in 0..NNGP_FEATURES {
            a.data[i * NNGP_FEATURES + i] += noise;
        }
        this.gram = a.clone();
        this.mean_w = solve(a, b).unwrap_or(vec![0.0; NNGP_FEATURES]);
        this
    }

    /// `(estimate, predictive std)` in log space.
    pub fn estimate_with_uncertainty(&self, query: &SpjQuery, set: TableSet) -> (f64, f64) {
        let phi = self.features(&self.feat.featurize(query, set));
        let mean = dot(&self.mean_w, &phi);
        // Predictive variance sigma²(1 + phiᵀ A⁻¹ phi).
        let var = match solve(self.gram.clone(), phi.clone()) {
            Some(ainv_phi) => self.noise * (1.0 + dot(&phi, &ainv_phi)),
            None => self.noise,
        };
        (log_label::decode(mean).max(1.0), var.max(0.0).sqrt())
    }
}

impl CardEstimator for NngpEstimator {
    fn name(&self) -> &'static str {
        "NNGP"
    }
    fn category(&self) -> Category {
        Category::QueryDrivenDnn
    }
    fn technique(&self) -> &'static str {
        "Bayesian Deep Learning"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        self.estimate_with_uncertainty(query, set).0
    }
    fn model_size(&self) -> usize {
        self.omega.data.len() + self.mean_w.len()
    }
}

/// Progressive cardinality refinement \[59\]: a fast initial model answers
/// before execution; observed true cardinalities of executed sub-plans
/// override future estimates of the same sub-query (the re-optimization
/// loop of LPCE).
pub struct LpceEstimator {
    feat: Featurizer,
    initial: Gbdt,
    refined: Mutex<HashMap<String, f64>>,
}

impl LpceEstimator {
    /// Fit the initial model.
    pub fn fit(ctx: &FitContext, workload: &[LabeledSubquery]) -> LpceEstimator {
        let feat = Featurizer::new(&ctx.catalog, &ctx.stats);
        let (xs, ys) = training_matrix(&feat, workload);
        let initial = Gbdt::fit(&xs, &ys, &GbdtConfig::default());
        LpceEstimator {
            feat,
            initial,
            refined: Mutex::new(HashMap::new()),
        }
    }

    /// Number of refined sub-queries so far.
    pub fn num_refined(&self) -> usize {
        self.refined.lock().unwrap().len()
    }
}

impl CardEstimator for LpceEstimator {
    fn name(&self) -> &'static str {
        "LPCE"
    }
    fn category(&self) -> Category {
        Category::QueryDrivenDnn
    }
    fn technique(&self) -> &'static str {
        "Query Re-Optimization"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        let key = query.canonical_key(set);
        if let Some(&card) = self.refined.lock().unwrap().get(&key) {
            return card.max(1.0);
        }
        log_label::decode(self.initial.predict(&self.feat.featurize(query, set))).max(1.0)
    }
    fn observe(&self, query: &SpjQuery, set: TableSet, true_card: f64) {
        self.refined
            .lock()
            .unwrap()
            .insert(query.canonical_key(set), true_card);
    }
    fn model_size(&self) -> usize {
        self.initial.num_nodes() + self.refined.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::label_workload;
    use crate::estimator::test_support::{fixture, median_q_error};

    #[test]
    fn mlp_fits_workload() {
        let (ctx, oracle, queries) = fixture();
        let labeled = label_workload(&oracle, &queries, 4).unwrap();
        let est = MlpQdEstimator::fit(&ctx, &labeled);
        let med = median_q_error(&est, &labeled);
        assert!(med < 10.0, "mlp median q-error {med}");
    }

    #[test]
    fn mscn_fits_workload() {
        let (ctx, oracle, queries) = fixture();
        let labeled = label_workload(&oracle, &queries, 4).unwrap();
        let est = MscnEstimator::fit(&ctx, &labeled);
        let med = median_q_error(&est, &labeled);
        assert!(med < 8.0, "mscn median q-error {med}");
        assert!(est.model_size() > 1000);
    }

    #[test]
    fn robust_mscn_survives_predicate_removal() {
        let (ctx, oracle, queries) = fixture();
        let labeled = label_workload(&oracle, &queries, 4).unwrap();
        let est = RobustMscnEstimator::fit(&ctx, &labeled);
        // Evaluate on queries with all predicates dropped (unseen shape).
        let mut total = 0.0;
        for q in &queries {
            let mut bare = q.clone();
            bare.predicates.clear();
            let truth = oracle.true_card_full(&bare).unwrap() as f64;
            total += lqo_ml::metrics::q_error(est.estimate(&bare, bare.all_tables()), truth);
        }
        let avg = total / queries.len() as f64;
        assert!(avg < 100.0, "robust mscn under shift: avg q-error {avg}");
    }

    #[test]
    fn fauce_uncertainty_is_finite_and_nonnegative() {
        let (ctx, oracle, queries) = fixture();
        let labeled = label_workload(&oracle, &queries, 2).unwrap();
        let est = FauceEstimator::fit(&ctx, &labeled);
        for q in &queries {
            let (e, u) = est.estimate_with_uncertainty(q, q.all_tables());
            assert!(e >= 1.0 && e.is_finite());
            assert!(u >= 0.0 && u.is_finite());
        }
    }

    #[test]
    fn nngp_uncertainty_grows_off_distribution() {
        let (ctx, oracle, queries) = fixture();
        let labeled = label_workload(&oracle, &queries[..4], 3).unwrap();
        let est = NngpEstimator::fit(&ctx, &labeled);
        let (_, u_in) = est.estimate_with_uncertainty(&queries[0], queries[0].all_tables());
        assert!(u_in.is_finite() && u_in >= 0.0);
        let med = median_q_error(&est, &labeled);
        assert!(med < 20.0, "nngp median q-error {med}");
    }

    #[test]
    fn lpce_refines_from_observations() {
        let (ctx, oracle, queries) = fixture();
        let labeled = label_workload(&oracle, &queries, 2).unwrap();
        let est = LpceEstimator::fit(&ctx, &labeled);
        let q = &queries[0];
        let truth = oracle.true_card_full(q).unwrap() as f64;
        est.observe(q, q.all_tables(), truth);
        assert_eq!(est.estimate(q, q.all_tables()), truth.max(1.0));
        assert_eq!(est.num_refined(), 1);
    }
}
