//! Query-driven estimators with statistical models: linear regression
//! \[36\], tree-based ensembles \[10\], gradient boosting \[9\] and
//! QuickSel-style uniform-mixture models \[47\].

use std::collections::HashMap;
use std::sync::Arc;

use lqo_engine::query::expr::CmpOp;
use lqo_engine::{Catalog, SpjQuery, TableSet, Value};
use lqo_ml::gbdt::{Gbdt, GbdtConfig};
use lqo_ml::linalg::{solve, Matrix};
use lqo_ml::linreg::LinearRegression;
use lqo_ml::scaler::log_label;
use lqo_ml::tree::{RandomForest, TreeConfig};

use crate::combine::independence_join;
use crate::estimator::{CardEstimator, Category, FitContext, LabeledSubquery};
use crate::featurize::Featurizer;

/// Build the `(features, log-label)` training matrix used by every
/// flat-feature regressor.
pub fn training_matrix(
    feat: &Featurizer,
    workload: &[LabeledSubquery],
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs = workload
        .iter()
        .map(|l| feat.featurize(&l.query, l.set))
        .collect();
    let ys = workload.iter().map(|l| log_label::encode(l.card)).collect();
    (xs, ys)
}

/// The earliest query-driven approach: a linear model from query features
/// to (log) cardinality \[36\].
pub struct LinearQdEstimator {
    feat: Featurizer,
    model: LinearRegression,
}

impl LinearQdEstimator {
    /// Fit on a labeled workload.
    pub fn fit(ctx: &FitContext, workload: &[LabeledSubquery]) -> LinearQdEstimator {
        let feat = Featurizer::new(&ctx.catalog, &ctx.stats);
        let (xs, ys) = training_matrix(&feat, workload);
        let model = LinearRegression::fit(&xs, &ys, 1e-3).unwrap_or(LinearRegression {
            weights: vec![0.0; feat.dim()],
            bias: 0.0,
        });
        LinearQdEstimator { feat, model }
    }
}

impl CardEstimator for LinearQdEstimator {
    fn name(&self) -> &'static str {
        "Linear-QD"
    }
    fn category(&self) -> Category {
        Category::QueryDrivenStat
    }
    fn technique(&self) -> &'static str {
        "Linear Model"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        log_label::decode(self.model.predict(&self.feat.featurize(query, set))).max(1.0)
    }
    fn model_size(&self) -> usize {
        self.model.weights.len() + 1
    }
}

/// Random-forest regression on query features — "tree-based ensembles"
/// \[10\].
pub struct ForestQdEstimator {
    feat: Featurizer,
    model: RandomForest,
}

impl ForestQdEstimator {
    /// Fit on a labeled workload.
    pub fn fit(ctx: &FitContext, workload: &[LabeledSubquery]) -> ForestQdEstimator {
        use rand::SeedableRng;
        let feat = Featurizer::new(&ctx.catalog, &ctx.stats);
        let (xs, ys) = training_matrix(&feat, workload);
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let model = RandomForest::fit(
            &xs,
            &ys,
            24,
            &TreeConfig {
                max_depth: 8,
                min_samples_split: 4,
                max_features: None,
            },
            &mut rng,
        );
        ForestQdEstimator { feat, model }
    }
}

impl CardEstimator for ForestQdEstimator {
    fn name(&self) -> &'static str {
        "Forest-QD"
    }
    fn category(&self) -> Category {
        Category::QueryDrivenStat
    }
    fn technique(&self) -> &'static str {
        "Tree-based Ensembles"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        log_label::decode(self.model.predict(&self.feat.featurize(query, set))).max(1.0)
    }
    fn model_size(&self) -> usize {
        self.model.len() * 64 // trees * typical nodes; reporting aid
    }
}

/// Gradient-boosted trees on query features — the XGBoost-style lightweight
/// models of \[9\].
pub struct GbdtQdEstimator {
    feat: Featurizer,
    model: Gbdt,
}

impl GbdtQdEstimator {
    /// Fit on a labeled workload.
    pub fn fit(ctx: &FitContext, workload: &[LabeledSubquery]) -> GbdtQdEstimator {
        let feat = Featurizer::new(&ctx.catalog, &ctx.stats);
        let (xs, ys) = training_matrix(&feat, workload);
        let model = Gbdt::fit(
            &xs,
            &ys,
            &GbdtConfig {
                n_trees: 80,
                learning_rate: 0.15,
                ..GbdtConfig::default()
            },
        );
        GbdtQdEstimator { feat, model }
    }
}

impl CardEstimator for GbdtQdEstimator {
    fn name(&self) -> &'static str {
        "GBDT-QD"
    }
    fn category(&self) -> Category {
        Category::QueryDrivenStat
    }
    fn technique(&self) -> &'static str {
        "XGBoost-style Boosted Trees"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        log_label::decode(self.model.predict(&self.feat.featurize(query, set))).max(1.0)
    }
    fn model_size(&self) -> usize {
        self.model.num_nodes()
    }
}

/// A normalized axis-aligned box `(lo, hi)` in `[0, 1]^d`.
type QueryBox = (Vec<f64>, Vec<f64>);
/// Numeric column positions of a table with their value ranges.
type NumericLayout = (Vec<usize>, Vec<(f64, f64)>);

/// Per-table mixture-of-uniforms selectivity model refined from observed
/// query selectivities — QuickSel \[47\]. Joins combine by independence.
pub struct QuickSelEstimator {
    ctx: FitContext,
    /// Per table: numeric column ids, their ranges, mixture boxes and
    /// fitted weights.
    models: HashMap<String, TableMixture>,
}

struct TableMixture {
    cols: Vec<usize>,
    ranges: Vec<(f64, f64)>,
    /// Boxes in normalized \[0,1\] coordinates.
    boxes: Vec<(Vec<f64>, Vec<f64>)>,
    weights: Vec<f64>,
}

impl TableMixture {
    fn volume(b: &QueryBox) -> f64 {
        b.0.iter()
            .zip(&b.1)
            .map(|(&lo, &hi)| (hi - lo).max(1e-6))
            .product()
    }

    fn overlap(a: &QueryBox, b: &QueryBox) -> f64 {
        a.0.iter()
            .zip(&a.1)
            .zip(b.0.iter().zip(&b.1))
            .map(|((&alo, &ahi), (&blo, &bhi))| (ahi.min(bhi) - alo.max(blo)).max(0.0))
            .product()
    }

    /// Predicted selectivity of a query box.
    fn selectivity(&self, qbox: &QueryBox) -> f64 {
        self.boxes
            .iter()
            .zip(&self.weights)
            .map(|(b, &w)| w * Self::overlap(qbox, b) / Self::volume(b))
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }
}

impl QuickSelEstimator {
    /// Fit per-table mixtures from the single-table samples in the
    /// workload.
    pub fn fit(ctx: &FitContext, workload: &[LabeledSubquery]) -> QuickSelEstimator {
        let mut per_table: HashMap<String, Vec<(QueryBox, f64)>> = HashMap::new();
        for l in workload {
            if l.set.len() != 1 {
                continue;
            }
            let pos = l.set.first().unwrap();
            let tname = l.query.tables[pos].table.clone();
            let Ok(table) = ctx.catalog.table(&tname) else {
                continue;
            };
            let Some((cols, ranges)) = numeric_layout(&ctx.catalog, &tname) else {
                continue;
            };
            let Some(qbox) = query_box(&l.query, pos, table, &cols, &ranges) else {
                continue;
            };
            let sel = (l.card / table.nrows().max(1) as f64).clamp(0.0, 1.0);
            per_table.entry(tname).or_default().push((qbox, sel));
        }

        let mut models = HashMap::new();
        for (tname, samples) in per_table {
            let Some((cols, ranges)) = numeric_layout(&ctx.catalog, &tname) else {
                continue;
            };
            let d = cols.len();
            // Mixture components: the full box plus each observed query box.
            let mut boxes = vec![(vec![0.0; d], vec![1.0; d])];
            boxes.extend(samples.iter().map(|(b, _)| b.clone()));
            // Least squares on observed selectivities (+ anchor: full box
            // has selectivity 1).
            let mut rows: Vec<(Vec<f64>, f64)> = Vec::new();
            rows.push((
                boxes
                    .iter()
                    .map(|b| TableMixture::overlap(&boxes[0], b) / TableMixture::volume(b))
                    .collect(),
                1.0,
            ));
            for (qbox, sel) in &samples {
                rows.push((
                    boxes
                        .iter()
                        .map(|b| TableMixture::overlap(qbox, b) / TableMixture::volume(b))
                        .collect(),
                    *sel,
                ));
            }
            let k = boxes.len();
            let mut ata = Matrix::zeros(k, k);
            let mut atb = vec![0.0; k];
            for (a, s) in &rows {
                for i in 0..k {
                    atb[i] += a[i] * s;
                    for j in 0..k {
                        ata.data[i * k + j] += a[i] * a[j];
                    }
                }
            }
            for i in 0..k {
                ata.data[i * k + i] += 1e-4; // ridge
            }
            let Some(weights) = solve(ata, atb) else {
                continue;
            };
            models.insert(
                tname,
                TableMixture {
                    cols,
                    ranges,
                    boxes,
                    weights,
                },
            );
        }
        QuickSelEstimator {
            ctx: ctx.clone(),
            models,
        }
    }

    fn table_card(&self, query: &SpjQuery, pos: usize) -> f64 {
        let tname = &query.tables[pos].table;
        let Ok(table) = self.ctx.catalog.table(tname) else {
            return 1.0;
        };
        let nrows = table.nrows() as f64;
        let Some(model) = self.models.get(tname) else {
            return fallback_table_card(&self.ctx, query, pos);
        };
        let Some(qbox) = query_box(query, pos, table, &model.cols, &model.ranges) else {
            return fallback_table_card(&self.ctx, query, pos);
        };
        (model.selectivity(&qbox) * nrows).max(0.1)
    }
}

/// Histogram fallback for tables/predicates outside a model's scope.
pub(crate) fn fallback_table_card(ctx: &FitContext, query: &SpjQuery, pos: usize) -> f64 {
    let src = lqo_engine::TraditionalCardSource::new(ctx.catalog.clone(), ctx.stats.clone());
    lqo_engine::optimizer::CardSource::cardinality(&src, query, TableSet::singleton(pos))
}

/// Numeric (non-PK) columns of a table with their value ranges.
fn numeric_layout(catalog: &Arc<Catalog>, tname: &str) -> Option<NumericLayout> {
    let table = catalog.table(tname).ok()?;
    let mut cols = Vec::new();
    let mut ranges = Vec::new();
    for (ci, def) in table.schema.columns.iter().enumerate() {
        if table.schema.primary_key == Some(ci) || def.dtype == lqo_engine::DataType::Text {
            continue;
        }
        let col = table.column(ci);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for r in 0..col.len() {
            let v = col.numeric_at(r);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        cols.push(ci);
        ranges.push((lo, hi.max(lo + 1e-9)));
    }
    if cols.is_empty() {
        None
    } else {
        Some((cols, ranges))
    }
}

/// The normalized query box of the predicates on `pos`, or `None` when a
/// predicate falls outside the numeric column layout.
fn query_box(
    query: &SpjQuery,
    pos: usize,
    table: &lqo_engine::Table,
    cols: &[usize],
    ranges: &[(f64, f64)],
) -> Option<QueryBox> {
    let d = cols.len();
    let mut lo = vec![0.0; d];
    let mut hi = vec![1.0; d];
    for pred in query.predicates_on(pos) {
        let ci = table.schema.column_index(&pred.col.column)?;
        let k = cols.iter().position(|&c| c == ci)?;
        let v = match &pred.value {
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            _ => return None,
        };
        let (rlo, rhi) = ranges[k];
        let norm = ((v - rlo) / (rhi - rlo)).clamp(0.0, 1.0);
        // Half-bin padding keeps equality boxes from having zero volume.
        let eps = 0.5 / (table.nrows().max(2) as f64).sqrt();
        match pred.op {
            CmpOp::Eq => {
                lo[k] = (norm - eps).max(0.0);
                hi[k] = (norm + eps).min(1.0);
            }
            CmpOp::Lt | CmpOp::Le => hi[k] = hi[k].min(norm),
            CmpOp::Gt | CmpOp::Ge => lo[k] = lo[k].max(norm),
            CmpOp::Neq => {}
        }
    }
    Some((lo, hi))
}

impl CardEstimator for QuickSelEstimator {
    fn name(&self) -> &'static str {
        "QuickSel"
    }
    fn category(&self) -> Category {
        Category::QueryDrivenStat
    }
    fn technique(&self) -> &'static str {
        "Mixture Model"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        independence_join(&self.ctx, query, set, |pos| self.table_card(query, pos))
    }
    fn model_size(&self) -> usize {
        self.models
            .values()
            .map(|m| m.boxes.len() * (2 * m.cols.len() + 1))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::label_workload;
    use crate::estimator::test_support::{fixture, median_q_error};

    fn split(labeled: Vec<LabeledSubquery>) -> (Vec<LabeledSubquery>, Vec<LabeledSubquery>) {
        let test: Vec<_> = labeled.iter().step_by(4).cloned().collect();
        let train: Vec<_> = labeled
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % 4 != 0)
            .map(|(_, l)| l)
            .collect();
        (train, test)
    }

    #[test]
    fn gbdt_beats_linear_on_training_distribution() {
        let (ctx, oracle, queries) = fixture();
        let labeled = label_workload(&oracle, &queries, 4).unwrap();
        let (train, test) = split(labeled);
        let linear = LinearQdEstimator::fit(&ctx, &train);
        let gbdt = GbdtQdEstimator::fit(&ctx, &train);
        let lq = median_q_error(&linear, &test);
        let gq = median_q_error(&gbdt, &test);
        assert!(gq < 15.0, "gbdt median q-error {gq}");
        assert!(
            gq <= lq * 1.5,
            "gbdt {gq} should not lose badly to linear {lq}"
        );
    }

    #[test]
    fn forest_fits_workload() {
        let (ctx, oracle, queries) = fixture();
        let labeled = label_workload(&oracle, &queries, 4).unwrap();
        let est = ForestQdEstimator::fit(&ctx, &labeled);
        let med = median_q_error(&est, &labeled);
        assert!(med < 10.0, "forest median q-error {med}");
        assert!(est.model_size() > 0);
    }

    #[test]
    fn quicksel_learns_from_feedback() {
        let (ctx, oracle, queries) = fixture();
        let labeled = label_workload(&oracle, &queries, 1).unwrap();
        let est = QuickSelEstimator::fit(&ctx, &labeled);
        // On its own training feedback it must be decent.
        let med = median_q_error(&est, &labeled);
        assert!(med < 5.0, "quicksel median q-error {med}");
        assert!(est.model_size() > 0);
    }

    #[test]
    fn estimates_floor_at_one() {
        let (ctx, oracle, queries) = fixture();
        let labeled = label_workload(&oracle, &queries, 2).unwrap();
        for est in [
            Box::new(LinearQdEstimator::fit(&ctx, &labeled)) as Box<dyn CardEstimator>,
            Box::new(GbdtQdEstimator::fit(&ctx, &labeled)),
        ] {
            for q in &queries {
                assert!(est.estimate(q, q.all_tables()) >= 1.0);
            }
        }
    }
}
