//! # lqo-card
//!
//! Learned cardinality estimators — one working implementation per method
//! family catalogued in the paper's Table 1, behind a common
//! [`CardEstimator`] trait that plugs into the engine's optimizer via
//! [`EstimatorCardSource`].
//!
//! | Category | Estimators here |
//! |---|---|
//! | Traditional | histogram+independence, per-table sampling |
//! | Query-driven (statistical) | linear \[36\], tree ensembles \[10\], GBDT \[9\], QuickSel-style mixtures \[47\] |
//! | Query-driven (DNN) | MLP \[32\], MSCN \[23\], Robust-MSCN \[45\], Fauce-style deep ensembles \[33\], NNGP-style random-feature GP \[75\], LPCE-style progressive refinement \[59\] |
//! | Data-driven | KDE \[14, 21\], Naru-style autoregressive \[71\], NeuroCard-style fanout-scaled AR \[70\], Bayes nets \[57, 65\], DeepDB-style SPN \[17\], FLAT-style factorized SPN \[81\], FactorJoin-style join histograms \[64\] |
//! | Hybrid | UAE-style data+query AR \[63\], GLUE-style single-table merging \[82\], ALECE-style data-aware query model \[30\] |
//!
//! Plus an AutoCE-style model advisor \[74\] and the labeled-workload
//! utilities the estimators train on.

#![warn(missing_docs)]

pub mod advisor;
pub mod binning;
pub mod combine;
pub mod data_driven;
pub mod drift;
pub mod estimator;
pub mod featurize;
pub mod hybrid;
pub mod query_dnn;
pub mod query_driven;
pub mod registry;
pub mod traditional;

pub use estimator::{
    label_workload, CardEstimator, Category, EstimatorCardSource, FitContext, LabeledSubquery,
};
pub use featurize::Featurizer;
pub use registry::{build_estimator, build_registry, EstimatorKind};
