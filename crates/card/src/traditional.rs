//! Non-learned baselines: histogram+independence and per-table sampling.

use lqo_engine::optimizer::{CardSource, TraditionalCardSource};
use lqo_engine::{SpjQuery, TableSet};

use crate::combine::independence_join;
use crate::estimator::{CardEstimator, Category, FitContext};

/// The classical PostgreSQL-style estimator: per-column histograms and
/// MCVs, attribute independence, `1/max(ndv)` joins.
pub struct TraditionalEstimator {
    inner: TraditionalCardSource,
    size: usize,
}

impl TraditionalEstimator {
    /// Build from a fit context.
    pub fn fit(ctx: &FitContext) -> TraditionalEstimator {
        let size = ctx
            .catalog
            .tables()
            .iter()
            .map(|t| t.schema.arity() * (ctx.stats.config.histogram_buckets + 2))
            .sum();
        TraditionalEstimator {
            inner: TraditionalCardSource::new(ctx.catalog.clone(), ctx.stats.clone()),
            size,
        }
    }
}

impl CardEstimator for TraditionalEstimator {
    fn name(&self) -> &'static str {
        "Histogram"
    }
    fn category(&self) -> Category {
        Category::Traditional
    }
    fn technique(&self) -> &'static str {
        "1-D Histograms + Independence"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        self.inner.cardinality(query, set)
    }
    fn model_size(&self) -> usize {
        self.size
    }
}

/// Sampling estimator: evaluates predicates on a uniform per-table sample;
/// joins combine via the independence formula (joining independent
/// per-table samples directly suffers the classic empty-join problem, which
/// the benchmark papers in §2.3 highlight — the fallback keeps it usable).
pub struct SamplingEstimator {
    ctx: FitContext,
    size: usize,
}

impl SamplingEstimator {
    /// Build from a fit context (reuses the stats module's reservoir
    /// samples).
    pub fn fit(ctx: &FitContext) -> SamplingEstimator {
        let size = ctx
            .catalog
            .tables()
            .iter()
            .filter_map(|t| ctx.stats.table(t.name()))
            .map(|ts| ts.sample.len())
            .sum();
        SamplingEstimator {
            ctx: ctx.clone(),
            size,
        }
    }

    /// Sample-based cardinality of a single table position.
    fn table_card(&self, query: &SpjQuery, pos: usize) -> f64 {
        let Ok(table) = self.ctx.catalog.table(&query.tables[pos].table) else {
            return 1.0;
        };
        let Some(ts) = self.ctx.stats.table(table.name()) else {
            return table.nrows() as f64;
        };
        let preds = query.predicates_on(pos);
        if preds.is_empty() {
            return table.nrows() as f64;
        }
        if ts.sample.is_empty() {
            return table.nrows() as f64;
        }
        let mut hits = 0usize;
        for &row in &ts.sample {
            let row = row as usize;
            let ok = preds.iter().all(|p| {
                table
                    .column_by_name(&p.col.column)
                    .ok()
                    .and_then(|c| c.value(row).compare(&p.value))
                    .map(|ord| p.op.matches(ord))
                    .unwrap_or(false)
            });
            if ok {
                hits += 1;
            }
        }
        // Add-half smoothing keeps zero-hit samples from collapsing joins.
        (hits as f64 + 0.5) / (ts.sample.len() as f64 + 1.0) * table.nrows() as f64
    }
}

impl CardEstimator for SamplingEstimator {
    fn name(&self) -> &'static str {
        "Sampling"
    }
    fn category(&self) -> Category {
        Category::Traditional
    }
    fn technique(&self) -> &'static str {
        "Uniform Reservoir Samples"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        independence_join(&self.ctx, query, set, |pos| self.table_card(query, pos))
    }
    fn model_size(&self) -> usize {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::label_workload;
    use crate::estimator::test_support::{fixture, median_q_error};

    #[test]
    fn traditional_is_sane_on_single_tables() {
        let (ctx, oracle, queries) = fixture();
        let est = TraditionalEstimator::fit(&ctx);
        let labeled = label_workload(&oracle, &queries, 1).unwrap();
        let med = median_q_error(&est, &labeled);
        assert!(med < 4.0, "median q-error {med}");
        assert!(est.model_size() > 0);
    }

    #[test]
    fn sampling_is_accurate_on_single_tables() {
        let (ctx, oracle, queries) = fixture();
        let est = SamplingEstimator::fit(&ctx);
        let single: Vec<_> = label_workload(&oracle, &queries, 1).unwrap();
        let med = median_q_error(&est, &single);
        assert!(med < 3.0, "median q-error {med}");
    }

    #[test]
    fn estimates_are_positive_on_joins() {
        let (ctx, _, queries) = fixture();
        let t = TraditionalEstimator::fit(&ctx);
        let s = SamplingEstimator::fit(&ctx);
        for q in &queries {
            assert!(t.estimate(q, q.all_tables()) >= 1.0);
            assert!(s.estimate(q, q.all_tables()) >= 1.0);
        }
    }

    #[test]
    fn unfiltered_table_estimate_is_exact() {
        let (ctx, _, queries) = fixture();
        let s = SamplingEstimator::fit(&ctx);
        // Query 2's comments table (position 2) has no predicates.
        let q = &queries[1];
        let est = s.estimate(q, TableSet::singleton(2));
        assert_eq!(est, ctx.catalog.table("comments").unwrap().nrows() as f64);
    }
}
