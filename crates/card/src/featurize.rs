//! Query featurization for query-driven estimators: a flat vector encoding
//! (tables, joins, predicate ranges) plus the set-based encoding MSCN
//! consumes.

use std::collections::HashMap;

use lqo_engine::query::expr::CmpOp;
use lqo_engine::{Catalog, CatalogStats, SpjQuery, TableSet, Value};

/// Featurizes `(query, subset)` pairs against a fixed schema.
pub struct Featurizer {
    tables: Vec<String>,
    table_idx: HashMap<String, usize>,
    /// `(table, column)` in a stable order.
    columns: Vec<(String, String)>,
    col_idx: HashMap<(String, String), usize>,
    /// `(min, max)` of each column's numeric view.
    col_range: Vec<(f64, f64)>,
    /// Canonical join-slot strings (from schema FKs), plus one overflow.
    join_slots: Vec<String>,
    join_idx: HashMap<String, usize>,
    /// log(nrows+1) per table, for the MSCN table features.
    log_rows: Vec<f64>,
}

/// Canonical form of a join between two physical columns.
fn join_key(t1: &str, c1: &str, t2: &str, c2: &str) -> String {
    let a = format!("{t1}.{c1}");
    let b = format!("{t2}.{c2}");
    if a <= b {
        format!("{a}={b}")
    } else {
        format!("{b}={a}")
    }
}

impl Featurizer {
    /// Build from a catalog and its statistics. Join slots are taken from
    /// the declared foreign keys (the workload generators only join along
    /// FK edges, as JOB and STATS-CEB do).
    pub fn new(catalog: &Catalog, stats: &CatalogStats) -> Featurizer {
        let mut tables = Vec::new();
        let mut table_idx = HashMap::new();
        let mut columns = Vec::new();
        let mut col_idx = HashMap::new();
        let mut col_range = Vec::new();
        let mut log_rows = Vec::new();
        for t in catalog.tables() {
            table_idx.insert(t.name().to_string(), tables.len());
            tables.push(t.name().to_string());
            log_rows.push((t.nrows() as f64 + 1.0).ln());
            let ts = stats.table(t.name());
            for (ci, def) in t.schema.columns.iter().enumerate() {
                let key = (t.name().to_string(), def.name.clone());
                col_idx.insert(key.clone(), columns.len());
                columns.push(key);
                let range = ts
                    .map(|s| (s.columns[ci].min, s.columns[ci].max))
                    .unwrap_or((0.0, 1.0));
                col_range.push(range);
            }
        }
        let mut join_slots = Vec::new();
        let mut join_idx = HashMap::new();
        for fk in catalog.foreign_keys() {
            let key = join_key(&fk.table, &fk.column, &fk.ref_table, &fk.ref_column);
            if !join_idx.contains_key(&key) {
                join_idx.insert(key.clone(), join_slots.len());
                join_slots.push(key);
            }
        }
        Featurizer {
            tables,
            table_idx,
            columns,
            col_idx,
            col_range,
            join_slots,
            join_idx,
            log_rows,
        }
    }

    /// Dimension of the flat feature vector.
    pub fn dim(&self) -> usize {
        self.tables.len() + self.join_slots.len() + 1 + 2 * self.columns.len()
    }

    /// Number of columns known to the featurizer.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    fn normalize(&self, col: usize, v: f64) -> f64 {
        let (lo, hi) = self.col_range[col];
        if hi > lo {
            ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
        } else {
            0.5
        }
    }

    fn pred_value(&self, v: &Value) -> Option<f64> {
        match v {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            // Text equality is featurized through a pseudo-range on the
            // dictionary-code axis; unresolvable here, so centre it.
            Value::Text(_) => None,
            Value::Null => None,
        }
    }

    /// Column ranges `[lo, hi]` (normalized) implied by the predicates of
    /// `set`, indexed by global column id. Unconstrained columns are
    /// `(0, 1)`.
    fn ranges(&self, query: &SpjQuery, set: TableSet) -> Vec<(f64, f64)> {
        let mut ranges: Vec<(f64, f64)> = vec![(0.0, 1.0); self.columns.len()];
        for pos in set.iter() {
            let tname = &query.tables[pos].table;
            for pred in query.predicates_on(pos) {
                let Some(&col) = self.col_idx.get(&(tname.clone(), pred.col.column.clone())) else {
                    continue;
                };
                let v = match self.pred_value(&pred.value) {
                    Some(v) => self.normalize(col, v),
                    None => 0.5,
                };
                let r = &mut ranges[col];
                match pred.op {
                    CmpOp::Eq => {
                        r.0 = r.0.max(v);
                        r.1 = r.1.min(v);
                    }
                    CmpOp::Lt | CmpOp::Le => r.1 = r.1.min(v),
                    CmpOp::Gt | CmpOp::Ge => r.0 = r.0.max(v),
                    CmpOp::Neq => {}
                }
            }
        }
        ranges
    }

    /// Join-slot index of a join condition within the query (`None` when
    /// it does not correspond to a known FK edge; it then lands in the
    /// overflow slot).
    fn join_slot(&self, query: &SpjQuery, cond: &lqo_engine::JoinCond) -> Option<usize> {
        let lp = query.col_pos(&cond.left).ok()?;
        let rp = query.col_pos(&cond.right).ok()?;
        let key = join_key(
            &query.tables[lp].table,
            &cond.left.column,
            &query.tables[rp].table,
            &cond.right.column,
        );
        self.join_idx.get(&key).copied()
    }

    /// The flat feature vector of `(query, set)`:
    /// `[table one-hot | join-slot one-hot + overflow | per-column (lo, hi)]`.
    pub fn featurize(&self, query: &SpjQuery, set: TableSet) -> Vec<f64> {
        let mut x = vec![0.0; self.dim()];
        for pos in set.iter() {
            if let Some(&t) = self.table_idx.get(&query.tables[pos].table) {
                x[t] += 1.0; // self-joins count twice
            }
        }
        let joins_off = self.tables.len();
        for cond in query.joins_within(set) {
            match self.join_slot(query, cond) {
                Some(slot) => x[joins_off + slot] += 1.0,
                None => x[joins_off + self.join_slots.len()] += 1.0,
            }
        }
        let cols_off = joins_off + self.join_slots.len() + 1;
        for (c, (lo, hi)) in self.ranges(query, set).into_iter().enumerate() {
            x[cols_off + 2 * c] = lo;
            x[cols_off + 2 * c + 1] = hi;
        }
        x
    }

    // ---- MSCN set encodings ----

    /// Per-item dimension of the table set.
    pub fn table_item_dim(&self) -> usize {
        self.tables.len() + 1
    }

    /// Per-item dimension of the join set.
    pub fn join_item_dim(&self) -> usize {
        self.join_slots.len() + 1
    }

    /// Per-item dimension of the predicate set.
    pub fn pred_item_dim(&self) -> usize {
        self.columns.len() + CmpOp::ALL.len() + 1
    }

    /// MSCN-style encoding: three sets (tables, joins, predicates).
    pub fn featurize_sets(&self, query: &SpjQuery, set: TableSet) -> Vec<Vec<Vec<f64>>> {
        let mut tset = Vec::new();
        for pos in set.iter() {
            let mut item = vec![0.0; self.table_item_dim()];
            if let Some(&t) = self.table_idx.get(&query.tables[pos].table) {
                item[t] = 1.0;
                item[self.tables.len()] = self.log_rows[t] / 20.0;
            }
            tset.push(item);
        }
        let mut jset = Vec::new();
        for cond in query.joins_within(set) {
            let mut item = vec![0.0; self.join_item_dim()];
            match self.join_slot(query, cond) {
                Some(slot) => item[slot] = 1.0,
                None => item[self.join_slots.len()] = 1.0,
            }
            jset.push(item);
        }
        let mut pset = Vec::new();
        for pos in set.iter() {
            let tname = &query.tables[pos].table;
            for pred in query.predicates_on(pos) {
                let Some(&col) = self.col_idx.get(&(tname.clone(), pred.col.column.clone())) else {
                    continue;
                };
                let mut item = vec![0.0; self.pred_item_dim()];
                item[col] = 1.0;
                item[self.columns.len() + pred.op.index()] = 1.0;
                let v = self
                    .pred_value(&pred.value)
                    .map(|v| self.normalize(col, v))
                    .unwrap_or(0.5);
                item[self.columns.len() + CmpOp::ALL.len()] = v;
                pset.push(item);
            }
        }
        vec![tset, jset, pset]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::test_support::fixture;
    use lqo_engine::TableSet;

    #[test]
    fn dimensions_are_consistent() {
        let (ctx, _, queries) = fixture();
        let f = Featurizer::new(&ctx.catalog, &ctx.stats);
        let q = &queries[1];
        let x = f.featurize(q, q.all_tables());
        assert_eq!(x.len(), f.dim());
        let sets = f.featurize_sets(q, q.all_tables());
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0].len(), 3); // three tables
        assert_eq!(sets[1].len(), 2); // two joins
        assert_eq!(sets[0][0].len(), f.table_item_dim());
        assert_eq!(sets[2][0].len(), f.pred_item_dim());
    }

    #[test]
    fn subset_features_differ_from_full() {
        let (ctx, _, queries) = fixture();
        let f = Featurizer::new(&ctx.catalog, &ctx.stats);
        let q = &queries[1];
        let full = f.featurize(q, q.all_tables());
        let single = f.featurize(q, TableSet::singleton(0));
        assert_ne!(full, single);
        // Table one-hot counts the subset size.
        assert_eq!(full.iter().take(8).sum::<f64>(), 3.0);
        assert_eq!(single.iter().take(8).sum::<f64>(), 1.0);
    }

    #[test]
    fn predicate_ranges_encoded() {
        let (ctx, _, queries) = fixture();
        let f = Featurizer::new(&ctx.catalog, &ctx.stats);
        // Query 4 filters badges.class = 1 (domain {0,1,2} => norm 0.5).
        let q = &queries[3];
        let x = f.featurize(q, q.all_tables());
        // Some (lo, hi) pair must be pinched to a point at 0.5.
        let cols_off = f.tables.len() + f.join_slots.len() + 1;
        let pinched = (0..f.columns.len())
            .any(|c| x[cols_off + 2 * c] == 0.5 && x[cols_off + 2 * c + 1] == 0.5);
        assert!(pinched);
    }

    #[test]
    fn fk_joins_use_named_slots_not_overflow() {
        let (ctx, _, queries) = fixture();
        let f = Featurizer::new(&ctx.catalog, &ctx.stats);
        let q = &queries[0];
        let x = f.featurize(q, q.all_tables());
        let joins_off = f.tables.len();
        let overflow = x[joins_off + f.join_slots.len()];
        assert_eq!(overflow, 0.0);
        let named: f64 = x[joins_off..joins_off + f.join_slots.len()].iter().sum();
        assert_eq!(named, 1.0);
    }
}
