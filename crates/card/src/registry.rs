//! Construction of every implemented estimator by name — the executable
//! version of the paper's Table 1.

use std::sync::Arc;

use lqo_engine::TrueCardOracle;

use crate::data_driven::{
    BayesCardEstimator, BayesNetEstimator, DeepDbEstimator, FactorJoinEstimator, FlatEstimator,
    KdeEstimator, NaruEstimator, NeuroCardEstimator,
};
use crate::estimator::{CardEstimator, FitContext, LabeledSubquery};
use crate::hybrid::{AleceEstimator, GlueEstimator, UaeEstimator};
use crate::query_dnn::{
    FauceEstimator, LpceEstimator, MlpQdEstimator, MscnEstimator, NngpEstimator,
    RobustMscnEstimator,
};
use crate::query_driven::{
    ForestQdEstimator, GbdtQdEstimator, LinearQdEstimator, QuickSelEstimator,
};
use crate::traditional::{SamplingEstimator, TraditionalEstimator};

/// Every estimator the crate can build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum EstimatorKind {
    Histogram,
    Sampling,
    LinearQd,
    ForestQd,
    GbdtQd,
    QuickSel,
    MlpQd,
    Mscn,
    RobustMscn,
    Fauce,
    Nngp,
    Lpce,
    Kde,
    Naru,
    NeuroCard,
    BayesNet,
    BayesCard,
    DeepDb,
    Flat,
    FactorJoin,
    Uae,
    Glue,
    Alece,
}

impl EstimatorKind {
    /// All kinds, in Table-1 order (traditional first).
    pub const ALL: [EstimatorKind; 23] = [
        EstimatorKind::Histogram,
        EstimatorKind::Sampling,
        EstimatorKind::LinearQd,
        EstimatorKind::ForestQd,
        EstimatorKind::GbdtQd,
        EstimatorKind::QuickSel,
        EstimatorKind::MlpQd,
        EstimatorKind::Mscn,
        EstimatorKind::RobustMscn,
        EstimatorKind::Fauce,
        EstimatorKind::Nngp,
        EstimatorKind::Lpce,
        EstimatorKind::Kde,
        EstimatorKind::Naru,
        EstimatorKind::NeuroCard,
        EstimatorKind::BayesNet,
        EstimatorKind::BayesCard,
        EstimatorKind::DeepDb,
        EstimatorKind::Flat,
        EstimatorKind::FactorJoin,
        EstimatorKind::Uae,
        EstimatorKind::Glue,
        EstimatorKind::Alece,
    ];

    /// A fast, representative subset used by experiments that cannot
    /// afford fitting all 23 models per run.
    pub const FAST: [EstimatorKind; 8] = [
        EstimatorKind::Histogram,
        EstimatorKind::Sampling,
        EstimatorKind::GbdtQd,
        EstimatorKind::Mscn,
        EstimatorKind::BayesNet,
        EstimatorKind::DeepDb,
        EstimatorKind::FactorJoin,
        EstimatorKind::Glue,
    ];
}

/// Build a single estimator. `workload` is the labeled training corpus
/// (ignored by data-driven and traditional methods); `oracle` powers the
/// fanout-scaling join backbones.
pub fn build_estimator(
    kind: EstimatorKind,
    ctx: &FitContext,
    oracle: &Arc<TrueCardOracle>,
    workload: &[LabeledSubquery],
) -> Box<dyn CardEstimator> {
    match kind {
        EstimatorKind::Histogram => Box::new(TraditionalEstimator::fit(ctx)),
        EstimatorKind::Sampling => Box::new(SamplingEstimator::fit(ctx)),
        EstimatorKind::LinearQd => Box::new(LinearQdEstimator::fit(ctx, workload)),
        EstimatorKind::ForestQd => Box::new(ForestQdEstimator::fit(ctx, workload)),
        EstimatorKind::GbdtQd => Box::new(GbdtQdEstimator::fit(ctx, workload)),
        EstimatorKind::QuickSel => Box::new(QuickSelEstimator::fit(ctx, workload)),
        EstimatorKind::MlpQd => Box::new(MlpQdEstimator::fit(ctx, workload)),
        EstimatorKind::Mscn => Box::new(MscnEstimator::fit(ctx, workload)),
        EstimatorKind::RobustMscn => Box::new(RobustMscnEstimator::fit(ctx, workload)),
        EstimatorKind::Fauce => Box::new(FauceEstimator::fit(ctx, workload)),
        EstimatorKind::Nngp => Box::new(NngpEstimator::fit(ctx, workload)),
        EstimatorKind::Lpce => Box::new(LpceEstimator::fit(ctx, workload)),
        EstimatorKind::Kde => Box::new(KdeEstimator::fit(ctx)),
        EstimatorKind::Naru => Box::new(NaruEstimator::fit(ctx)),
        EstimatorKind::NeuroCard => Box::new(NeuroCardEstimator::fit(ctx, oracle.clone())),
        EstimatorKind::BayesNet => Box::new(BayesNetEstimator::fit(ctx)),
        EstimatorKind::BayesCard => Box::new(BayesCardEstimator::fit(ctx, oracle.clone())),
        EstimatorKind::DeepDb => Box::new(DeepDbEstimator::fit(ctx, oracle.clone())),
        EstimatorKind::Flat => Box::new(FlatEstimator::fit(ctx, oracle.clone())),
        EstimatorKind::FactorJoin => Box::new(FactorJoinEstimator::fit(ctx)),
        EstimatorKind::Uae => Box::new(UaeEstimator::fit(ctx, workload)),
        EstimatorKind::Glue => Box::new(GlueEstimator::fit(ctx, workload)),
        EstimatorKind::Alece => Box::new(AleceEstimator::fit(ctx, workload)),
    }
}

/// Build a set of estimators.
pub fn build_registry(
    ctx: &FitContext,
    oracle: &Arc<TrueCardOracle>,
    workload: &[LabeledSubquery],
    kinds: &[EstimatorKind],
) -> Vec<Box<dyn CardEstimator>> {
    kinds
        .iter()
        .map(|&k| build_estimator(k, ctx, oracle, workload))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::label_workload;
    use crate::estimator::test_support::fixture;

    #[test]
    fn fast_registry_builds_and_estimates() {
        let (ctx, oracle, queries) = fixture();
        let workload = label_workload(&oracle, &queries, 3).unwrap();
        let registry = build_registry(&ctx, &oracle, &workload, &EstimatorKind::FAST);
        assert_eq!(registry.len(), EstimatorKind::FAST.len());
        for est in &registry {
            let e = est.estimate(&queries[0], queries[0].all_tables());
            assert!(e >= 1.0 && e.is_finite(), "{}: {e}", est.name());
            assert!(!est.technique().is_empty());
        }
        // Names are unique.
        let names: std::collections::HashSet<&str> = registry.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), registry.len());
    }
}
