//! Model updating under data drift (paper §2.2.2): DDUp-style drift
//! detection \[25\] and Warper-style targeted retraining \[29\].
//!
//! DDUp tests whether a model should be updated by comparing a stored
//! reference sample against fresh data; Warper, once drift (or workload
//! shift) is detected, *generates additional queries* over the drifted
//! region, labels them, and updates the estimation model with them.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lqo_engine::query::expr::{CmpOp, ColRef, Predicate, TableRef};
use lqo_engine::{Catalog, SpjQuery, TrueCardOracle};

use crate::estimator::{FitContext, LabeledSubquery};

/// Two-sample Kolmogorov–Smirnov statistic: `sup |F1 - F2|`.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut sa: Vec<f64> = a.to_vec();
    let mut sb: Vec<f64> = b.to_vec();
    sa.sort_by(|x, y| x.total_cmp(y));
    sb.sort_by(|x, y| x.total_cmp(y));
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let f1 = i as f64 / sa.len() as f64;
        let f2 = j as f64 / sb.len() as f64;
        d = d.max((f1 - f2).abs());
    }
    d
}

/// DDUp-style drift detector: stores a per-column reference sample of
/// every table at baseline time; `detect` reports the tables whose fresh
/// data diverges beyond the KS threshold.
pub struct DriftDetector {
    /// `table -> per-column reference sample (numeric view)`.
    reference: HashMap<String, Vec<Vec<f64>>>,
    /// KS distance above which a column counts as drifted.
    pub threshold: f64,
    /// Sample size per table.
    pub sample_size: usize,
    seed: u64,
}

fn sample_columns(catalog: &Catalog, table: &str, size: usize, seed: u64) -> Option<Vec<Vec<f64>>> {
    let t = catalog.table(table).ok()?;
    if t.nrows() == 0 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<usize> = (0..size.min(t.nrows()).max(1))
        .map(|_| rng.gen_range(0..t.nrows()))
        .collect();
    Some(
        (0..t.schema.arity())
            .filter(|&ci| t.schema.primary_key != Some(ci))
            .map(|ci| rows.iter().map(|&r| t.column(ci).numeric_at(r)).collect())
            .collect(),
    )
}

impl DriftDetector {
    /// Record the baseline reference samples.
    pub fn baseline(ctx: &FitContext) -> DriftDetector {
        let sample_size = 512;
        let seed = 0xDD;
        let mut reference = HashMap::new();
        for t in ctx.catalog.tables() {
            if let Some(cols) = sample_columns(&ctx.catalog, t.name(), sample_size, seed) {
                reference.insert(t.name().to_string(), cols);
            }
        }
        DriftDetector {
            reference,
            threshold: 0.12,
            sample_size,
            seed,
        }
    }

    /// Tables whose current data drifted from the baseline.
    pub fn detect(&self, catalog: &Catalog) -> Vec<String> {
        let mut out = Vec::new();
        for (table, ref_cols) in &self.reference {
            let Some(cur_cols) = sample_columns(catalog, table, self.sample_size, self.seed ^ 1)
            else {
                continue;
            };
            let drifted = ref_cols
                .iter()
                .zip(&cur_cols)
                .any(|(r, c)| ks_statistic(r, c) > self.threshold);
            if drifted {
                out.push(table.clone());
            }
        }
        out.sort();
        out
    }

    /// Max KS distance of one table (inspection/reporting).
    pub fn distance(&self, catalog: &Catalog, table: &str) -> f64 {
        let Some(ref_cols) = self.reference.get(table) else {
            return 0.0;
        };
        let Some(cur_cols) = sample_columns(catalog, table, self.sample_size, self.seed ^ 1) else {
            return 0.0;
        };
        ref_cols
            .iter()
            .zip(&cur_cols)
            .map(|(r, c)| ks_statistic(r, c))
            .fold(0.0, f64::max)
    }
}

/// Warper-style update-set generation: single-table queries over the
/// drifted tables with predicates sampled from the *current* (drifted)
/// data, labeled against the current database. Appending the result to
/// the old training corpus and refitting is the Warper update step.
pub fn warper_update_set(
    catalog: &Arc<Catalog>,
    oracle: &TrueCardOracle,
    drifted_tables: &[String],
    queries_per_table: usize,
    seed: u64,
) -> lqo_engine::Result<Vec<LabeledSubquery>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for tname in drifted_tables {
        let table = catalog.table(tname)?;
        if table.nrows() == 0 {
            continue;
        }
        let mut made = 0;
        let mut guard = 0;
        while made < queries_per_table && guard < queries_per_table * 20 {
            guard += 1;
            let ci = rng.gen_range(0..table.schema.arity());
            if table.schema.primary_key == Some(ci) {
                continue;
            }
            let def = &table.schema.columns[ci];
            let row = rng.gen_range(0..table.nrows());
            let value = table.column(ci).value(row);
            let op = match def.dtype {
                lqo_engine::DataType::Text => CmpOp::Eq,
                lqo_engine::DataType::Float => [CmpOp::Lt, CmpOp::Ge][rng.gen_range(0..2)],
                lqo_engine::DataType::Int => {
                    [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][rng.gen_range(0..5)]
                }
            };
            let q = SpjQuery::new(
                vec![TableRef::bare(tname.clone())],
                Vec::new(),
                vec![Predicate::new(
                    ColRef::new(tname.clone(), def.name.clone()),
                    op,
                    value,
                )],
            );
            if q.validate(catalog).is_err() {
                continue;
            }
            let card = oracle.true_card_full(&q)? as f64;
            out.push(LabeledSubquery {
                set: q.all_tables(),
                query: Arc::new(q),
                card,
            });
            made += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::test_support::median_q_error;
    use crate::query_driven::GbdtQdEstimator;
    use lqo_engine::datagen::{correlated_table, SingleTableConfig};
    use lqo_engine::stats::table_stats::CatalogStats;

    fn single_table_world(nrows: usize, seed: u64) -> (Arc<Catalog>, FitContext) {
        let mut c = Catalog::new();
        c.add_table(
            correlated_table(
                "t",
                &SingleTableConfig {
                    nrows,
                    seed,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let c = Arc::new(c);
        let stats = Arc::new(CatalogStats::build_default(&c));
        (c.clone(), FitContext { catalog: c, stats })
    }

    fn drifted(catalog: &Catalog) -> Arc<Catalog> {
        let mut d = catalog.clone();
        let extra = correlated_table(
            "t",
            &SingleTableConfig {
                nrows: 4000,
                skew: 0.0,
                correlation: 0.0,
                seed: 0xFF,
                ..Default::default()
            },
        )
        .unwrap();
        d.table_mut("t").unwrap().append(&extra).unwrap();
        Arc::new(d)
    }

    #[test]
    fn ks_statistic_properties() {
        let a: Vec<f64> = (0..500).map(|i| i as f64).collect();
        assert!(ks_statistic(&a, &a) < 1e-9);
        let b: Vec<f64> = (0..500).map(|i| i as f64 + 1000.0).collect();
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-9);
        let c: Vec<f64> = (0..500).map(|i| i as f64 + 50.0).collect();
        let d = ks_statistic(&a, &c);
        assert!(d > 0.05 && d < 0.3, "d = {d}");
        assert_eq!(ks_statistic(&[], &a), 0.0);
    }

    #[test]
    fn detector_flags_only_drifted_tables() {
        let (catalog, ctx) = single_table_world(3000, 1);
        let detector = DriftDetector::baseline(&ctx);
        // No drift: nothing flagged.
        assert!(detector.detect(&catalog).is_empty());
        // Massive distribution shift on t: flagged.
        let d = drifted(&catalog);
        assert_eq!(detector.detect(&d), vec!["t".to_string()]);
        assert!(detector.distance(&d, "t") > detector.threshold);
    }

    #[test]
    fn warper_update_recovers_accuracy_after_drift() {
        use crate::estimator::CardEstimator;
        let (catalog, ctx) = single_table_world(3000, 2);
        let oracle = TrueCardOracle::new(catalog.clone());

        // Baseline training workload + model.
        let base_train = warper_update_set(&catalog, &oracle, &["t".into()], 40, 7).unwrap();
        let stale = GbdtQdEstimator::fit(&ctx, &base_train);

        // Drift happens.
        let dcat = drifted(&catalog);
        let dstats = Arc::new(CatalogStats::build_default(&dcat));
        let dctx = FitContext {
            catalog: dcat.clone(),
            stats: dstats,
        };
        let doracle = TrueCardOracle::new(dcat.clone());
        let eval = warper_update_set(&dcat, &doracle, &["t".into()], 30, 8).unwrap();

        // Warper: generate an update set on the drifted table, refit.
        let update = warper_update_set(&dcat, &doracle, &["t".into()], 40, 9).unwrap();
        let mut augmented = base_train.clone();
        augmented.extend(update);
        let refreshed = GbdtQdEstimator::fit(&dctx, &augmented);

        let q_stale = median_q_error(&stale, &eval);
        let q_fresh = median_q_error(&refreshed, &eval);
        assert!(
            q_fresh <= q_stale,
            "warper update did not help: stale {q_stale} fresh {q_fresh}"
        );
        assert!(refreshed.model_size() > 0);
    }
}
