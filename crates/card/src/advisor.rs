//! AutoCE-style model advisor \[74\]: recommends an estimator for a dataset
//! from its measured characteristics, using nearest-neighbour retrieval
//! over previously recorded (dataset features → per-estimator accuracy)
//! experiences — a deep-metric-learning substitution documented in
//! DESIGN.md.

use std::collections::HashMap;

use lqo_engine::column::Column;

use crate::estimator::FitContext;
use crate::registry::EstimatorKind;

/// Measured characteristics of a dataset that drive model choice.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetFeatures {
    /// Number of tables.
    pub num_tables: f64,
    /// Mean columns per table.
    pub avg_columns: f64,
    /// log10 of total rows.
    pub log_rows: f64,
    /// Mean top-value frequency ratio (skew: 1 = uniform, large = skewed).
    pub skew: f64,
    /// Mean absolute pairwise correlation between numeric columns.
    pub correlation: f64,
}

impl DatasetFeatures {
    /// Flatten to a vector for distance computations.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.num_tables / 10.0,
            self.avg_columns / 10.0,
            self.log_rows / 8.0,
            self.skew.min(50.0) / 50.0,
            self.correlation,
        ]
    }

    /// Measure a catalog.
    pub fn measure(ctx: &FitContext) -> DatasetFeatures {
        let tables = ctx.catalog.tables();
        let num_tables = tables.len() as f64;
        let avg_columns =
            tables.iter().map(|t| t.schema.arity() as f64).sum::<f64>() / num_tables.max(1.0);
        let total_rows: usize = tables.iter().map(|t| t.nrows()).sum();
        let log_rows = (total_rows.max(1) as f64).log10();

        // Skew: mean over columns of max-frequency / uniform-frequency.
        let mut skews = Vec::new();
        let mut corrs = Vec::new();
        for t in tables {
            let Some(ts) = ctx.stats.table(t.name()) else {
                continue;
            };
            for cs in &ts.columns {
                if !cs.mcv.is_empty() && cs.ndv > 1.0 {
                    if let Some((_, f)) = cs.mcv.entries().first() {
                        skews.push(f * cs.ndv);
                    }
                }
            }
            // Pairwise correlation over the first few numeric columns.
            let numeric: Vec<&Column> = t
                .columns()
                .iter()
                .filter(|c| c.as_int().is_some() || c.as_float().is_some())
                .take(4)
                .collect();
            let n = t.nrows().min(512);
            for i in 0..numeric.len() {
                for j in i + 1..numeric.len() {
                    let a: Vec<f64> = (0..n).map(|r| numeric[i].numeric_at(r)).collect();
                    let b: Vec<f64> = (0..n).map(|r| numeric[j].numeric_at(r)).collect();
                    corrs.push(lqo_ml::metrics::pearson(&a, &b).abs());
                }
            }
        }
        let skew = if skews.is_empty() {
            1.0
        } else {
            skews.iter().sum::<f64>() / skews.len() as f64
        };
        let correlation = if corrs.is_empty() {
            0.0
        } else {
            corrs.iter().sum::<f64>() / corrs.len() as f64
        };
        DatasetFeatures {
            num_tables,
            avg_columns,
            log_rows,
            skew,
            correlation,
        }
    }
}

/// One recorded experience: dataset features and the measured median
/// q-error of each evaluated estimator.
#[derive(Debug, Clone)]
pub struct Experience {
    /// Measured dataset features.
    pub features: DatasetFeatures,
    /// Estimator → median q-error on that dataset.
    pub scores: HashMap<EstimatorKind, f64>,
}

/// The advisor: k-nearest-neighbour retrieval over experiences.
#[derive(Debug, Clone, Default)]
pub struct AutoCeAdvisor {
    experiences: Vec<Experience>,
}

impl AutoCeAdvisor {
    /// Empty advisor.
    pub fn new() -> AutoCeAdvisor {
        AutoCeAdvisor::default()
    }

    /// Record a benchmark result.
    pub fn record(&mut self, experience: Experience) {
        self.experiences.push(experience);
    }

    /// Number of recorded experiences.
    pub fn len(&self) -> usize {
        self.experiences.len()
    }

    /// True when no experience has been recorded.
    pub fn is_empty(&self) -> bool {
        self.experiences.is_empty()
    }

    /// Recommend an estimator for a dataset: distance-weighted vote of the
    /// `k` nearest experiences, each voting for its best estimator.
    pub fn recommend(&self, features: &DatasetFeatures, k: usize) -> Option<EstimatorKind> {
        if self.experiences.is_empty() {
            return None;
        }
        let fx = features.to_vec();
        let mut dists: Vec<(f64, &Experience)> = self
            .experiences
            .iter()
            .map(|e| {
                let ev = e.features.to_vec();
                let d: f64 = fx
                    .iter()
                    .zip(&ev)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                (d, e)
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut votes: HashMap<EstimatorKind, f64> = HashMap::new();
        for (d, e) in dists.into_iter().take(k.max(1)) {
            let best = e.scores.iter().min_by(|a, b| a.1.total_cmp(b.1))?;
            *votes.entry(*best.0).or_insert(0.0) += 1.0 / (d + 1e-6);
        }
        votes
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::test_support::fixture;

    fn feats(skew: f64, corr: f64) -> DatasetFeatures {
        DatasetFeatures {
            num_tables: 4.0,
            avg_columns: 5.0,
            log_rows: 5.0,
            skew,
            correlation: corr,
        }
    }

    fn exp(skew: f64, corr: f64, best: EstimatorKind) -> Experience {
        let mut scores = HashMap::new();
        scores.insert(best, 1.5);
        scores.insert(EstimatorKind::Histogram, 10.0);
        Experience {
            features: feats(skew, corr),
            scores,
        }
    }

    #[test]
    fn recommends_nearest_experience_winner() {
        let mut advisor = AutoCeAdvisor::new();
        advisor.record(exp(30.0, 0.9, EstimatorKind::Flat));
        advisor.record(exp(1.0, 0.0, EstimatorKind::Sampling));
        assert_eq!(advisor.len(), 2);
        // A skewed, correlated dataset should get the FLAT vote.
        let rec = advisor.recommend(&feats(25.0, 0.8), 1).unwrap();
        assert_eq!(rec, EstimatorKind::Flat);
        let rec = advisor.recommend(&feats(1.2, 0.05), 1).unwrap();
        assert_eq!(rec, EstimatorKind::Sampling);
    }

    #[test]
    fn empty_advisor_returns_none() {
        let advisor = AutoCeAdvisor::new();
        assert!(advisor.recommend(&feats(1.0, 0.0), 3).is_none());
        assert!(advisor.is_empty());
    }

    #[test]
    fn measures_real_catalog() {
        let (ctx, _, _) = fixture();
        let f = DatasetFeatures::measure(&ctx);
        assert_eq!(f.num_tables, 8.0);
        assert!(f.avg_columns > 3.0);
        assert!(f.log_rows > 2.0);
        assert!(f.skew >= 1.0, "skewed generator must show skew: {}", f.skew);
        assert!(f.correlation >= 0.0 && f.correlation <= 1.0);
        assert_eq!(f.to_vec().len(), 5);
    }
}
