//! Data-driven estimators: unsupervised models of the joint data
//! distribution, queried for box probabilities.
//!
//! * [`KdeEstimator`] — kernel densities over table samples \[14, 21\];
//! * [`NaruEstimator`] — per-table autoregressive models with progressive
//!   sampling \[71\];
//! * [`NeuroCardEstimator`] — the same AR models combined with *fanout
//!   scaling* over the unfiltered join pattern \[70\];
//! * [`BayesNetEstimator`] / [`BayesCardEstimator`] — Chow–Liu Bayesian
//!   networks, classical vs. fanout-scaled join handling \[57, 65\];
//! * [`DeepDbEstimator`] — sum-product networks \[17\];
//! * [`FlatEstimator`] — FSPN-style SPNs with joint leaves for correlated
//!   column pairs \[81\];
//! * [`FactorJoinEstimator`] — per-edge join-key histograms refining the
//!   join selectivity bucket by bucket \[64\].

use std::collections::HashMap;
use std::sync::Arc;

use lqo_engine::{Catalog, SpjQuery, Table, TableSet, TrueCardOracle};
use lqo_ml::autoregressive::{ArConfig, ArModel};
use lqo_ml::bayesnet::BayesNet;
use lqo_ml::kde::Kde;
use lqo_ml::spn::{Spn, SpnConfig};

use crate::binning::TableBinner;
use crate::combine::{independence_join, JoinBackbone};
use crate::estimator::{CardEstimator, Category, FitContext};
use crate::query_driven::fallback_table_card;

/// How a per-table model combines across joins.
enum JoinMode {
    /// Classical `1/max(ndv)` independence formula.
    Independence,
    /// Fanout scaling over the unfiltered join pattern.
    Fanout(JoinBackbone),
}

/// A per-table box-probability model.
trait TableModel: Send + Sync {
    /// `P(predicates)` for the masked bins, or `None` to fall back.
    fn prob(&self, masks: &[Vec<bool>]) -> Option<f64>;
    /// Scalar parameter count.
    fn size(&self) -> usize;
}

/// Shared chassis for all per-table data-driven estimators.
struct PerTableEstimator {
    ctx: FitContext,
    binners: HashMap<String, TableBinner>,
    models: HashMap<String, Box<dyn TableModel>>,
    mode: JoinMode,
}

impl PerTableEstimator {
    fn table_card(&self, query: &SpjQuery, pos: usize) -> f64 {
        let tname = &query.tables[pos].table;
        let Ok(table) = self.ctx.catalog.table(tname) else {
            return 1.0;
        };
        let nrows = table.nrows() as f64;
        let preds = query.predicates_on(pos);
        if preds.is_empty() {
            return nrows;
        }
        let est = self
            .binners
            .get(tname)
            .zip(self.models.get(tname))
            .and_then(|(binner, model)| {
                let masks = binner.allowed_masks(table, &preds)?;
                model.prob(&masks)
            });
        match est {
            Some(p) => (p.clamp(0.0, 1.0) * nrows).max(0.1),
            None => fallback_table_card(&self.ctx, query, pos),
        }
    }

    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        match &self.mode {
            JoinMode::Independence => {
                independence_join(&self.ctx, query, set, |pos| self.table_card(query, pos))
            }
            JoinMode::Fanout(backbone) => {
                backbone.fanout_join(&self.ctx, query, set, |pos| self.table_card(query, pos))
            }
        }
    }

    fn size(&self) -> usize {
        self.models.values().map(|m| m.size()).sum()
    }
}

/// Training rows for a table: binned sample (or all rows when small).
fn binned_sample(
    ctx: &FitContext,
    table: &Table,
    binner: &TableBinner,
    cap: usize,
) -> Vec<Vec<usize>> {
    let sample = ctx.stats.table(table.name()).map(|ts| ts.sample.as_slice());
    match sample {
        Some(s) if table.nrows() > cap => binner.bin_rows(table, Some(&s[..s.len().min(cap)])),
        _ => binner.bin_rows(table, None),
    }
}

fn fit_per_table(
    ctx: &FitContext,
    bins: usize,
    sample_cap: usize,
    mode: JoinMode,
    fit_model: impl Fn(&[Vec<usize>], &[usize], &str) -> Box<dyn TableModel>,
) -> PerTableEstimator {
    let mut binners = HashMap::new();
    let mut models = HashMap::new();
    for table in ctx.catalog.tables() {
        if table.schema.arity() <= 1 || table.nrows() == 0 {
            continue;
        }
        let binner = TableBinner::fit(table, bins);
        if binner.cols.is_empty() {
            continue;
        }
        let rows = binned_sample(ctx, table, &binner, sample_cap);
        if rows.is_empty() {
            continue;
        }
        let domains = binner.domains();
        models.insert(
            table.name().to_string(),
            fit_model(&rows, &domains, table.name()),
        );
        binners.insert(table.name().to_string(), binner);
    }
    PerTableEstimator {
        ctx: ctx.clone(),
        binners,
        models,
        mode,
    }
}

// ---------- KDE ----------

struct KdeTableModel {
    kde: Kde,
    /// Bin count per variable (masks arrive in bin space; the KDE operates
    /// on bin indices as coordinates).
    domains: Vec<usize>,
}

impl TableModel for KdeTableModel {
    fn prob(&self, masks: &[Vec<bool>]) -> Option<f64> {
        // The allowed region may be non-contiguous (Neq); approximate with
        // the bounding contiguous range per dimension — exact for the
        // range/eq predicates the workloads use.
        let mut lo = Vec::with_capacity(masks.len());
        let mut hi = Vec::with_capacity(masks.len());
        for m in masks {
            let first = m.iter().position(|&b| b)?;
            let last = m.iter().rposition(|&b| b)?;
            lo.push(first as f64 - 0.5);
            hi.push(last as f64 + 0.5);
        }
        Some(self.kde.prob_box(&lo, &hi))
    }
    fn size(&self) -> usize {
        self.kde.len() * self.domains.len()
    }
}

/// Kernel-density estimator over per-table samples \[14, 21\].
pub struct KdeEstimator(PerTableEstimator);

impl KdeEstimator {
    /// Fit KDEs over the stats samples.
    pub fn fit(ctx: &FitContext) -> KdeEstimator {
        KdeEstimator(fit_per_table(
            ctx,
            32,
            1024,
            JoinMode::Independence,
            |rows, domains, _| {
                let points: Vec<Vec<f64>> = rows
                    .iter()
                    .map(|r| r.iter().map(|&b| b as f64).collect())
                    .collect();
                Box::new(KdeTableModel {
                    kde: Kde::fit(points),
                    domains: domains.to_vec(),
                })
            },
        ))
    }
}

impl CardEstimator for KdeEstimator {
    fn name(&self) -> &'static str {
        "KDE"
    }
    fn category(&self) -> Category {
        Category::DataDrivenKernel
    }
    fn technique(&self) -> &'static str {
        "Kernel Density Function"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        self.0.estimate(query, set)
    }
    fn model_size(&self) -> usize {
        self.0.size()
    }
}

// ---------- Autoregressive ----------

struct ArTableModel {
    model: ArModel,
}

impl TableModel for ArTableModel {
    fn prob(&self, masks: &[Vec<bool>]) -> Option<f64> {
        Some(self.model.prob_seeded(masks, 0xCA4D))
    }
    fn size(&self) -> usize {
        self.model.num_params()
    }
}

fn fit_ar(ctx: &FitContext, mode: JoinMode) -> PerTableEstimator {
    fit_per_table(ctx, 12, 1500, mode, |rows, domains, tname| {
        let mut h = 0u64;
        for b in tname.bytes() {
            h = h.wrapping_mul(31).wrapping_add(b as u64);
        }
        Box::new(ArTableModel {
            model: ArModel::fit(
                rows,
                domains,
                &ArConfig {
                    epochs: 8,
                    samples: 120,
                    seed: h,
                    ..ArConfig::default()
                },
            ),
        })
    })
}

/// Per-table deep autoregressive model \[71\].
pub struct NaruEstimator(PerTableEstimator);

impl NaruEstimator {
    /// Fit an AR model per table.
    pub fn fit(ctx: &FitContext) -> NaruEstimator {
        NaruEstimator(fit_ar(ctx, JoinMode::Independence))
    }
}

impl CardEstimator for NaruEstimator {
    fn name(&self) -> &'static str {
        "Naru"
    }
    fn category(&self) -> Category {
        Category::DataDrivenAr
    }
    fn technique(&self) -> &'static str {
        "Deep Auto-Regression (Single Table)"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        self.0.estimate(query, set)
    }
    fn model_size(&self) -> usize {
        self.0.size()
    }
}

/// AR models combined across joins with fanout scaling \[70\].
pub struct NeuroCardEstimator(PerTableEstimator);

impl NeuroCardEstimator {
    /// Fit AR models and the join backbone.
    pub fn fit(ctx: &FitContext, oracle: Arc<TrueCardOracle>) -> NeuroCardEstimator {
        NeuroCardEstimator(fit_ar(ctx, JoinMode::Fanout(JoinBackbone::new(oracle))))
    }
}

impl CardEstimator for NeuroCardEstimator {
    fn name(&self) -> &'static str {
        "NeuroCard"
    }
    fn category(&self) -> Category {
        Category::DataDrivenAr
    }
    fn technique(&self) -> &'static str {
        "Auto-Regression + Fanout Scaling"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        self.0.estimate(query, set)
    }
    fn model_size(&self) -> usize {
        self.0.size()
    }
}

// ---------- Bayesian networks ----------

struct BnTableModel {
    net: BayesNet,
}

impl TableModel for BnTableModel {
    fn prob(&self, masks: &[Vec<bool>]) -> Option<f64> {
        Some(self.net.prob(masks))
    }
    fn size(&self) -> usize {
        self.net.num_params()
    }
}

fn fit_bn(ctx: &FitContext, bins: usize, mode: JoinMode) -> PerTableEstimator {
    fit_per_table(ctx, bins, 4000, mode, |rows, domains, _| {
        Box::new(BnTableModel {
            net: BayesNet::fit(rows, domains, 0.5),
        })
    })
}

/// Classical Bayesian-network estimator \[57\].
pub struct BayesNetEstimator(PerTableEstimator);

impl BayesNetEstimator {
    /// Fit Chow–Liu networks per table.
    pub fn fit(ctx: &FitContext) -> BayesNetEstimator {
        BayesNetEstimator(fit_bn(ctx, 24, JoinMode::Independence))
    }
}

impl CardEstimator for BayesNetEstimator {
    fn name(&self) -> &'static str {
        "BayesNet"
    }
    fn category(&self) -> Category {
        Category::DataDrivenPgm
    }
    fn technique(&self) -> &'static str {
        "Bayesian Networks"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        self.0.estimate(query, set)
    }
    fn model_size(&self) -> usize {
        self.0.size()
    }
}

/// Revitalized Bayesian networks with fanout-scaled joins \[65\].
pub struct BayesCardEstimator(PerTableEstimator);

impl BayesCardEstimator {
    /// Fit with finer bins and the join backbone.
    pub fn fit(ctx: &FitContext, oracle: Arc<TrueCardOracle>) -> BayesCardEstimator {
        BayesCardEstimator(fit_bn(ctx, 32, JoinMode::Fanout(JoinBackbone::new(oracle))))
    }
}

impl CardEstimator for BayesCardEstimator {
    fn name(&self) -> &'static str {
        "BayesCard"
    }
    fn category(&self) -> Category {
        Category::DataDrivenPgm
    }
    fn technique(&self) -> &'static str {
        "Revitalized Bayesian Networks"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        self.0.estimate(query, set)
    }
    fn model_size(&self) -> usize {
        self.0.size()
    }
}

// ---------- Sum-product networks ----------

struct SpnTableModel {
    spn: Spn,
}

impl TableModel for SpnTableModel {
    fn prob(&self, masks: &[Vec<bool>]) -> Option<f64> {
        Some(self.spn.prob(masks))
    }
    fn size(&self) -> usize {
        self.spn.num_nodes() * 8
    }
}

fn fit_spn(ctx: &FitContext, joint_vars: usize, mode: JoinMode) -> PerTableEstimator {
    fit_per_table(ctx, 24, 4000, mode, move |rows, domains, _| {
        Box::new(SpnTableModel {
            spn: Spn::fit(
                rows,
                domains,
                &SpnConfig {
                    max_joint_vars: joint_vars,
                    min_rows: 96,
                    ..SpnConfig::default()
                },
            ),
        })
    })
}

/// DeepDB-style sum-product networks \[17\].
pub struct DeepDbEstimator(PerTableEstimator);

impl DeepDbEstimator {
    /// Fit SPNs per table with the join backbone.
    pub fn fit(ctx: &FitContext, oracle: Arc<TrueCardOracle>) -> DeepDbEstimator {
        DeepDbEstimator(fit_spn(ctx, 1, JoinMode::Fanout(JoinBackbone::new(oracle))))
    }

    /// Bin-count ablation constructor (experiment E2): trade accuracy for
    /// model size by changing the per-column discretization.
    pub fn fit_with_bins(
        ctx: &FitContext,
        oracle: Arc<TrueCardOracle>,
        bins: usize,
    ) -> DeepDbEstimator {
        let mode = JoinMode::Fanout(JoinBackbone::new(oracle));
        DeepDbEstimator(fit_per_table(
            ctx,
            bins,
            4000,
            mode,
            move |rows, domains, _| {
                Box::new(SpnTableModel {
                    spn: Spn::fit(
                        rows,
                        domains,
                        &SpnConfig {
                            min_rows: 96,
                            ..SpnConfig::default()
                        },
                    ),
                })
            },
        ))
    }
}

impl CardEstimator for DeepDbEstimator {
    fn name(&self) -> &'static str {
        "DeepDB"
    }
    fn category(&self) -> Category {
        Category::DataDrivenPgm
    }
    fn technique(&self) -> &'static str {
        "Sum-Product Network"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        self.0.estimate(query, set)
    }
    fn model_size(&self) -> usize {
        self.0.size()
    }
}

/// FLAT-style factorized SPNs: correlated column pairs become joint
/// histogram leaves \[81\].
pub struct FlatEstimator(PerTableEstimator);

impl FlatEstimator {
    /// Fit FSPNs per table with the join backbone.
    pub fn fit(ctx: &FitContext, oracle: Arc<TrueCardOracle>) -> FlatEstimator {
        FlatEstimator(fit_spn(ctx, 2, JoinMode::Fanout(JoinBackbone::new(oracle))))
    }
}

impl CardEstimator for FlatEstimator {
    fn name(&self) -> &'static str {
        "FLAT"
    }
    fn category(&self) -> Category {
        Category::DataDrivenPgm
    }
    fn technique(&self) -> &'static str {
        "FSPN"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        self.0.estimate(query, set)
    }
    fn model_size(&self) -> usize {
        self.0.size()
    }
}

// ---------- FactorJoin ----------

/// Per-bucket count/NDV histogram of one join column.
#[derive(Debug, Clone)]
struct KeyHist {
    counts: Vec<f64>,
    ndvs: Vec<f64>,
}

/// Bucketized join-key histograms per FK edge \[64\]: join selectivity is
/// refined bucket-by-bucket as `Σ_b cnt_l(b)·cnt_r(b)/max(ndv_l, ndv_r)`,
/// capturing key-distribution skew that `1/max(ndv)` misses.
pub struct FactorJoinEstimator {
    ctx: FitContext,
    /// Canonical edge key -> (left hist, right hist, |l|, |r|).
    edges: HashMap<String, (KeyHist, KeyHist, f64, f64)>,
    buckets: usize,
}

fn key_hist(
    catalog: &Catalog,
    table: &str,
    column: &str,
    lo: f64,
    width: f64,
    nb: usize,
) -> KeyHist {
    let mut counts = vec![0.0; nb];
    let mut sets: Vec<std::collections::HashSet<i64>> = vec![Default::default(); nb];
    if let Ok(t) = catalog.table(table) {
        if let Ok(col) = t.column_by_name(column) {
            if let Some(data) = col.as_int() {
                for &v in data {
                    let b = (((v as f64 - lo) / width) as usize).min(nb - 1);
                    counts[b] += 1.0;
                    sets[b].insert(v);
                }
            }
        }
    }
    KeyHist {
        counts,
        ndvs: sets.iter().map(|s| s.len() as f64).collect(),
    }
}

impl FactorJoinEstimator {
    /// Build edge histograms for every declared FK.
    pub fn fit(ctx: &FitContext) -> FactorJoinEstimator {
        let buckets = 64;
        let mut edges = HashMap::new();
        for fk in ctx.catalog.foreign_keys() {
            let range = |t: &str, c: &str| -> Option<(f64, f64)> {
                let table = ctx.catalog.table(t).ok()?;
                let s = ctx.stats.table(t)?;
                let cs = s.column(table, c).ok()?;
                Some((cs.min, cs.max))
            };
            let (Some((llo, lhi)), Some((rlo, rhi))) = (
                range(&fk.table, &fk.column),
                range(&fk.ref_table, &fk.ref_column),
            ) else {
                continue;
            };
            let lo = llo.min(rlo);
            let hi = lhi.max(rhi).max(lo + 1.0);
            let width = (hi - lo) / buckets as f64;
            let lh = key_hist(&ctx.catalog, &fk.table, &fk.column, lo, width, buckets);
            let rh = key_hist(
                &ctx.catalog,
                &fk.ref_table,
                &fk.ref_column,
                lo,
                width,
                buckets,
            );
            let nl = ctx
                .catalog
                .table(&fk.table)
                .map(|t| t.nrows() as f64)
                .unwrap_or(1.0);
            let nr = ctx
                .catalog
                .table(&fk.ref_table)
                .map(|t| t.nrows() as f64)
                .unwrap_or(1.0);
            let key = edge_key(&fk.table, &fk.column, &fk.ref_table, &fk.ref_column);
            edges.insert(key, (lh, rh, nl, nr));
        }
        FactorJoinEstimator {
            ctx: ctx.clone(),
            edges,
            buckets,
        }
    }

    fn join_selectivity(&self, query: &SpjQuery, join: &lqo_engine::JoinCond) -> f64 {
        let resolve = |col: &lqo_engine::ColRef| -> Option<(String, String)> {
            let pos = query.col_pos(col).ok()?;
            Some((query.tables[pos].table.clone(), col.column.clone()))
        };
        let (Some((lt, lc)), Some((rt, rc))) = (resolve(&join.left), resolve(&join.right)) else {
            return 1.0;
        };
        let key = edge_key(&lt, &lc, &rt, &rc);
        let Some((lh, rh, nl, nr)) = self.edges.get(&key) else {
            // Unknown edge: classical fallback.
            return 1.0
                / nl_ndv(&self.ctx, &lt, &lc)
                    .max(nl_ndv(&self.ctx, &rt, &rc))
                    .max(1.0);
        };
        let mut card = 0.0;
        for b in 0..self.buckets {
            let ndv = lh.ndvs[b].max(rh.ndvs[b]);
            if ndv > 0.0 {
                card += lh.counts[b] * rh.counts[b] / ndv;
            }
        }
        (card / (nl * nr)).clamp(0.0, 1.0).max(1e-12)
    }
}

fn nl_ndv(ctx: &FitContext, table: &str, column: &str) -> f64 {
    ctx.catalog
        .table(table)
        .ok()
        .and_then(|t| {
            ctx.stats
                .table(table)
                .and_then(|ts| ts.column(t, column).ok())
                .map(|cs| cs.ndv)
        })
        .unwrap_or(1.0)
}

fn edge_key(t1: &str, c1: &str, t2: &str, c2: &str) -> String {
    let a = format!("{t1}.{c1}");
    let b = format!("{t2}.{c2}");
    if a <= b {
        format!("{a}={b}")
    } else {
        format!("{b}={a}")
    }
}

impl CardEstimator for FactorJoinEstimator {
    fn name(&self) -> &'static str {
        "FactorJoin"
    }
    fn category(&self) -> Category {
        Category::DataDrivenOther
    }
    fn technique(&self) -> &'static str {
        "Factor Graph + Join Histograms"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        let mut card: f64 = 1.0;
        for pos in set.iter() {
            card *= fallback_table_card(&self.ctx, query, pos);
        }
        for join in query.joins_within(set) {
            card *= self.join_selectivity(query, join);
        }
        card.max(1.0)
    }
    fn model_size(&self) -> usize {
        self.edges.len() * self.buckets * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::label_workload;
    use crate::estimator::test_support::{fixture, median_q_error};

    #[test]
    fn kde_single_table_accuracy() {
        let (ctx, oracle, queries) = fixture();
        let est = KdeEstimator::fit(&ctx);
        let labeled = label_workload(&oracle, &queries, 1).unwrap();
        let med = median_q_error(&est, &labeled);
        assert!(med < 6.0, "kde median q-error {med}");
    }

    #[test]
    fn bayesnet_single_table_accuracy() {
        let (ctx, oracle, queries) = fixture();
        let est = BayesNetEstimator::fit(&ctx);
        let labeled = label_workload(&oracle, &queries, 1).unwrap();
        let med = median_q_error(&est, &labeled);
        assert!(med < 4.0, "bn median q-error {med}");
        assert!(est.model_size() > 0);
    }

    #[test]
    fn spn_family_single_table_accuracy() {
        let (ctx, oracle, queries) = fixture();
        let labeled = label_workload(&oracle, &queries, 1).unwrap();
        let deepdb = DeepDbEstimator::fit(&ctx, oracle.clone());
        let flat = FlatEstimator::fit(&ctx, oracle.clone());
        assert!(median_q_error(&deepdb, &labeled) < 5.0);
        assert!(median_q_error(&flat, &labeled) < 5.0);
    }

    #[test]
    fn fanout_beats_independence_on_joins() {
        let (ctx, oracle, queries) = fixture();
        let labeled: Vec<_> = label_workload(&oracle, &queries, 3)
            .unwrap()
            .into_iter()
            .filter(|l| l.set.len() >= 2)
            .collect();
        let naru = NaruEstimator::fit(&ctx);
        let neurocard = NeuroCardEstimator::fit(&ctx, oracle.clone());
        let q_ind = median_q_error(&naru, &labeled);
        let q_fan = median_q_error(&neurocard, &labeled);
        assert!(
            q_fan <= q_ind * 1.2,
            "fanout {q_fan} should beat independence {q_ind} on joins"
        );
    }

    #[test]
    fn factorjoin_join_accuracy() {
        let (ctx, oracle, queries) = fixture();
        let est = FactorJoinEstimator::fit(&ctx);
        let labeled: Vec<_> = label_workload(&oracle, &queries, 2)
            .unwrap()
            .into_iter()
            .filter(|l| l.set.len() == 2)
            .collect();
        let med = median_q_error(&est, &labeled);
        assert!(med < 8.0, "factorjoin median q-error {med}");
        assert!(est.model_size() > 0);
    }

    #[test]
    fn all_estimates_positive() {
        let (ctx, oracle, queries) = fixture();
        let ests: Vec<Box<dyn CardEstimator>> = vec![
            Box::new(KdeEstimator::fit(&ctx)),
            Box::new(BayesNetEstimator::fit(&ctx)),
            Box::new(BayesCardEstimator::fit(&ctx, oracle.clone())),
            Box::new(FactorJoinEstimator::fit(&ctx)),
        ];
        for est in &ests {
            for q in &queries {
                let e = est.estimate(q, q.all_tables());
                assert!(e >= 1.0 && e.is_finite(), "{} -> {e}", est.name());
            }
        }
    }
}
