//! The estimator trait, training-data types and the optimizer adapter.

use std::sync::Arc;

use lqo_engine::optimizer::CardSource;
use lqo_engine::query::JoinGraph;
use lqo_engine::{Catalog, CatalogStats, SpjQuery, TableSet, TrueCardOracle};

/// Taxonomy categories, matching the row groups of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Non-learned baselines.
    Traditional,
    /// Query-driven, statistical models.
    QueryDrivenStat,
    /// Query-driven, DNN-based models.
    QueryDrivenDnn,
    /// Data-driven, kernel-based.
    DataDrivenKernel,
    /// Data-driven, auto-regression models.
    DataDrivenAr,
    /// Data-driven, probabilistic graphical models.
    DataDrivenPgm,
    /// Data-driven, other modelling tools.
    DataDrivenOther,
    /// Hybrid query+data methods.
    Hybrid,
}

impl Category {
    /// Table-1-style label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Traditional => "Traditional",
            Category::QueryDrivenStat => "Query-Driven (Statistical Model)",
            Category::QueryDrivenDnn => "Query-Driven (DNN-Based Model)",
            Category::DataDrivenKernel => "Data-Driven (Kernel-Based)",
            Category::DataDrivenAr => "Data-Driven (Auto-Regression Model)",
            Category::DataDrivenPgm => "Data-Driven (Probabilistic Graphical Model)",
            Category::DataDrivenOther => "Data-Driven",
            Category::Hybrid => "Hybrid",
        }
    }
}

/// A cardinality estimator: maps any (sub-)query to an estimated result
/// size. Implementations are immutable after fitting except for explicit
/// feedback via [`CardEstimator::observe`].
pub trait CardEstimator: Send + Sync {
    /// Short method name (e.g. `"MSCN"`).
    fn name(&self) -> &'static str;

    /// Taxonomy category (Table 1, column 1).
    fn category(&self) -> Category;

    /// Applied ML technique (Table 1, column 3).
    fn technique(&self) -> &'static str;

    /// Estimated cardinality of the sub-query induced by `set`.
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64;

    /// Model size in scalar parameters / tree nodes / stored points.
    fn model_size(&self) -> usize {
        0
    }

    /// Feedback hook: the true cardinality of an executed (sub-)query.
    /// Progressive methods (LPCE, Warper-style updaters) refine from this;
    /// the default is a no-op.
    fn observe(&self, _query: &SpjQuery, _set: TableSet, _true_card: f64) {}
}

/// Everything an estimator needs at fit time.
#[derive(Clone)]
pub struct FitContext {
    /// The database.
    pub catalog: Arc<Catalog>,
    /// Its collected statistics.
    pub stats: Arc<CatalogStats>,
}

impl FitContext {
    /// Bundle a catalog with freshly-built default statistics.
    pub fn new(catalog: Arc<Catalog>) -> FitContext {
        let stats = Arc::new(CatalogStats::build_default(&catalog));
        FitContext { catalog, stats }
    }
}

/// One labeled training/evaluation point: a sub-query and its true
/// cardinality.
#[derive(Clone)]
pub struct LabeledSubquery {
    /// The enclosing query.
    pub query: Arc<SpjQuery>,
    /// The sub-query's table subset.
    pub set: TableSet,
    /// Exact cardinality.
    pub card: f64,
}

/// Expand a workload of full queries into labeled sub-queries (every
/// connected subset up to `max_subset_size` tables), labeling each with
/// the oracle. This is the training corpus query-driven estimators learn
/// from — exactly what a DBMS would harvest from executed plans.
pub fn label_workload(
    oracle: &TrueCardOracle,
    queries: &[SpjQuery],
    max_subset_size: usize,
) -> lqo_engine::Result<Vec<LabeledSubquery>> {
    let mut out = Vec::new();
    for q in queries {
        let q = Arc::new(q.clone());
        let graph = JoinGraph::new(&q);
        for set in graph.connected_subsets(max_subset_size) {
            let card = oracle.true_card(&q, set)? as f64;
            out.push(LabeledSubquery {
                query: q.clone(),
                set,
                card,
            });
        }
    }
    Ok(out)
}

/// Adapter exposing any [`CardEstimator`] as an engine
/// [`CardSource`], so it can drive the cost-based optimizer directly
/// (the E3 injection experiment and PilotScope's cardinality driver).
pub struct EstimatorCardSource {
    inner: Arc<dyn CardEstimator>,
}

impl EstimatorCardSource {
    /// Wrap an estimator.
    pub fn new(inner: Arc<dyn CardEstimator>) -> EstimatorCardSource {
        EstimatorCardSource { inner }
    }
}

impl CardSource for EstimatorCardSource {
    fn cardinality(&self, query: &SpjQuery, set: TableSet) -> f64 {
        // The optimizer's cost model assumes finite, positive rows; a
        // NaN/∞ estimate from a misbehaving model must not cross this
        // boundary (∞ would survive the `.max(1.0)` floor).
        let est = self.inner.estimate(query, set);
        if est.is_finite() {
            est.max(1.0)
        } else {
            1.0
        }
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use lqo_engine::datagen::stats_like;
    use lqo_engine::query::parse_query;

    /// Shared small STATS-like fixture for estimator tests.
    pub fn fixture() -> (FitContext, Arc<TrueCardOracle>, Vec<SpjQuery>) {
        let catalog = Arc::new(stats_like(120, 7).unwrap());
        let ctx = FitContext::new(catalog.clone());
        let oracle = Arc::new(TrueCardOracle::new(catalog));
        let queries = vec![
            parse_query(
                "SELECT COUNT(*) FROM users u, posts p \
                 WHERE u.id = p.owner_user_id AND u.reputation > 100",
            )
            .unwrap(),
            parse_query(
                "SELECT COUNT(*) FROM users u, posts p, comments c \
                 WHERE u.id = p.owner_user_id AND p.id = c.post_id AND p.score > 3",
            )
            .unwrap(),
            parse_query(
                "SELECT COUNT(*) FROM posts p, votes v \
                 WHERE p.id = v.post_id AND v.vote_type < 3 AND p.view_count < 1000",
            )
            .unwrap(),
            parse_query(
                "SELECT COUNT(*) FROM users u, badges b \
                 WHERE u.id = b.user_id AND b.class = 1",
            )
            .unwrap(),
            parse_query("SELECT COUNT(*) FROM posts p WHERE p.score >= 5").unwrap(),
            parse_query(
                "SELECT COUNT(*) FROM users u, comments c \
                 WHERE u.id = c.user_id AND c.score = 0 AND u.views < 500",
            )
            .unwrap(),
        ];
        (ctx, oracle, queries)
    }

    /// Median q-error of an estimator over labeled sub-queries.
    pub fn median_q_error(est: &dyn CardEstimator, labeled: &[LabeledSubquery]) -> f64 {
        let mut qs: Vec<f64> = labeled
            .iter()
            .map(|l| lqo_ml::metrics::q_error(est.estimate(&l.query, l.set), l.card))
            .collect();
        qs.sort_by(f64::total_cmp);
        qs[qs.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_support::fixture;

    #[test]
    fn label_workload_covers_subsets() {
        let (_, oracle, queries) = fixture();
        let labeled = label_workload(&oracle, &queries[..2], 4).unwrap();
        // Query 1: 2 tables -> 3 subsets; query 2: 3-chain -> 6 subsets.
        assert_eq!(labeled.len(), 9);
        assert!(labeled.iter().all(|l| l.card >= 0.0));
        // Full-set labels match the oracle directly.
        for l in &labeled {
            assert_eq!(l.card, oracle.true_card(&l.query, l.set).unwrap() as f64);
        }
    }

    #[test]
    fn category_labels_match_table1() {
        assert_eq!(
            Category::DataDrivenPgm.label(),
            "Data-Driven (Probabilistic Graphical Model)"
        );
        assert_eq!(Category::Hybrid.label(), "Hybrid");
    }

    #[test]
    fn card_source_adapter_floors_at_one() {
        struct Zero;
        impl CardEstimator for Zero {
            fn name(&self) -> &'static str {
                "zero"
            }
            fn category(&self) -> Category {
                Category::Traditional
            }
            fn technique(&self) -> &'static str {
                "none"
            }
            fn estimate(&self, _q: &SpjQuery, _s: TableSet) -> f64 {
                0.0
            }
        }
        let (_, _, queries) = fixture();
        let src = EstimatorCardSource::new(Arc::new(Zero));
        assert_eq!(src.cardinality(&queries[0], TableSet::singleton(0)), 1.0);
        assert_eq!(CardSource::name(&src), "zero");
    }

    #[test]
    fn card_source_adapter_sanitizes_non_finite() {
        struct Broken(f64);
        impl CardEstimator for Broken {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn category(&self) -> Category {
                Category::Traditional
            }
            fn technique(&self) -> &'static str {
                "none"
            }
            fn estimate(&self, _q: &SpjQuery, _s: TableSet) -> f64 {
                self.0
            }
        }
        let (_, _, queries) = fixture();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let src = EstimatorCardSource::new(Arc::new(Broken(bad)));
            let est = src.cardinality(&queries[0], TableSet::singleton(0));
            assert_eq!(est, 1.0, "estimate {bad} should sanitize to 1.0");
        }
    }
}
