//! Hybrid estimators learning from both data and queries.
//!
//! * [`UaeEstimator`] — a data-driven AR backbone calibrated with a
//!   boosted-tree residual model fit on workload feedback, substituting
//!   for UAE's differentiable progressive sampling \[63\] (DESIGN.md records
//!   the substitution);
//! * [`GlueEstimator`] — merges any single-table estimates into join
//!   estimates through per-edge correlation factors learned from executed
//!   joins \[82\];
//! * [`AleceEstimator`] — a query model whose input is augmented with
//!   *data aggregation* features (histogram mass under each predicate),
//!   recomputed from current statistics so it adapts to dynamic data,
//!   substituting attention over data aggregations \[30\].

use std::collections::HashMap;
use std::sync::Arc;

use lqo_engine::{SpjQuery, TableSet};
use lqo_ml::gbdt::{Gbdt, GbdtConfig};
use lqo_ml::mlp::{Mlp, MlpConfig};
use lqo_ml::scaler::log_label;

use crate::data_driven::NaruEstimator;
use crate::estimator::{CardEstimator, Category, FitContext, LabeledSubquery};
use crate::featurize::Featurizer;
use crate::query_driven::fallback_table_card;

/// Unified data + query estimator \[63\]: AR data model, query-feedback
/// calibration.
pub struct UaeEstimator {
    backbone: NaruEstimator,
    feat: Featurizer,
    /// Residual model on log(true) - log(backbone estimate).
    residual: Gbdt,
}

impl UaeEstimator {
    /// Fit the backbone on data and the residual on the workload.
    pub fn fit(ctx: &FitContext, workload: &[LabeledSubquery]) -> UaeEstimator {
        let backbone = NaruEstimator::fit(ctx);
        let feat = Featurizer::new(&ctx.catalog, &ctx.stats);
        let xs: Vec<Vec<f64>> = workload
            .iter()
            .map(|l| feat.featurize(&l.query, l.set))
            .collect();
        let ys: Vec<f64> = workload
            .iter()
            .map(|l| {
                log_label::encode(l.card) - log_label::encode(backbone.estimate(&l.query, l.set))
            })
            .collect();
        let residual = Gbdt::fit(
            &xs,
            &ys,
            &GbdtConfig {
                n_trees: 40,
                ..GbdtConfig::default()
            },
        );
        UaeEstimator {
            backbone,
            feat,
            residual,
        }
    }
}

impl CardEstimator for UaeEstimator {
    fn name(&self) -> &'static str {
        "UAE"
    }
    fn category(&self) -> Category {
        Category::Hybrid
    }
    fn technique(&self) -> &'static str {
        "Deep Auto-Regression + Query Feedback"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        let base = log_label::encode(self.backbone.estimate(query, set));
        let corr = self.residual.predict(&self.feat.featurize(query, set));
        log_label::decode(base + corr).max(1.0)
    }
    fn model_size(&self) -> usize {
        self.backbone.model_size() + self.residual.num_nodes()
    }
}

/// Canonical edge key shared with the featurizer's join slots.
fn edge_key(q: &SpjQuery, join: &lqo_engine::JoinCond) -> Option<String> {
    let lp = q.col_pos(&join.left).ok()?;
    let rp = q.col_pos(&join.right).ok()?;
    let a = format!("{}.{}", q.tables[lp].table, join.left.column);
    let b = format!("{}.{}", q.tables[rp].table, join.right.column);
    Some(if a <= b {
        format!("{a}={b}")
    } else {
        format!("{b}={a}")
    })
}

/// GLUE \[82\]: any single-table estimator's results merged into join
/// estimates. The merge multiplies per-table cardinalities by a learned
/// per-edge correlation factor `avg(true / independence-estimate)`
/// harvested from executed join queries.
pub struct GlueEstimator {
    ctx: FitContext,
    /// Learned per-edge correction factors in log space.
    factors: HashMap<String, f64>,
}

impl GlueEstimator {
    /// Learn the per-edge factors from the labeled workload.
    pub fn fit(ctx: &FitContext, workload: &[LabeledSubquery]) -> GlueEstimator {
        let mut sums: HashMap<String, (f64, usize)> = HashMap::new();
        for l in workload {
            if l.set.len() != 2 {
                continue;
            }
            let joins = l.query.joins_within(l.set);
            if joins.len() != 1 {
                continue;
            }
            let Some(key) = edge_key(&l.query, joins[0]) else {
                continue;
            };
            let ind = crate::combine::independence_join(ctx, &l.query, l.set, |pos| {
                fallback_table_card(ctx, &l.query, pos)
            });
            let ratio = (l.card.max(1.0) / ind.max(1.0)).ln();
            let e = sums.entry(key).or_insert((0.0, 0));
            e.0 += ratio;
            e.1 += 1;
        }
        let factors = sums
            .into_iter()
            .map(|(k, (s, n))| (k, s / n as f64))
            .collect();
        GlueEstimator {
            ctx: ctx.clone(),
            factors,
        }
    }

    /// Number of learned edge factors.
    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }
}

impl CardEstimator for GlueEstimator {
    fn name(&self) -> &'static str {
        "GLUE"
    }
    fn category(&self) -> Category {
        Category::Hybrid
    }
    fn technique(&self) -> &'static str {
        "Merging Single Table Results"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        let mut est = crate::combine::independence_join(&self.ctx, query, set, |pos| {
            fallback_table_card(&self.ctx, query, pos)
        });
        for join in query.joins_within(set) {
            if let Some(key) = edge_key(query, join) {
                if let Some(&f) = self.factors.get(&key) {
                    est *= f.exp();
                }
            }
        }
        est.max(1.0)
    }
    fn model_size(&self) -> usize {
        self.factors.len()
    }
}

/// ALECE-style data-aware query model \[30\]: the query features are
/// concatenated with per-column data-aggregation features (the histogram
/// mass each predicate admits under *current* statistics). Because the
/// aggregation features are recomputed from live statistics, the model
/// adapts to data drift without retraining — ALECE's headline property.
pub struct AleceEstimator {
    ctx: FitContext,
    feat: Featurizer,
    model: Mlp,
}

impl AleceEstimator {
    /// Data-aggregation features: per table in `set`, the estimated filter
    /// selectivity under current histograms, plus log-scaled current row
    /// count. 2 features per catalog table.
    fn data_features(ctx: &FitContext, query: &SpjQuery, set: TableSet) -> Vec<f64> {
        let n = ctx.catalog.tables().len();
        let mut out = vec![0.0; 2 * n];
        for pos in set.iter() {
            let tname = &query.tables[pos].table;
            let Some(ti) = ctx.catalog.tables().iter().position(|t| t.name() == tname) else {
                continue;
            };
            let nrows = ctx.catalog.tables()[ti].nrows().max(1) as f64;
            let card = fallback_table_card(ctx, query, pos);
            out[2 * ti] = (card / nrows).clamp(0.0, 1.0);
            out[2 * ti + 1] = (nrows + 1.0).ln() / 20.0;
        }
        out
    }

    fn input(&self, query: &SpjQuery, set: TableSet) -> Vec<f64> {
        let mut x = self.feat.featurize(query, set);
        x.extend(Self::data_features(&self.ctx, query, set));
        x
    }

    /// Fit on a labeled workload.
    pub fn fit(ctx: &FitContext, workload: &[LabeledSubquery]) -> AleceEstimator {
        let feat = Featurizer::new(&ctx.catalog, &ctx.stats);
        let dim = feat.dim() + 2 * ctx.catalog.tables().len();
        let mut this = AleceEstimator {
            ctx: ctx.clone(),
            feat,
            model: Mlp::new(MlpConfig {
                learning_rate: 2e-3,
                ..MlpConfig::new(vec![dim, 64, 64, 1])
            }),
        };
        let xs: Vec<Vec<f64>> = workload
            .iter()
            .map(|l| this.input(&l.query, l.set))
            .collect();
        let ys: Vec<f64> = workload.iter().map(|l| log_label::encode(l.card)).collect();
        this.model.fit_regression(&xs, &ys, 60, 32, 61);
        this
    }

    /// Refresh the statistics the data features read (drift adaptation
    /// without retraining).
    pub fn refresh_stats(&mut self, stats: Arc<lqo_engine::CatalogStats>) {
        self.ctx.stats = stats;
    }
}

impl CardEstimator for AleceEstimator {
    fn name(&self) -> &'static str {
        "ALECE"
    }
    fn category(&self) -> Category {
        Category::Hybrid
    }
    fn technique(&self) -> &'static str {
        "Data Aggregations + Query Model"
    }
    fn estimate(&self, query: &SpjQuery, set: TableSet) -> f64 {
        log_label::decode(self.model.predict_scalar(&self.input(query, set))).max(1.0)
    }
    fn model_size(&self) -> usize {
        self.model.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_driven::NaruEstimator;
    use crate::estimator::label_workload;
    use crate::estimator::test_support::{fixture, median_q_error};

    #[test]
    fn uae_beats_pure_data_model_on_workload() {
        let (ctx, oracle, queries) = fixture();
        let labeled = label_workload(&oracle, &queries, 3).unwrap();
        let naru = NaruEstimator::fit(&ctx);
        let uae = UaeEstimator::fit(&ctx, &labeled);
        let qn = median_q_error(&naru, &labeled);
        let qu = median_q_error(&uae, &labeled);
        assert!(qu <= qn * 1.05, "uae {qu} should improve on naru {qn}");
    }

    #[test]
    fn glue_learns_edge_factors() {
        let (ctx, oracle, queries) = fixture();
        let labeled = label_workload(&oracle, &queries, 2).unwrap();
        let est = GlueEstimator::fit(&ctx, &labeled);
        assert!(est.num_factors() >= 3, "factors: {}", est.num_factors());
        let joins: Vec<_> = labeled
            .iter()
            .filter(|l| l.set.len() == 2)
            .cloned()
            .collect();
        let med = median_q_error(&est, &joins);
        assert!(med < 4.0, "glue median q-error {med}");
    }

    #[test]
    fn alece_fits_and_adapts_inputs() {
        let (ctx, oracle, queries) = fixture();
        let labeled = label_workload(&oracle, &queries, 3).unwrap();
        let est = AleceEstimator::fit(&ctx, &labeled);
        let med = median_q_error(&est, &labeled);
        assert!(med < 10.0, "alece median q-error {med}");
        // Data features reflect the predicate mass.
        let q = &queries[0];
        let f = AleceEstimator::data_features(&ctx, q, q.all_tables());
        assert!(f.iter().any(|&v| v > 0.0));
    }
}
