//! Discretization of table columns for the data-driven estimators: every
//! non-key column is mapped to a small bin domain (equi-depth for numeric
//! columns, top-k codes + overflow for text), and predicates are compiled
//! to allowed-bin masks. Bin count is the main accuracy/size knob and is
//! ablated in experiment E2.

use lqo_engine::column::Column;
use lqo_engine::query::expr::CmpOp;
use lqo_engine::{Predicate, Table, Value};

/// Discretizer for one column.
#[derive(Debug, Clone)]
pub enum ColumnBinner {
    /// Equi-depth numeric bins defined by `edges` (len = bins + 1).
    Numeric {
        /// Bin edges, non-decreasing.
        edges: Vec<f64>,
    },
    /// Dictionary codes `0..top` map to themselves; the rest to an
    /// overflow bin.
    Text {
        /// Number of dedicated code bins.
        top: usize,
        /// Dictionary size at fit time.
        dict_len: usize,
    },
}

impl ColumnBinner {
    /// Fit a binner over a column with at most `max_bins` bins.
    pub fn fit(col: &Column, max_bins: usize) -> ColumnBinner {
        match col {
            Column::Int(_) | Column::Float(_) => {
                let mut vals: Vec<f64> = (0..col.len()).map(|r| col.numeric_at(r)).collect();
                vals.sort_by(|a, b| a.total_cmp(b));
                vals.dedup();
                let bins = max_bins.max(1).min(vals.len().max(1));
                let mut edges = Vec::with_capacity(bins + 1);
                for i in 0..=bins {
                    let idx = (i * (vals.len().saturating_sub(1))) / bins.max(1);
                    edges.push(*vals.get(idx).unwrap_or(&0.0));
                }
                edges.dedup();
                if edges.len() < 2 {
                    let v = edges.first().copied().unwrap_or(0.0);
                    edges = vec![v, v];
                }
                ColumnBinner::Numeric { edges }
            }
            Column::Text { dict, .. } => ColumnBinner::Text {
                top: dict.len().min(max_bins.saturating_sub(1).max(1)),
                dict_len: dict.len(),
            },
        }
    }

    /// Number of bins.
    pub fn domain(&self) -> usize {
        match self {
            ColumnBinner::Numeric { edges } => edges.len() - 1,
            ColumnBinner::Text { top, dict_len } => {
                if *dict_len > *top {
                    top + 1
                } else {
                    (*top).max(1)
                }
            }
        }
    }

    /// Bin of the value in row `row` of `col`.
    pub fn bin(&self, col: &Column, row: usize) -> usize {
        match self {
            ColumnBinner::Numeric { edges } => {
                let v = col.numeric_at(row);
                bin_of(edges, v)
            }
            ColumnBinner::Text { top, .. } => match col {
                Column::Text { codes, .. } => {
                    let c = codes[row] as usize;
                    c.min(*top)
                }
                _ => 0,
            },
        }
    }

    /// Allowed-bin mask of a single predicate. Conservative: a bin is
    /// allowed when *some* value in it can satisfy the predicate.
    pub fn allowed(&self, col: &Column, pred: &Predicate) -> Vec<bool> {
        let d = self.domain();
        match self {
            ColumnBinner::Numeric { edges } => {
                let Some(v) = pred.value.as_f64() else {
                    return vec![true; d];
                };
                (0..d)
                    .map(|b| {
                        let lo = edges[b];
                        let hi = edges[b + 1];
                        match pred.op {
                            CmpOp::Eq => lo <= v && v <= hi,
                            CmpOp::Neq => true,
                            CmpOp::Lt => lo < v,
                            CmpOp::Le => lo <= v,
                            CmpOp::Gt => hi > v,
                            CmpOp::Ge => hi >= v,
                        }
                    })
                    .collect()
            }
            ColumnBinner::Text { top, .. } => {
                let Value::Text(s) = &pred.value else {
                    return vec![true; d];
                };
                let code = col.text_code(s).map(|c| (c as usize).min(*top));
                match (pred.op, code) {
                    (CmpOp::Eq, Some(c)) => (0..d).map(|b| b == c).collect(),
                    (CmpOp::Eq, None) => vec![false; d],
                    (CmpOp::Neq, Some(c)) if c < *top => (0..d).map(|b| b != c).collect(),
                    _ => vec![true; d],
                }
            }
        }
    }
}

fn bin_of(edges: &[f64], v: f64) -> usize {
    let bins = edges.len() - 1;
    // Rightmost bin whose lower edge <= v; clamp into range.
    let mut lo = 0usize;
    let mut hi = bins; // edges index
    while lo < hi {
        let mid = (lo + hi) / 2;
        if edges[mid + 1] < v {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo.min(bins - 1)
}

/// Discretizer for a whole table: every column except the primary key.
#[derive(Debug, Clone)]
pub struct TableBinner {
    /// Column positions (into the table schema) that are modeled.
    pub cols: Vec<usize>,
    /// One binner per modeled column.
    pub binners: Vec<ColumnBinner>,
}

impl TableBinner {
    /// Fit over every non-primary-key column.
    pub fn fit(table: &Table, max_bins: usize) -> TableBinner {
        let mut cols = Vec::new();
        let mut binners = Vec::new();
        for (ci, _def) in table.schema.columns.iter().enumerate() {
            if table.schema.primary_key == Some(ci) {
                continue;
            }
            cols.push(ci);
            binners.push(ColumnBinner::fit(table.column(ci), max_bins));
        }
        TableBinner { cols, binners }
    }

    /// Per-variable bin domains.
    pub fn domains(&self) -> Vec<usize> {
        self.binners.iter().map(ColumnBinner::domain).collect()
    }

    /// Discretize every row (or the rows of `sample` if given).
    pub fn bin_rows(&self, table: &Table, sample: Option<&[u32]>) -> Vec<Vec<usize>> {
        let rows: Vec<usize> = match sample {
            Some(s) => s.iter().map(|&r| r as usize).collect(),
            None => (0..table.nrows()).collect(),
        };
        rows.iter()
            .map(|&r| {
                self.cols
                    .iter()
                    .zip(&self.binners)
                    .map(|(&ci, b)| b.bin(table.column(ci), r))
                    .collect()
            })
            .collect()
    }

    /// Allowed-bin masks for a conjunction of predicates on this table.
    /// Returns `None` when a predicate references a column this binner
    /// does not model (e.g. the primary key) — callers fall back.
    pub fn allowed_masks(&self, table: &Table, preds: &[&Predicate]) -> Option<Vec<Vec<bool>>> {
        let mut masks: Vec<Vec<bool>> = self
            .binners
            .iter()
            .map(|b| vec![true; b.domain()])
            .collect();
        for pred in preds {
            let ci = table.schema.column_index(&pred.col.column)?;
            let var = self.cols.iter().position(|&c| c == ci)?;
            let m = self.binners[var].allowed(table.column(ci), pred);
            for (acc, v) in masks[var].iter_mut().zip(m) {
                *acc = *acc && v;
            }
        }
        Some(masks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqo_engine::query::expr::ColRef;
    use lqo_engine::table::TableBuilder;

    fn table() -> Table {
        TableBuilder::new("t")
            .int("id", (0..1000).collect())
            .int("a", (0..1000).map(|i| i % 50).collect())
            .float("f", (0..1000).map(|i| i as f64 / 10.0).collect())
            .text("s", (0..1000).map(|i| format!("v{}", i % 5)).collect())
            .primary_key("id")
            .build()
            .unwrap()
    }

    fn pred(col: &str, op: CmpOp, v: Value) -> Predicate {
        Predicate::new(ColRef::new("t", col), op, v)
    }

    #[test]
    fn skips_primary_key() {
        let t = table();
        let tb = TableBinner::fit(&t, 16);
        assert_eq!(tb.cols, vec![1, 2, 3]);
        assert!(tb.domains().iter().all(|&d| (2..=16).contains(&d)));
    }

    #[test]
    fn bins_partition_rows() {
        let t = table();
        let tb = TableBinner::fit(&t, 8);
        let rows = tb.bin_rows(&t, None);
        assert_eq!(rows.len(), 1000);
        let domains = tb.domains();
        for r in &rows {
            for (v, &d) in r.iter().zip(&domains) {
                assert!(*v < d);
            }
        }
    }

    #[test]
    fn numeric_range_mask_is_conservative_and_tight() {
        let t = table();
        let tb = TableBinner::fit(&t, 10);
        // a < 10 covers 20% of the domain 0..49.
        let p = pred("a", CmpOp::Lt, Value::Int(10));
        let masks = tb.allowed_masks(&t, &[&p]).unwrap();
        let allowed = masks[0].iter().filter(|&&b| b).count();
        assert!(allowed >= 2, "at least the low bins must be allowed");
        assert!(allowed <= 4, "far too many bins allowed: {allowed}");
        // Every row satisfying the predicate must land in an allowed bin.
        let rows = tb.bin_rows(&t, None);
        let a = t.column_by_name("a").unwrap().as_int().unwrap();
        for (i, r) in rows.iter().enumerate() {
            if a[i] < 10 {
                assert!(masks[0][r[0]], "row {i} bin {} not allowed", r[0]);
            }
        }
    }

    #[test]
    fn text_eq_mask_selects_one_bin() {
        let t = table();
        let tb = TableBinner::fit(&t, 16);
        let p = pred("s", CmpOp::Eq, Value::Text("v2".into()));
        let masks = tb.allowed_masks(&t, &[&p]).unwrap();
        assert_eq!(masks[2].iter().filter(|&&b| b).count(), 1);
        // Unknown literal: nothing allowed.
        let p = pred("s", CmpOp::Eq, Value::Text("nope".into()));
        let masks = tb.allowed_masks(&t, &[&p]).unwrap();
        assert_eq!(masks[2].iter().filter(|&&b| b).count(), 0);
    }

    #[test]
    fn unmodeled_column_returns_none() {
        let t = table();
        let tb = TableBinner::fit(&t, 16);
        let p = pred("id", CmpOp::Gt, Value::Int(5));
        assert!(tb.allowed_masks(&t, &[&p]).is_none());
        let p = pred("missing", CmpOp::Gt, Value::Int(5));
        assert!(tb.allowed_masks(&t, &[&p]).is_none());
    }

    #[test]
    fn sampled_binning() {
        let t = table();
        let tb = TableBinner::fit(&t, 8);
        let rows = tb.bin_rows(&t, Some(&[0, 10, 999]));
        assert_eq!(rows.len(), 3);
    }
}
