//! Chaos property tests: under *any* deterministic `FaultPlan` — any
//! seed, any fault rate, every fault kind — the guarded degradation
//! ladder still answers every E1-workload query with exactly the rows of
//! the fault-free run. Cardinalities steer plan choice, never results, so
//! a guard that truly contains its faults is invisible in query output.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;

use lqo_bench_suite::workload::{
    generate_single_table_workload, generate_workload, WorkloadConfig,
};
use lqo_card::estimator::{EstimatorCardSource, FitContext};
use lqo_card::registry::{build_estimator, EstimatorKind};
use lqo_engine::datagen::stats_like;
use lqo_engine::optimizer::CardSource;
use lqo_engine::{Catalog, Executor, Optimizer, SpjQuery, TraditionalCardSource, TrueCardOracle};
use lqo_guard::{
    FaultConfig, FaultKind, FaultPlan, FaultyCardSource, GuardConfig, GuardedCardSource,
};
use lqo_obs::ObsContext;

struct Fixture {
    catalog: Arc<Catalog>,
    queries: Vec<SpjQuery>,
    baseline: Vec<u64>,
    learned: Arc<dyn CardSource>,
    native: Arc<dyn CardSource>,
}

/// Built once per process: a small STATS-like catalog, the E1-style
/// single-table workload plus a few joins, and each query's fault-free
/// answer under native planning.
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        // Injected panics are the point of these tests; the default hook
        // would print a backtrace for every contained fault. Real
        // failures still surface through the test harness.
        std::panic::set_hook(Box::new(|_| {}));
        let catalog = Arc::new(stats_like(80, 0xC4A05).unwrap());
        let fit = FitContext::new(catalog.clone());
        let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
        let mut queries = generate_single_table_workload(
            &catalog,
            "posts",
            &WorkloadConfig {
                num_queries: 12,
                seed: 0xE1,
                ..Default::default()
            },
        );
        queries.extend(generate_workload(
            &catalog,
            &WorkloadConfig {
                num_queries: 8,
                min_tables: 2,
                max_tables: 4,
                seed: 0xE1 ^ 7,
                ..Default::default()
            },
        ));
        let learned: Arc<dyn CardSource> = Arc::new(EstimatorCardSource::new(Arc::from(
            build_estimator(EstimatorKind::Sampling, &fit, &oracle, &[]),
        )));
        let native: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(
            catalog.clone(),
            fit.stats.clone(),
        ));
        let optimizer = Optimizer::with_defaults(&catalog);
        let executor = Executor::with_defaults(&catalog);
        let baseline = queries
            .iter()
            .map(|q| {
                let plan = optimizer.optimize_default(q, native.as_ref()).unwrap().plan;
                executor.execute(q, &plan).unwrap().count
            })
            .collect();
        Fixture {
            catalog,
            queries,
            baseline,
            learned,
            native,
        }
    })
}

/// Run the whole workload through a guarded ladder whose learned rung
/// faults per `cfg`; returns per-query counts (panics on abort — which is
/// exactly what must never happen).
fn run_guarded(fix: &Fixture, cfg: FaultConfig, obs: &ObsContext) -> Vec<u64> {
    let plan = Arc::new(FaultPlan::new(cfg));
    let guarded = GuardedCardSource::new("card", GuardConfig::default(), obs.clone())
        .rung(
            "learned",
            Arc::new(FaultyCardSource::new(fix.learned.clone(), plan.clone())),
        )
        .rung("native", fix.native.clone());
    let optimizer = Optimizer::with_defaults(&fix.catalog);
    let executor = Executor::with_defaults(&fix.catalog);
    fix.queries
        .iter()
        .map(|q| {
            obs.begin_query(&q.to_string());
            guarded.begin_query();
            let choice = optimizer.optimize_default(q, &guarded).unwrap();
            let count = executor.execute(q, &choice.plan).unwrap().count;
            obs.end_query();
            count
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Any seed, any rate, all fault kinds: plans may differ, results may
    /// not, and nothing aborts.
    #[test]
    fn any_fault_plan_preserves_results(
        seed in 0u64..u64::MAX,
        rate_milli in 0u32..=1000,
    ) {
        let fix = fixture();
        let cfg = FaultConfig {
            seed,
            rate: rate_milli as f64 / 1000.0,
            kinds: FaultKind::ALL.to_vec(),
            stall: Duration::from_micros(100),
        };
        let counts = run_guarded(fix, cfg, &ObsContext::disabled());
        prop_assert_eq!(&counts, &fix.baseline);
    }

    /// Both chaos layers at once: the card ladder faulting at any rate
    /// while a parallel-executor worker panics mid-morsel at any
    /// position. The planner degrades rung by rung, the executor degrades
    /// to serial, and the answers still match the fault-free baseline.
    #[test]
    fn worker_and_card_faults_compose(
        seed in 0u64..u64::MAX,
        rate_milli in 0u32..=1000,
        panic_on in 0u64..48,
    ) {
        use lqo_engine::{ExecConfig, ExecMode, ParallelConfig};
        let fix = fixture();
        let fault_cfg = FaultConfig {
            seed,
            rate: rate_milli as f64 / 1000.0,
            kinds: FaultKind::ALL.to_vec(),
            stall: Duration::from_micros(100),
        };
        let plan = Arc::new(FaultPlan::new(fault_cfg));
        let obs = ObsContext::disabled();
        let guarded = GuardedCardSource::new("card", GuardConfig::default(), obs.clone())
            .rung(
                "learned",
                Arc::new(FaultyCardSource::new(fix.learned.clone(), plan)),
            )
            .rung("native", fix.native.clone());
        let optimizer = Optimizer::with_defaults(&fix.catalog);
        let executor = Executor::new(
            &fix.catalog,
            ExecConfig {
                mode: ExecMode::Parallel { threads: 4 },
                parallel: ParallelConfig {
                    morsel_rows: 16,
                    panic_on_morsel: Some(panic_on),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let counts: Vec<u64> = fix
            .queries
            .iter()
            .map(|q| {
                guarded.begin_query();
                let choice = optimizer.optimize_default(q, &guarded).unwrap();
                executor.execute(q, &choice.plan).unwrap().count
            })
            .collect();
        prop_assert_eq!(&counts, &fix.baseline);
    }
}

/// The PR's acceptance criterion, verbatim: a 20% fault rate across every
/// kind, the full workload completes with zero aborts, byte-identical
/// results, and the guard's activity is visible in `lqo.guard.*` metrics
/// and per-query traces.
#[test]
fn twenty_percent_chaos_is_invisible_in_results() {
    let fix = fixture();
    let obs = ObsContext::enabled();
    let cfg = FaultConfig {
        stall: Duration::from_micros(200),
        ..FaultConfig::all_kinds(0x2020, 0.2)
    };
    let counts = run_guarded(fix, cfg, &obs);
    assert_eq!(counts, fix.baseline, "results must be byte-identical");
    let snap = obs.metrics().unwrap().snapshot();
    assert!(snap.counter("lqo.guard.faults").unwrap_or(0) > 0);
    assert!(snap.counter("lqo.guard.fallbacks").unwrap_or(0) > 0);
    let traces = obs.finished_traces();
    assert_eq!(traces.len(), fix.queries.len());
    assert!(
        traces.iter().any(|t| !t.guard.is_empty()),
        "guard events must land on per-query traces"
    );
}
