//! **E5 — performance-regression elimination** (Eraser, \[62\] in the
//! paper): a learned optimizer is trained on one workload and evaluated
//! on a *shifted* workload (unseen shapes), raw vs wrapped in Eraser vs
//! the variance-filtered HyperQO. Reported: retained speedup, tail
//! regression, regression count — the trade-off Eraser targets.

use std::sync::Arc;

use learned_qo::framework::{LearnedOptimizer, OptContext};
use learned_qo::harness::TrainingLoop;
use learned_qo::{bao, hyper_qo, GuardedOptimizer};
use lqo_engine::datagen::imdb_like;
use lqo_obs::ObsContext;

use crate::report::TextTable;
use crate::workload::{generate_workload, WorkloadConfig};

/// E5 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// `imdb_like` scale.
    pub scale: usize,
    /// Training workload size.
    pub train_queries: usize,
    /// Shifted evaluation workload size.
    pub eval_queries: usize,
    /// Training epochs before the shift.
    pub epochs: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            scale: (200.0 * f) as usize,
            train_queries: (24.0 * f) as usize,
            eval_queries: (20.0 * f) as usize,
            epochs: 3,
            seed: 0xE5,
        }
    }
}

/// Train on the training loop, then evaluate one epoch (no learning) on
/// the shifted loop.
fn train_then_evaluate(
    opt: &mut dyn LearnedOptimizer,
    train: &TrainingLoop,
    eval: &TrainingLoop,
    epochs: usize,
) -> learned_qo::harness::EpochStats {
    for _ in 0..epochs {
        train.run_epoch(opt, true);
    }
    eval.run_epoch(opt, false)
}

/// Run E5 and return just the table.
pub fn run(cfg: &Config) -> TextTable {
    run_traced(cfg).0
}

/// Run E5: returns the table plus the observability context the training
/// and evaluation loops traced into (all systems share it).
pub fn run_traced(cfg: &Config) -> (TextTable, ObsContext) {
    let obs = ObsContext::enabled();
    let catalog = Arc::new(imdb_like(cfg.scale.max(40), cfg.seed).unwrap());
    let ctx = OptContext::new(catalog.clone()).with_obs(obs.clone());
    let train_w = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.train_queries.max(4),
            min_tables: 2,
            max_tables: 4,
            seed: cfg.seed ^ 0x60,
            ..Default::default()
        },
    );
    // Shifted workload: different seed, wider joins, more predicates.
    let eval_w = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.eval_queries.max(4),
            min_tables: 3,
            max_tables: 6,
            max_predicates: 4,
            seed: cfg.seed ^ 0x61,
        },
    );
    let train = TrainingLoop::new(ctx.clone(), train_w)
        .unwrap()
        .with_obs(obs.clone());
    let eval = TrainingLoop::new(ctx.clone(), eval_w)
        .unwrap()
        .with_obs(obs.clone());
    let native_total = eval.native_total();

    let mut table = TextTable::new(
        "E5: regression elimination under workload shift",
        &[
            "System",
            "shifted total vs native",
            "regressions",
            "max slowdown",
            "timeouts",
        ],
    );
    let mut systems: Vec<Box<dyn LearnedOptimizer>> = vec![
        Box::new(bao(ctx.clone())),
        Box::new(GuardedOptimizer::new(bao(ctx.clone()))),
        Box::new(GuardedOptimizer::with_stages(bao(ctx.clone()), true, false)),
        Box::new(GuardedOptimizer::with_stages(bao(ctx.clone()), false, true)),
        Box::new(hyper_qo(ctx.clone())),
    ];
    let labels = [
        "Bao (raw)",
        "Bao + Eraser (both stages)",
        "Bao + Eraser (coarse only)",
        "Bao + Eraser (cluster only)",
        "HyperQO (variance filter)",
    ];
    for (sys, label) in systems.iter_mut().zip(labels) {
        let stats = train_then_evaluate(sys.as_mut(), &train, &eval, cfg.epochs);
        table.row(vec![
            label.to_string(),
            format!("{:.2}x", stats.total_work / native_total),
            stats.regressions.to_string(),
            format!("{:.1}x", stats.max_regression),
            stats.timeouts.to_string(),
        ]);
    }
    (table, obs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_e5_guard_bounds_regressions() {
        let cfg = Config {
            scale: 60,
            train_queries: 6,
            eval_queries: 5,
            epochs: 2,
            ..Default::default()
        };
        let table = run(&cfg);
        assert_eq!(table.rows.len(), 5);
        let raw_max: f64 = table.rows[0][3].trim_end_matches('x').parse().unwrap();
        let guarded_max: f64 = table.rows[1][3].trim_end_matches('x').parse().unwrap();
        // The guard must not make the tail dramatically worse.
        assert!(
            guarded_max <= raw_max * 2.0 + 1.0,
            "raw {raw_max} guarded {guarded_max}"
        );
    }
}
