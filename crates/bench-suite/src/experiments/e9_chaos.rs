//! **E9 — chaos: robustness of the guarded optimizer under fault
//! injection.** The survey's deployability argument (and PilotScope's
//! reason to exist) is that a misbehaving learned component must degrade,
//! never crash. This experiment injects deterministic faults (panics,
//! NaN/∞/negative estimates, stalls, wrong-by-10^k estimates) into the
//! learned rungs of a [`GuardedCardSource`] degradation ladder at a sweep
//! of fault rates, runs an E1-style single-table workload plus a join
//! workload end to end, and reports the fallback rate, breaker activity,
//! and the p50/p99 latency the guard adds per query — while asserting the
//! two invariants the guard exists for: zero aborts, and byte-identical
//! query results versus the fault-free run (plans may differ; answers may
//! not).

use std::sync::Arc;
use std::time::Instant;

use lqo_card::estimator::{EstimatorCardSource, FitContext};
use lqo_card::registry::{build_estimator, EstimatorKind};
use lqo_engine::datagen::stats_like;
use lqo_engine::optimizer::CardSource;
use lqo_engine::{Executor, Optimizer, SpjQuery, TraditionalCardSource, TrueCardOracle};
use lqo_guard::{
    FaultConfig, FaultKind, FaultPlan, FaultyCardSource, GuardConfig, GuardedCardSource,
};
use lqo_obs::ObsContext;

use crate::report::TextTable;
use crate::workload::{generate_single_table_workload, generate_workload, WorkloadConfig};

/// One cell of the sweep: a fault rate crossed with a set of fault kinds.
#[derive(Debug, Clone)]
pub struct KindSet {
    /// Label for the report.
    pub name: &'static str,
    /// The kinds injected in this cell.
    pub kinds: Vec<FaultKind>,
}

/// E9 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// `stats_like` scale.
    pub scale: usize,
    /// Single-table (E1-style) queries.
    pub num_single: usize,
    /// Join queries.
    pub num_joins: usize,
    /// Fault rates to sweep.
    pub rates: Vec<f64>,
    /// Fault-kind sets to sweep.
    pub kind_sets: Vec<KindSet>,
    /// Stall duration for [`FaultKind::Stall`], in microseconds.
    pub stall_us: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            scale: (120.0 * f) as usize,
            num_single: (20.0 * f) as usize,
            num_joins: (20.0 * f) as usize,
            rates: vec![0.05, 0.2, 0.5],
            kind_sets: vec![
                KindSet {
                    name: "values",
                    kinds: vec![
                        FaultKind::Nan,
                        FaultKind::Infinite,
                        FaultKind::Negative,
                        FaultKind::WrongBy(4),
                        FaultKind::WrongBy(-4),
                    ],
                },
                KindSet {
                    name: "panic",
                    kinds: vec![FaultKind::Panic],
                },
                KindSet {
                    name: "stall",
                    kinds: vec![FaultKind::Stall],
                },
                KindSet {
                    name: "all",
                    kinds: FaultKind::ALL.to_vec(),
                },
            ],
            stall_us: 500,
            seed: 0xE9,
        }
    }
}

/// Percentile of a sorted slice (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Run the workload through a guarded ladder whose learned rungs fault per
/// `plan`; returns (per-query wall seconds, per-query counts, obs).
fn run_cell(
    catalog: &Arc<lqo_engine::Catalog>,
    queries: &[SpjQuery],
    learned: &Arc<dyn CardSource>,
    hybrid: &Arc<dyn CardSource>,
    native: &Arc<dyn CardSource>,
    fault_cfg: Option<FaultConfig>,
) -> (Vec<f64>, Vec<u64>, ObsContext, Arc<FaultPlan>) {
    let obs = ObsContext::enabled();
    let plan = Arc::new(FaultPlan::new(fault_cfg.unwrap_or_default()));
    let learned_rung: Arc<dyn CardSource> =
        Arc::new(FaultyCardSource::new(learned.clone(), plan.clone()));
    let hybrid_rung: Arc<dyn CardSource> =
        Arc::new(FaultyCardSource::new(hybrid.clone(), plan.clone()));
    let guarded = GuardedCardSource::new("card", GuardConfig::default(), obs.clone())
        .rung("learned", learned_rung)
        .rung("hybrid", hybrid_rung)
        .rung("native", native.clone());
    let optimizer = Optimizer::with_defaults(catalog);
    let executor = Executor::with_defaults(catalog);
    let mut walls = Vec::with_capacity(queries.len());
    let mut counts = Vec::with_capacity(queries.len());
    for q in queries {
        obs.begin_query(&q.to_string());
        guarded.begin_query();
        let start = Instant::now();
        let choice = optimizer
            .optimize_default(q, &guarded)
            .expect("guarded planning never fails");
        let result = executor
            .execute(q, &choice.plan)
            .expect("execution never fails");
        walls.push(start.elapsed().as_secs_f64());
        counts.push(result.count);
        obs.end_query();
    }
    (walls, counts, obs, plan)
}

/// Run E9: sweep fault rates × kinds, asserting zero aborts and
/// byte-identical results; returns the sweep table and the last cell's
/// observability context (the densest one) for trace inspection.
pub fn run_traced(cfg: &Config) -> (TextTable, ObsContext) {
    let catalog = Arc::new(stats_like(cfg.scale.max(40), cfg.seed).unwrap());
    let fit = FitContext::new(catalog.clone());
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));

    // E1-style single-table workload plus a join workload.
    let mut queries = generate_single_table_workload(
        &catalog,
        "posts",
        &WorkloadConfig {
            num_queries: cfg.num_single.max(2),
            seed: cfg.seed ^ 0x11,
            ..Default::default()
        },
    );
    queries.extend(generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.num_joins.max(2),
            min_tables: 2,
            max_tables: 4,
            seed: cfg.seed ^ 0x22,
            ..Default::default()
        },
    ));

    // The ladder's rungs: a learned estimator, a hybrid-ish second
    // opinion, and the trusted native histogram source.
    let learned: Arc<dyn CardSource> = Arc::new(EstimatorCardSource::new(Arc::from(
        build_estimator(EstimatorKind::Sampling, &fit, &oracle, &[]),
    )));
    let hybrid: Arc<dyn CardSource> = Arc::new(EstimatorCardSource::new(Arc::from(
        build_estimator(EstimatorKind::Histogram, &fit, &oracle, &[]),
    )));
    let native: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(
        catalog.clone(),
        fit.stats.clone(),
    ));

    // Fault-free reference run (still guarded, so the guard's own
    // overhead is excluded from "added latency").
    let (base_walls, base_counts, _, _) =
        run_cell(&catalog, &queries, &learned, &hybrid, &native, None);

    let mut table = TextTable::new(
        "E9: chaos — guarded ladder under injected faults (zero aborts, identical results)",
        &[
            "rate",
            "kinds",
            "calls",
            "faults",
            "fallbacks",
            "breaker-opens",
            "p50-added",
            "p99-added",
            "results",
        ],
    );
    let mut last_obs = ObsContext::disabled();
    for rate in &cfg.rates {
        for ks in &cfg.kind_sets {
            let fault_cfg = FaultConfig {
                seed: cfg.seed ^ ((*rate * 1e3) as u64) ^ ((ks.name.len() as u64) << 32),
                rate: *rate,
                kinds: ks.kinds.clone(),
                stall: std::time::Duration::from_micros(cfg.stall_us),
            };
            let (walls, counts, obs, plan) = run_cell(
                &catalog,
                &queries,
                &learned,
                &hybrid,
                &native,
                Some(fault_cfg),
            );
            // The two invariants: no aborts (we got here), no wrong rows.
            let mismatches = counts
                .iter()
                .zip(&base_counts)
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(mismatches, 0, "fault injection changed query results");
            let mut added: Vec<f64> = walls
                .iter()
                .zip(&base_walls)
                .map(|(w, b)| (w - b).max(0.0) * 1e3)
                .collect();
            added.sort_by(f64::total_cmp);
            let snap = obs.metrics().unwrap().snapshot();
            let faults = snap.counter("lqo.guard.faults").unwrap_or(0);
            let fallbacks = snap.counter("lqo.guard.fallbacks").unwrap_or(0);
            let opens = snap.counter("lqo.guard.breaker_opens").unwrap_or(0);
            table.row(vec![
                format!("{rate:.2}"),
                ks.name.to_string(),
                plan.calls().to_string(),
                faults.to_string(),
                format!(
                    "{:.1}%",
                    100.0 * fallbacks as f64 / plan.calls().max(1) as f64
                ),
                opens.to_string(),
                format!("{:.2}ms", percentile(&added, 0.50)),
                format!("{:.2}ms", percentile(&added, 0.99)),
                "identical".to_string(),
            ]);
            last_obs = obs;
        }
    }
    (table, last_obs)
}

/// Run E9 and return just the sweep table.
pub fn run(cfg: &Config) -> TextTable {
    run_traced(cfg).0
}

/// Execution-layer chaos: the same deployability invariant, one layer
/// down. The workload runs under the morsel-driven parallel executor
/// while a worker thread is made to panic mid-morsel at a sweep of fault
/// positions; the executor must degrade to the serial path (visible in
/// `lqo.exec.parallel.degraded` and as `exec:parallel` guard events) and
/// every query must still return the serial reference answer with
/// bit-identical work units.
pub fn run_worker_chaos(cfg: &Config) -> (TextTable, ObsContext) {
    use lqo_engine::{ExecConfig, ExecMode, ParallelConfig};

    let catalog = Arc::new(stats_like(cfg.scale.max(40), cfg.seed).unwrap());
    let fit = FitContext::new(catalog.clone());
    let mut queries = generate_single_table_workload(
        &catalog,
        "posts",
        &WorkloadConfig {
            num_queries: cfg.num_single.max(2),
            seed: cfg.seed ^ 0x11,
            ..Default::default()
        },
    );
    queries.extend(generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.num_joins.max(2),
            min_tables: 2,
            max_tables: 4,
            seed: cfg.seed ^ 0x22,
            ..Default::default()
        },
    ));
    let native: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(
        catalog.clone(),
        fit.stats.clone(),
    ));
    let optimizer = Optimizer::with_defaults(&catalog);
    let plans: Vec<_> = queries
        .iter()
        .map(|q| optimizer.optimize_default(q, native.as_ref()).unwrap().plan)
        .collect();

    let serial = Executor::with_defaults(&catalog);
    let baseline: Vec<(u64, u64)> = queries
        .iter()
        .zip(&plans)
        .map(|(q, p)| {
            let r = serial.execute(q, p).unwrap();
            (r.count, r.work.to_bits())
        })
        .collect();

    let mut table = TextTable::new(
        "E9b: worker-panic chaos — parallel executor degradation (results identical)",
        &[
            "panic-morsel",
            "queries",
            "degraded",
            "guard-events",
            "results",
        ],
    );
    let mut last_obs = ObsContext::disabled();
    for panic_on in [0u64, 3, 9] {
        let obs = ObsContext::enabled();
        let executor = Executor::new(
            &catalog,
            ExecConfig {
                mode: ExecMode::Parallel { threads: 4 },
                parallel: ParallelConfig {
                    morsel_rows: 16,
                    panic_on_morsel: Some(panic_on),
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .with_obs(obs.clone());
        let mut guard_events = 0usize;
        for ((q, p), (count, work_bits)) in queries.iter().zip(&plans).zip(&baseline) {
            obs.begin_query(&q.to_string());
            let r = executor.execute(q, p).expect("degradation, not failure");
            let trace = obs.end_query().expect("trace");
            assert_eq!(r.count, *count, "worker fault changed a result");
            assert_eq!(r.work.to_bits(), *work_bits, "worker fault changed work");
            guard_events += trace
                .guard
                .iter()
                .filter(|g| g.component == "exec:parallel")
                .count();
        }
        let degraded = obs
            .metrics()
            .unwrap()
            .snapshot()
            .counter("lqo.exec.parallel.degraded")
            .unwrap_or(0);
        assert!(degraded > 0, "the injected fault must actually fire");
        assert!(guard_events > 0, "degradation must be visible to the guard");
        table.row(vec![
            panic_on.to_string(),
            queries.len().to_string(),
            degraded.to_string(),
            guard_events.to_string(),
            "identical".to_string(),
        ]);
        last_obs = obs;
    }
    (table, last_obs)
}

/// Re-optimization chaos: faults injected into the estimator the
/// checkpointed executor consults — at the checkpoints themselves and
/// *during re-planning* (the calibrated lookups of the residual
/// enumeration). Every base-table estimate is also poisoned so that
/// checkpoints genuinely trip: each query both re-plans and has its
/// re-planning faulted. The invariants are the chaos archetype's, one
/// level up: zero aborts (a faulted re-plan degrades to continuing the
/// original plan, visible as `degrade:*` checkpoint actions), and every
/// query returns the fault-free serial answer — byte-identical rows when
/// the plan was kept, the identical normalized tuple multiset when a
/// switch happened.
pub fn run_reopt_chaos(cfg: &Config) -> (TextTable, ObsContext) {
    use lqo_engine::optimizer::InjectedCardSource;
    use lqo_engine::{ExecConfig, TableSet};
    use lqo_reopt::{ReoptConfig, ReoptExecutor};

    let catalog = Arc::new(stats_like(cfg.scale.max(40), cfg.seed).unwrap());
    let fit = FitContext::new(catalog.clone());
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: (cfg.num_joins).max(2),
            min_tables: 2,
            max_tables: 4,
            seed: cfg.seed ^ 0x33,
            ..Default::default()
        },
    );
    let native: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(
        catalog.clone(),
        fit.stats.clone(),
    ));
    let optimizer = Optimizer::with_defaults(&catalog);
    let plans: Vec<_> = queries
        .iter()
        .map(|q| optimizer.optimize_default(q, native.as_ref()).unwrap().plan)
        .collect();

    // Fault-free serial reference: raw digests for kept plans, normalized
    // digests for switched ones.
    let serial = Executor::with_defaults(&catalog);
    let baseline: Vec<(u64, u64, u64)> = queries
        .iter()
        .zip(&plans)
        .map(|(q, p)| {
            let (r, rel) = serial.execute_collect(q, p).unwrap();
            (r.count, rel.digest(), rel.normalize().canonical_digest())
        })
        .collect();

    let mut table = TextTable::new(
        "E9c: reopt chaos — faults during re-planning (zero aborts, identical results)",
        &[
            "rate",
            "kinds",
            "queries",
            "checkpoints",
            "triggers",
            "switches",
            "degraded",
            "results",
        ],
    );
    let mut last_obs = ObsContext::disabled();
    for rate in &cfg.rates {
        for ks in &cfg.kind_sets {
            let obs = ObsContext::enabled();
            let fault_plan = Arc::new(FaultPlan::new(FaultConfig {
                seed: cfg.seed ^ ((*rate * 1e3) as u64) ^ ((ks.name.len() as u64) << 40),
                rate: *rate,
                kinds: ks.kinds.clone(),
                stall: std::time::Duration::from_micros(cfg.stall_us),
            }));
            // Poison every base-table estimate so checkpoints trip, then
            // let the fault plan corrupt what re-planning reads.
            let poisoned = InjectedCardSource::new(native.clone());
            for q in &queries {
                for t in 0..q.num_tables() {
                    poisoned.inject(q, TableSet::singleton(t), 1.0);
                }
            }
            let faulty: Arc<dyn CardSource> = Arc::new(FaultyCardSource::new(
                Arc::new(poisoned),
                fault_plan.clone(),
            ));
            let reopt_exec = ReoptExecutor::new(
                &catalog,
                ExecConfig::default(),
                faulty,
                ReoptConfig {
                    q_error_threshold: 4.0,
                    confirm_streak: 1,
                    ..Default::default()
                },
            )
            .with_obs(obs.clone());
            let (mut checkpoints, mut triggers, mut switches, mut degraded) = (0, 0, 0, 0);
            for ((q, p), (count, raw, normalized)) in queries.iter().zip(&plans).zip(&baseline) {
                obs.begin_query(&q.to_string());
                let (r, rel, report) = reopt_exec
                    .execute_collect(q, p)
                    .expect("degradation, not failure");
                obs.end_query();
                assert_eq!(r.count, *count, "reopt chaos changed a result");
                if report.switches == 0 {
                    assert_eq!(rel.digest(), *raw, "kept plan changed rows");
                } else {
                    assert_eq!(
                        rel.normalize().canonical_digest(),
                        *normalized,
                        "switched plan changed the answer"
                    );
                }
                checkpoints += report.checkpoints;
                triggers += report.triggers;
                switches += report.switches;
                degraded += report
                    .events
                    .iter()
                    .filter(|e| e.action.starts_with("degrade:"))
                    .count() as u64;
            }
            table.row(vec![
                format!("{rate:.2}"),
                ks.name.to_string(),
                queries.len().to_string(),
                checkpoints.to_string(),
                triggers.to_string(),
                switches.to_string(),
                degraded.to_string(),
                "identical".to_string(),
            ]);
            last_obs = obs;
        }
    }
    (table, last_obs)
}

/// Incident forensics (E9d): the flight-recorder acceptance run. Each
/// injected fault class — a panicking learned cardinality rung that opens
/// its circuit breaker, a parallel worker dying mid-morsel, a faulted
/// mid-query re-optimization — is aimed at exactly one designated query
/// of the workload while the flight recorder is attached end to end; the
/// recorder must capture exactly one well-formed incident bundle per
/// class (and none on the fault-free control pass), and every query must
/// still return the fault-free answer: zero aborts, byte-identical
/// results. Returns the class table and the captured bundles for the
/// JSONL artifact.
pub fn run_incident_chaos(cfg: &Config) -> (TextTable, Vec<lqo_flight::IncidentBundle>) {
    use lqo_engine::optimizer::InjectedCardSource;
    use lqo_engine::{ExecConfig, ExecMode, ParallelConfig, TableSet};
    use lqo_flight::{FlightConfig, FlightContext};
    use lqo_reopt::{ReoptConfig, ReoptExecutor};

    let catalog = Arc::new(stats_like(cfg.scale.max(40), cfg.seed).unwrap());
    let fit = FitContext::new(catalog.clone());
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
    let mut queries = generate_single_table_workload(
        &catalog,
        "posts",
        &WorkloadConfig {
            num_queries: cfg.num_single.clamp(2, 6),
            seed: cfg.seed ^ 0x11,
            ..Default::default()
        },
    );
    let first_join = queries.len();
    queries.extend(generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.num_joins.clamp(2, 6),
            min_tables: 2,
            max_tables: 4,
            seed: cfg.seed ^ 0x22,
            ..Default::default()
        },
    ));

    let learned: Arc<dyn CardSource> = Arc::new(EstimatorCardSource::new(Arc::from(
        build_estimator(EstimatorKind::Sampling, &fit, &oracle, &[]),
    )));
    let hybrid: Arc<dyn CardSource> = Arc::new(EstimatorCardSource::new(Arc::from(
        build_estimator(EstimatorKind::Histogram, &fit, &oracle, &[]),
    )));
    let native: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(
        catalog.clone(),
        fit.stats.clone(),
    ));
    let plain_optimizer = Optimizer::with_defaults(&catalog);
    let plans: Vec<_> = queries
        .iter()
        .map(|q| {
            plain_optimizer
                .optimize_default(q, native.as_ref())
                .unwrap()
                .plan
        })
        .collect();
    // Fault-free serial reference: count, exact work bits, and both row
    // digests (raw for kept plans, normalized for switched ones).
    let serial = Executor::with_defaults(&catalog);
    let baseline: Vec<(u64, u64, u64, u64)> = queries
        .iter()
        .zip(&plans)
        .map(|(q, p)| {
            let (r, rel) = serial.execute_collect(q, p).unwrap();
            (
                r.count,
                r.work.to_bits(),
                rel.digest(),
                rel.normalize().canonical_digest(),
            )
        })
        .collect();

    let mut table = TextTable::new(
        "E9d: incident forensics — one well-formed bundle per injected fault class",
        &[
            "class",
            "queries",
            "faulty-query",
            "bundles",
            "trigger",
            "bundle-events",
            "results",
        ],
    );
    let mut all_bundles = Vec::new();
    // Per-class epilogue: flush, drain, and hold the recorder to the
    // one-bundle (or, for the control, zero-bundle) contract.
    let finish = |table: &mut TextTable,
                  class: &str,
                  faulty_idx: Option<usize>,
                  flight: &FlightContext,
                  expect_prefix: Option<&str>|
     -> Vec<lqo_flight::IncidentBundle> {
        flight.flush_metrics();
        let bundles = flight.take_bundles();
        if let Some(prefix) = expect_prefix {
            assert_eq!(
                bundles.len(),
                1,
                "{class}: expected exactly one bundle, got {}",
                bundles.len()
            );
            let b = &bundles[0];
            assert!(b.is_well_formed(), "{class}: malformed bundle");
            assert!(
                b.trigger.starts_with(prefix),
                "{class}: unexpected trigger {}",
                b.trigger
            );
            assert!(!b.events.is_empty(), "{class}: bundle carries no events");
            assert!(b.trace.is_some(), "{class}: bundle carries no query trace");
            table.row(vec![
                class.to_string(),
                queries.len().to_string(),
                faulty_idx.map_or_else(|| "-".to_string(), |i| i.to_string()),
                "1".to_string(),
                b.trigger.clone(),
                b.events.len().to_string(),
                "identical".to_string(),
            ]);
        } else {
            assert!(
                bundles.is_empty(),
                "{class}: fault-free control captured {} bundles",
                bundles.len()
            );
            table.row(vec![
                class.to_string(),
                queries.len().to_string(),
                "-".to_string(),
                "0".to_string(),
                "-".to_string(),
                "0".to_string(),
                "identical".to_string(),
            ]);
        }
        bundles
    };

    // -- class 1: card fault → breaker-open bundle ------------------------
    {
        let obs = ObsContext::enabled();
        let flight = FlightContext::new(FlightConfig::default(), obs.clone());
        let clean = GuardedCardSource::new("card", GuardConfig::default(), obs.clone())
            .rung("learned", learned.clone())
            .rung("hybrid", hybrid.clone())
            .rung("native", native.clone())
            .with_flight(flight.clone());
        // Rate-1.0 panics: every learned-rung call fails, so the breaker's
        // consecutive-failure threshold is crossed inside the designated
        // query (a join's enumeration makes well over three guarded calls).
        let fault_plan = Arc::new(FaultPlan::new(FaultConfig {
            seed: cfg.seed ^ 0xA,
            rate: 1.0,
            kinds: vec![FaultKind::Panic],
            stall: std::time::Duration::from_micros(cfg.stall_us),
        }));
        let faulty = GuardedCardSource::new("card", GuardConfig::default(), obs.clone())
            .rung(
                "learned",
                Arc::new(FaultyCardSource::new(learned.clone(), fault_plan.clone()))
                    as Arc<dyn CardSource>,
            )
            .rung(
                "hybrid",
                Arc::new(FaultyCardSource::new(hybrid.clone(), fault_plan.clone())),
            )
            .rung("native", native.clone())
            .with_flight(flight.clone());
        let optimizer = Optimizer::with_defaults(&catalog)
            .with_obs(obs.clone())
            .with_flight(flight.clone());
        let executor = Executor::with_defaults(&catalog)
            .with_obs(obs.clone())
            .with_flight(flight.clone());
        let designated = first_join;
        for (i, q) in queries.iter().enumerate() {
            let guarded = if i == designated { &faulty } else { &clean };
            obs.begin_query(&q.to_string());
            flight.begin_query(&q.to_string());
            guarded.begin_query();
            let choice = optimizer
                .optimize_default(q, guarded)
                .expect("guarded planning never fails");
            let r = executor
                .execute(q, &choice.plan)
                .expect("execution never fails");
            assert_eq!(r.count, baseline[i].0, "card fault changed a result");
            let trace = obs.end_query();
            flight.end_query(trace.as_ref(), None);
        }
        let opens = obs
            .metrics()
            .unwrap()
            .snapshot()
            .counter("lqo.guard.breaker_opens")
            .unwrap_or(0);
        assert!(opens > 0, "the designated card fault must open the breaker");
        all_bundles.extend(finish(
            &mut table,
            "card-fault",
            Some(designated),
            &flight,
            Some("breaker-open:card"),
        ));
    }

    // -- class 2: worker panic → worker-fault bundle ----------------------
    {
        let obs = ObsContext::enabled();
        let flight = FlightContext::new(FlightConfig::default(), obs.clone());
        let parallel_cfg = || ExecConfig {
            mode: ExecMode::Parallel { threads: 4 },
            parallel: ParallelConfig {
                morsel_rows: 16,
                panic_on_morsel: Some(0),
                ..Default::default()
            },
            ..Default::default()
        };
        // Probe (deterministic; no recorder attached) for the first query
        // whose parallel execution actually schedules a morsel — tiny
        // inputs run serially and would never fire the injected panic.
        let designated = (0..queries.len())
            .find(|&i| {
                let probe_obs = ObsContext::enabled();
                let probe = Executor::new(&catalog, parallel_cfg()).with_obs(probe_obs.clone());
                probe
                    .execute(&queries[i], &plans[i])
                    .expect("degradation, not failure");
                probe_obs
                    .metrics()
                    .unwrap()
                    .snapshot()
                    .counter("lqo.exec.parallel.degraded")
                    .unwrap_or(0)
                    > 0
            })
            .expect("some query must exercise the parallel executor");
        let faulty = Executor::new(&catalog, parallel_cfg())
            .with_obs(obs.clone())
            .with_flight(flight.clone());
        let clean = Executor::with_defaults(&catalog)
            .with_obs(obs.clone())
            .with_flight(flight.clone());
        for (i, q) in queries.iter().enumerate() {
            let executor = if i == designated { &faulty } else { &clean };
            obs.begin_query(&q.to_string());
            flight.begin_query(&q.to_string());
            let r = executor
                .execute(q, &plans[i])
                .expect("degradation, not failure");
            assert_eq!(r.count, baseline[i].0, "worker fault changed a result");
            assert_eq!(r.work.to_bits(), baseline[i].1, "worker fault changed work");
            let trace = obs.end_query();
            flight.end_query(trace.as_ref(), None);
        }
        all_bundles.extend(finish(
            &mut table,
            "worker-panic",
            Some(designated),
            &flight,
            Some("worker-fault:"),
        ));
    }

    // -- class 3: reopt fault → reopt-switch / reopt-degrade bundle -------
    {
        let obs = ObsContext::enabled();
        let flight = FlightContext::new(FlightConfig::default(), obs.clone());
        // Poisoned base-table estimates make checkpoints trip; panics at
        // 50% fault some of the re-planning lookups. Probe (same seeds,
        // fresh fault plan per candidate, so the real pass replays the
        // identical fault sequence) for the first join query whose report
        // carries a trigger-class action — a switch or a degrade.
        let make_faulty = |i: usize| -> Arc<dyn CardSource> {
            let poisoned = InjectedCardSource::new(native.clone());
            for t in 0..queries[i].num_tables() {
                poisoned.inject(&queries[i], TableSet::singleton(t), 1.0);
            }
            let fault_plan = Arc::new(FaultPlan::new(FaultConfig {
                seed: cfg.seed ^ 0xD ^ (i as u64),
                rate: 0.5,
                kinds: vec![FaultKind::Panic],
                stall: std::time::Duration::from_micros(cfg.stall_us),
            }));
            Arc::new(FaultyCardSource::new(Arc::new(poisoned), fault_plan))
        };
        let reopt_cfg = ReoptConfig {
            q_error_threshold: 4.0,
            confirm_streak: 1,
            ..Default::default()
        };
        let designated = (first_join..queries.len())
            .find(|&i| {
                let exec = ReoptExecutor::new(
                    &catalog,
                    ExecConfig::default(),
                    make_faulty(i),
                    reopt_cfg.clone(),
                );
                let (_, _, report) = exec
                    .execute_collect(&queries[i], &plans[i])
                    .expect("degradation, not failure");
                report
                    .events
                    .iter()
                    .any(|e| e.action == "switch" || e.action.starts_with("degrade"))
            })
            .expect("some join query must trigger re-optimization");
        let faulty = ReoptExecutor::new(
            &catalog,
            ExecConfig::default(),
            make_faulty(designated),
            reopt_cfg,
        )
        .with_obs(obs.clone())
        .with_flight(flight.clone());
        let clean = Executor::with_defaults(&catalog)
            .with_obs(obs.clone())
            .with_flight(flight.clone());
        for (i, q) in queries.iter().enumerate() {
            obs.begin_query(&q.to_string());
            flight.begin_query(&q.to_string());
            if i == designated {
                let (r, rel, report) = faulty
                    .execute_collect(q, &plans[i])
                    .expect("degradation, not failure");
                assert_eq!(r.count, baseline[i].0, "reopt fault changed a result");
                if report.switches == 0 {
                    assert_eq!(rel.digest(), baseline[i].2, "kept plan changed rows");
                } else {
                    assert_eq!(
                        rel.normalize().canonical_digest(),
                        baseline[i].3,
                        "switched plan changed the answer"
                    );
                }
            } else {
                let r = clean.execute(q, &plans[i]).expect("execution never fails");
                assert_eq!(r.count, baseline[i].0, "clean query changed a result");
            }
            let trace = obs.end_query();
            flight.end_query(trace.as_ref(), None);
        }
        all_bundles.extend(finish(
            &mut table,
            "reopt-fault",
            Some(designated),
            &flight,
            Some("reopt-"),
        ));
    }

    // -- control: no faults → zero bundles --------------------------------
    {
        let obs = ObsContext::enabled();
        let flight = FlightContext::new(FlightConfig::default(), obs.clone());
        let guarded = GuardedCardSource::new("card", GuardConfig::default(), obs.clone())
            .rung("learned", learned.clone())
            .rung("hybrid", hybrid.clone())
            .rung("native", native.clone())
            .with_flight(flight.clone());
        let optimizer = Optimizer::with_defaults(&catalog)
            .with_obs(obs.clone())
            .with_flight(flight.clone());
        let executor = Executor::with_defaults(&catalog)
            .with_obs(obs.clone())
            .with_flight(flight.clone());
        for (i, q) in queries.iter().enumerate() {
            obs.begin_query(&q.to_string());
            flight.begin_query(&q.to_string());
            guarded.begin_query();
            let choice = optimizer
                .optimize_default(q, &guarded)
                .expect("guarded planning never fails");
            let r = executor
                .execute(q, &choice.plan)
                .expect("execution never fails");
            assert_eq!(r.count, baseline[i].0, "control run changed a result");
            let trace = obs.end_query();
            flight.end_query(trace.as_ref(), None);
        }
        assert!(
            flight.events_published() > 0,
            "control still records span events"
        );
        all_bundles.extend(finish(&mut table, "control", None, &flight, None));
    }
    (table, all_bundles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_e9_survives_all_fault_kinds() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // injected panics are loud
        let cfg = Config {
            scale: 60,
            num_single: 4,
            num_joins: 4,
            // One dense cell: at 50% across all kinds, non-stall faults
            // land with near-certainty over the workload's ~50 calls.
            rates: vec![0.5],
            kind_sets: vec![KindSet {
                name: "all",
                kinds: FaultKind::ALL.to_vec(),
            }],
            stall_us: 50,
            ..Default::default()
        };
        let (table, obs) = run_traced(&cfg);
        std::panic::set_hook(prev);
        assert_eq!(table.rows.len(), cfg.kind_sets.len());
        for row in &table.rows {
            assert_eq!(row.last().unwrap(), "identical");
        }
        // The densest cell ("all" kinds at 20%) recorded guard activity.
        let snap = obs.metrics().unwrap().snapshot();
        assert!(snap.counter("lqo.guard.faults").unwrap_or(0) > 0);
        assert!(obs.finished_traces().iter().any(|t| !t.guard.is_empty()));
    }

    #[test]
    fn tiny_reopt_chaos_degrades_to_original_plan() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // injected panics are loud
        let cfg = Config {
            scale: 60,
            num_single: 0,
            num_joins: 5,
            // One dense cell: panics at 50% hammer both the checkpoint
            // estimate lookups and the re-planning enumeration.
            rates: vec![0.5],
            kind_sets: vec![KindSet {
                name: "panic",
                kinds: vec![FaultKind::Panic],
            }],
            stall_us: 50,
            ..Default::default()
        };
        let (table, obs) = run_reopt_chaos(&cfg);
        std::panic::set_hook(prev);
        assert_eq!(table.rows.len(), 1);
        for row in &table.rows {
            assert_eq!(row.last().unwrap(), "identical");
        }
        // The poisoned estimates must actually trip checkpoints, and the
        // injected panics must actually fault some re-plans.
        let row = &table.rows[0];
        assert!(row[4].parse::<u64>().unwrap() > 0, "no triggers: {row:?}");
        assert!(
            row[6].parse::<u64>().unwrap() > 0,
            "no degraded re-plans: {row:?}"
        );
        let snap = obs.metrics().unwrap().snapshot();
        assert!(snap.counter("lqo.reopt.checkpoints").unwrap_or(0) > 0);
        assert!(snap.counter("lqo.reopt.degraded").unwrap_or(0) > 0);
    }

    #[test]
    fn tiny_worker_chaos_degrades_identically() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // injected worker panics are loud
        let cfg = Config {
            scale: 60,
            num_single: 3,
            num_joins: 3,
            ..Default::default()
        };
        let (table, obs) = run_worker_chaos(&cfg);
        std::panic::set_hook(prev);
        assert_eq!(table.rows.len(), 3);
        for row in &table.rows {
            assert_eq!(row.last().unwrap(), "identical");
        }
        assert!(
            obs.metrics()
                .unwrap()
                .snapshot()
                .counter("lqo.exec.parallel.degraded")
                .unwrap_or(0)
                > 0
        );
    }

    #[test]
    fn tiny_incident_chaos_captures_one_bundle_per_class() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // injected panics are loud
        let cfg = Config {
            scale: 60,
            num_single: 2,
            num_joins: 4,
            stall_us: 50,
            ..Default::default()
        };
        let (table, bundles) = run_incident_chaos(&cfg);
        std::panic::set_hook(prev);
        // Three fault classes plus the fault-free control row; the
        // one-bundle-per-class contract is asserted inside the run, so
        // here we check the cross-class shape and the artifact format.
        assert_eq!(table.rows.len(), 4);
        assert_eq!(bundles.len(), 3);
        for b in &bundles {
            assert!(b.is_well_formed());
            assert!(b.trace.is_some());
            assert!(!b.metrics_delta.is_empty());
        }
        let triggers: Vec<&str> = bundles.iter().map(|b| b.trigger.as_str()).collect();
        assert!(triggers.iter().any(|t| t.starts_with("breaker-open:card")));
        assert!(triggers.iter().any(|t| t.starts_with("worker-fault:")));
        assert!(triggers.iter().any(|t| t.starts_with("reopt-")));
        // The bundle log round-trips through the JSONL artifact format.
        let jsonl = lqo_flight::write_bundles_jsonl(&bundles);
        let parsed = lqo_flight::parse_bundles_jsonl(&jsonl).expect("bundles parse back");
        assert_eq!(parsed.len(), bundles.len());
        assert!(parsed.iter().all(|b| b.is_well_formed()));
    }
}
