//! **BENCH-core — the continuous perf-baseline harness.** Learned
//! optimizers live or die on planning overhead (the survey's recurring
//! deployment concern), so the repo carries a pinned canonical workload
//! and a committed baseline (`BENCH_core.json` at the repo root) that
//! every change is compared against. Three scenarios cover the pipeline
//! from opposite ends:
//!
//! * `golden10` — the differential harness's golden 10-query snapshot
//!   (`stats_like(60, 7)`, seed `0x601D_E001`), optimized and executed
//!   serially: the end-to-end plan+execute profile.
//! * `enum_heavy` — wide queries (4–6 tables) that stress DP join
//!   enumeration: planning-dominated, no execution.
//! * `cache_heavy` — the golden templates re-planned for several rounds
//!   through a fresh `LqoCache` per iteration: plan-cache and
//!   inference-memo service dominate.
//! * `batch_heavy` — the golden workload optimized and executed under
//!   `ExecMode::Batched`: the vectorized kernels' end-to-end profile,
//!   pinned against the serial `golden10` row (identical work units by
//!   the byte-identity contract, different wall clock).
//!
//! Each scenario runs `warmup + iterations` times under a sampling-mode
//! [`ProfContext`]; wall clock is summarized as median/p95 while the
//! work-unit and estimator-call columns are **deterministic** (asserted
//! identical across iterations), so the comparator can check them
//! near-exactly and use wall clock only with noise-aware thresholds.
//!
//! The comparator normalizes per-scenario median ratios by a machine
//! factor — the *minimum* ratio across scenarios, clamped to ≥ 1 — so a
//! uniformly slower machine shifts every ratio and fails nothing, while
//! a single scenario regressing > [`REGRESSION_FACTOR`] beyond that
//! factor fails the run. Known limitation (documented in DESIGN.md §13):
//! a regression that slows *every* scenario by the same factor is
//! indistinguishable from machine noise and passes; the committed
//! deterministic columns still catch any work-unit or estimator-call
//! change exactly. Refresh the baseline with `BLESS_BENCH=1`.

use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use lqo_cache::{plan_key, LqoCache, MemoCardSource, OptMemo, PlannedQuery};
use lqo_engine::datagen::stats_like;
use lqo_engine::exec::batch::DEFAULT_BATCH_SIZE;
use lqo_engine::optimizer::CardSource;
use lqo_engine::{
    Catalog, CatalogStats, ExecConfig, ExecMode, Executor, HintSet, Optimizer,
    TraditionalCardSource,
};
use lqo_prof::ProfContext;

use crate::report::TextTable;
use crate::workload::{generate_workload, WorkloadConfig};

/// Schema version stamped on `BENCH_core.json`; readers reject newer
/// versions. The full schema registry lives in DESIGN.md §13.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// A scenario fails the comparison when its median wall-clock ratio
/// exceeds this factor times the machine factor.
pub const REGRESSION_FACTOR: f64 = 1.2;

/// Sampling stride for the harness's profiler (bounded overhead; the
/// <2% bound is asserted by `crates/testkit/tests/prof_overhead.rs`).
pub const PROF_STRIDE: u64 = 64;

/// BENCH-core configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Measured iterations per scenario.
    pub iterations: usize,
    /// Discarded warmup iterations per scenario.
    pub warmup: usize,
    /// Workload passes folded into one timed iteration. Sub-millisecond
    /// iterations are jitter-dominated; a few passes push the medians
    /// into the >1 ms range where a 20% threshold is meaningful. Must
    /// match the committed baseline (it scales the deterministic
    /// columns).
    pub passes: usize,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            // The workload and pass count are pinned (they must match the
            // committed baseline); scale only buys more iterations, i.e.
            // tighter medians.
            iterations: ((9.0 * f) as usize).max(5),
            warmup: if f < 1.0 { 1 } else { 2 },
            passes: 4,
        }
    }
}

/// One scenario's summary in `BENCH_core.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario name (`golden10`, `enum_heavy`, `cache_heavy`,
    /// `batch_heavy`).
    pub name: String,
    /// Measured iterations behind the percentiles.
    pub iterations: usize,
    /// Median wall clock per iteration, nanoseconds.
    pub median_wall_ns: u64,
    /// p95 wall clock per iteration, nanoseconds.
    pub p95_wall_ns: u64,
    /// Deterministic work units per iteration (machine-independent).
    pub work_units: f64,
    /// Cardinality-estimator calls per iteration (machine-independent).
    pub estimator_calls: u64,
}

/// The committed baseline / emitted report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// One entry per scenario, in canonical order.
    pub scenarios: Vec<ScenarioResult>,
}

/// BENCH-core output: the report plus its human-readable artifacts.
#[derive(Debug)]
pub struct Output {
    /// The machine-readable report (what gets blessed).
    pub report: BenchReport,
    /// Rendered summary table.
    pub table: TextTable,
    /// Folded-stack (flamegraph) export of the aggregate profile.
    pub folded: String,
    /// ANSI "top phases" report of the aggregate profile.
    pub top: String,
}

/// Absolute path of the committed baseline at the repo root.
pub fn baseline_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json")
}

/// Parse a `BENCH_core.json` document, rejecting unknown future schema
/// versions.
pub fn parse_report(text: &str) -> Result<BenchReport, String> {
    let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
    let report = BenchReport::from_json_value(&value)
        .ok_or_else(|| "unexpected BENCH_core.json shape".to_string())?;
    if report.schema_version > BENCH_SCHEMA_VERSION {
        return Err(format!(
            "baseline schema_version {} is newer than this reader ({})",
            report.schema_version, BENCH_SCHEMA_VERSION
        ));
    }
    Ok(report)
}

fn percentile_ns(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 * q).ceil() as usize).max(1) - 1;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run one scenario: `warmup` discarded rounds, then `iterations`
/// measured ones. The closure returns the iteration's deterministic work
/// units; estimator calls are read off the profiler's exact counter.
/// Panics if either deterministic column varies across iterations.
fn run_scenario(
    name: &str,
    cfg: &Config,
    prof: &ProfContext,
    mut iter: impl FnMut() -> f64,
) -> ScenarioResult {
    for _ in 0..cfg.warmup {
        iter();
    }
    let mut walls = Vec::with_capacity(cfg.iterations);
    let mut work_units = None;
    let mut est_calls = None;
    for _ in 0..cfg.iterations {
        prof.begin_query(name);
        let est_before = prof.estimator_calls();
        let start = Instant::now();
        let units = iter();
        walls.push(start.elapsed().as_nanos() as u64);
        let calls = prof.estimator_calls() - est_before;
        prof.end_query();
        match (work_units, est_calls) {
            (None, None) => {
                work_units = Some(units);
                est_calls = Some(calls);
            }
            (Some(w), Some(c)) => {
                assert_eq!(
                    f64::to_bits(w),
                    f64::to_bits(units),
                    "{name}: work units varied across iterations"
                );
                assert_eq!(c, calls, "{name}: estimator calls varied across iterations");
            }
            _ => unreachable!(),
        }
    }
    walls.sort_unstable();
    ScenarioResult {
        name: name.to_string(),
        iterations: cfg.iterations,
        median_wall_ns: percentile_ns(&walls, 0.5),
        p95_wall_ns: percentile_ns(&walls, 0.95),
        work_units: work_units.unwrap(),
        estimator_calls: est_calls.unwrap(),
    }
}

fn base_card(catalog: &Arc<Catalog>) -> Arc<dyn CardSource> {
    let stats = Arc::new(CatalogStats::build_default(catalog));
    Arc::new(TraditionalCardSource::new(catalog.clone(), stats))
}

/// Run the canonical workload and produce the report plus its artifacts.
pub fn run(cfg: &Config) -> Output {
    let catalog = Arc::new(stats_like(60, 7).expect("catalog"));
    let card = base_card(&catalog);
    // Pinned recipes: golden10 matches the differential harness's golden
    // workload snapshot; enum_heavy widens the join count to stress DP.
    let golden = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 10,
            min_tables: 2,
            max_tables: 3,
            max_predicates: 3,
            seed: 0x601D_E001,
        },
    );
    let wide = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: 4,
            min_tables: 4,
            max_tables: 6,
            max_predicates: 2,
            seed: 0xE1_0001,
        },
    );
    assert_eq!(golden.len(), 10, "golden workload must stay pinned at 10");
    assert!(
        !wide.is_empty(),
        "enumeration workload generated no queries"
    );

    let prof = ProfContext::sampling(PROF_STRIDE);
    let hints = HintSet::default();

    let golden10 = run_scenario("golden10", cfg, &prof, || {
        let optimizer = Optimizer::with_defaults(&catalog).with_prof(prof.clone());
        let executor = Executor::with_defaults(&catalog).with_prof(prof.clone());
        let mut units = 0.0;
        for _pass in 0..cfg.passes {
            for q in &golden {
                let choice = optimizer.optimize(q, card.as_ref(), &hints).expect("plan");
                units += executor.execute(q, &choice.plan).expect("execute").work;
            }
        }
        units
    });
    let enum_heavy = run_scenario("enum_heavy", cfg, &prof, || {
        let optimizer = Optimizer::with_defaults(&catalog).with_prof(prof.clone());
        let mut units = 0.0;
        for _pass in 0..cfg.passes {
            for q in &wide {
                units += optimizer
                    .optimize(q, card.as_ref(), &hints)
                    .expect("plan")
                    .cost;
            }
        }
        units
    });
    let cache_heavy = run_scenario("cache_heavy", cfg, &prof, || {
        // A fresh cache every iteration keeps the scenario deterministic:
        // round 0 populates, rounds 1+ are served from plan cache.
        let cache = Arc::new(LqoCache::default());
        let memo: Arc<dyn CardSource> = Arc::new(MemoCardSource::new(card.clone(), cache.clone()));
        let optimizer = Optimizer::with_defaults(&catalog).with_prof(prof.clone());
        let source = card.name().to_string();
        let mut units = 0.0;
        for _round in 0..4 * cfg.passes {
            for q in &golden {
                let key = plan_key(q, &hints.label(), &source);
                let cost = match cache.plan_lookup(&key) {
                    Some(hit) => hit.cost,
                    None => {
                        let opt_memo = OptMemo::new(memo.as_ref());
                        let choice = optimizer.optimize(q, &opt_memo, &hints).expect("plan");
                        cache.plan_store(
                            key,
                            PlannedQuery {
                                plan: choice.plan.clone(),
                                cost: choice.cost,
                            },
                            &source,
                        );
                        choice.cost
                    }
                };
                units += cost;
            }
        }
        units
    });

    let batch_heavy = run_scenario("batch_heavy", cfg, &prof, || {
        let optimizer = Optimizer::with_defaults(&catalog).with_prof(prof.clone());
        let executor = Executor::new(
            &catalog,
            ExecConfig {
                mode: ExecMode::Batched {
                    batch_size: DEFAULT_BATCH_SIZE,
                },
                ..Default::default()
            },
        )
        .with_prof(prof.clone());
        let mut units = 0.0;
        for _pass in 0..cfg.passes {
            for q in &golden {
                let choice = optimizer.optimize(q, card.as_ref(), &hints).expect("plan");
                units += executor.execute(q, &choice.plan).expect("execute").work;
            }
        }
        units
    });

    let report = BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        scenarios: vec![golden10, enum_heavy, cache_heavy, batch_heavy],
    };
    let mut table = TextTable::new(
        "BENCH-core: canonical perf baseline",
        &[
            "scenario",
            "iters",
            "median_ms",
            "p95_ms",
            "work_units",
            "estimator_calls",
        ],
    );
    for s in &report.scenarios {
        table.row(vec![
            s.name.clone(),
            s.iterations.to_string(),
            format!("{:.3}", s.median_wall_ns as f64 / 1e6),
            format!("{:.3}", s.p95_wall_ns as f64 / 1e6),
            format!("{:.1}", s.work_units),
            s.estimator_calls.to_string(),
        ]);
    }
    let total = prof.total();
    Output {
        report,
        table,
        folded: total.to_folded(),
        top: lqo_prof::render_top(&total, 20),
    }
}

/// The comparator's verdict.
#[derive(Debug, Clone)]
pub struct BenchComparison {
    /// Minimum per-scenario wall ratio, clamped to ≥ 1 — the uniform
    /// slowdown attributed to the machine rather than the code.
    pub machine_factor: f64,
    /// One human-readable line per scenario.
    pub lines: Vec<String>,
    /// Confirmed regressions; empty means the comparison passes.
    pub regressions: Vec<String>,
}

/// Compare a current report against the committed baseline. Wall clock
/// is judged per scenario against `REGRESSION_FACTOR ×` the machine
/// factor; deterministic columns are judged near-exactly. Errors (not
/// regressions) signal an unusable pair: scenario sets differ or a
/// median is zero.
pub fn compare(baseline: &BenchReport, current: &BenchReport) -> Result<BenchComparison, String> {
    let mut ratios = Vec::with_capacity(current.scenarios.len());
    for cur in &current.scenarios {
        let base = baseline
            .scenarios
            .iter()
            .find(|s| s.name == cur.name)
            .ok_or_else(|| format!("scenario {} missing from the baseline", cur.name))?;
        if base.median_wall_ns == 0 {
            return Err(format!("baseline median for {} is zero", cur.name));
        }
        ratios.push((
            cur,
            base,
            cur.median_wall_ns as f64 / base.median_wall_ns as f64,
        ));
    }
    if ratios.is_empty() {
        return Err("empty report".to_string());
    }
    let machine_factor = ratios
        .iter()
        .map(|(_, _, r)| *r)
        .fold(f64::INFINITY, f64::min)
        .max(1.0);
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for (cur, base, ratio) in ratios {
        let threshold = REGRESSION_FACTOR * machine_factor;
        lines.push(format!(
            "{}: wall ratio {ratio:.3} (threshold {threshold:.3}), \
             work {} -> {}, estimator calls {} -> {}",
            cur.name, base.work_units, cur.work_units, base.estimator_calls, cur.estimator_calls
        ));
        if ratio > threshold {
            regressions.push(format!(
                "{}: median wall regressed {ratio:.2}x vs baseline \
                 (> {threshold:.2}x after machine normalization)",
                cur.name
            ));
        }
        let denom = base.work_units.abs().max(1.0);
        if ((cur.work_units - base.work_units) / denom).abs() > 1e-9 {
            regressions.push(format!(
                "{}: deterministic work units changed {} -> {} \
                 (bless the baseline if intended)",
                cur.name, base.work_units, cur.work_units
            ));
        }
        if cur.estimator_calls != base.estimator_calls {
            regressions.push(format!(
                "{}: estimator calls changed {} -> {} (bless the baseline if intended)",
                cur.name, base.estimator_calls, cur.estimator_calls
            ));
        }
    }
    Ok(BenchComparison {
        machine_factor,
        lines,
        regressions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(walls: &[u64]) -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            scenarios: walls
                .iter()
                .enumerate()
                .map(|(i, &w)| ScenarioResult {
                    name: format!("s{i}"),
                    iterations: 5,
                    median_wall_ns: w,
                    p95_wall_ns: w * 2,
                    work_units: 100.0 * (i + 1) as f64,
                    estimator_calls: 10 * (i + 1) as u64,
                })
                .collect(),
        }
    }

    #[test]
    fn identical_reports_pass() {
        let base = report(&[1_000_000, 2_000_000, 3_000_000]);
        let cmp = compare(&base, &base.clone()).unwrap();
        assert_eq!(cmp.machine_factor, 1.0);
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    }

    #[test]
    fn injected_25pct_slowdown_in_one_scenario_fails() {
        let base = report(&[1_000_000, 2_000_000, 3_000_000]);
        let mut cur = base.clone();
        cur.scenarios[1].median_wall_ns = (base.scenarios[1].median_wall_ns as f64 * 1.25) as u64;
        let cmp = compare(&base, &cur).unwrap();
        assert_eq!(cmp.regressions.len(), 1, "{:?}", cmp.regressions);
        assert!(cmp.regressions[0].contains("s1"));
    }

    #[test]
    fn uniform_slowdown_is_machine_noise() {
        let base = report(&[1_000_000, 2_000_000, 3_000_000]);
        let mut cur = base.clone();
        for s in &mut cur.scenarios {
            s.median_wall_ns = (s.median_wall_ns as f64 * 1.6) as u64;
        }
        let cmp = compare(&base, &cur).unwrap();
        assert!((cmp.machine_factor - 1.6).abs() < 1e-9);
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    }

    #[test]
    fn improvement_does_not_raise_the_bar() {
        // One scenario gets 2x faster; the unchanged ones must not be
        // flagged as relative regressions.
        let base = report(&[1_000_000, 2_000_000, 3_000_000]);
        let mut cur = base.clone();
        cur.scenarios[0].median_wall_ns /= 2;
        let cmp = compare(&base, &cur).unwrap();
        assert_eq!(cmp.machine_factor, 1.0);
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    }

    #[test]
    fn deterministic_columns_are_checked_exactly() {
        let base = report(&[1_000_000, 2_000_000]);
        let mut cur = base.clone();
        cur.scenarios[0].estimator_calls += 1;
        cur.scenarios[1].work_units += 0.5;
        let cmp = compare(&base, &cur).unwrap();
        assert_eq!(cmp.regressions.len(), 2, "{:?}", cmp.regressions);
    }

    #[test]
    fn mismatched_scenario_sets_error() {
        let base = report(&[1_000_000]);
        let mut cur = report(&[1_000_000]);
        cur.scenarios[0].name = "renamed".into();
        assert!(compare(&base, &cur).is_err());
    }

    #[test]
    fn future_schema_versions_are_rejected() {
        let mut r = report(&[1]);
        r.schema_version = BENCH_SCHEMA_VERSION + 1;
        let text = serde_json::to_string(&r).unwrap();
        assert!(parse_report(&text).is_err());
        r.schema_version = BENCH_SCHEMA_VERSION;
        let text = serde_json::to_string(&r).unwrap();
        assert_eq!(parse_report(&text).unwrap().scenarios.len(), 1);
    }

    #[test]
    fn harness_is_deterministic_and_profiled() {
        let cfg = Config {
            iterations: 2,
            warmup: 0,
            passes: 1,
        };
        let out = run(&cfg);
        assert_eq!(out.report.schema_version, BENCH_SCHEMA_VERSION);
        let names: Vec<&str> = out
            .report
            .scenarios
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(
            names,
            ["golden10", "enum_heavy", "cache_heavy", "batch_heavy"]
        );
        for s in &out.report.scenarios {
            // run_scenario asserts cross-iteration determinism internally;
            // here we check the columns are populated and sane.
            assert!(s.work_units > 0.0, "{}", s.name);
            assert!(s.estimator_calls > 0, "{}", s.name);
            assert!(s.median_wall_ns > 0 && s.p95_wall_ns >= s.median_wall_ns);
        }
        // The plan cache absorbed the repeat rounds: cache_heavy re-plans
        // the golden templates once, not four times.
        let g = &out.report.scenarios[0];
        let c = &out.report.scenarios[2];
        assert!(
            c.estimator_calls < 2 * g.estimator_calls,
            "cache ineffective"
        );
        // The byte-identity contract reaches into the perf baseline:
        // batched execution of the same golden workload accounts the
        // same bit-exact work units as the serial golden10 row.
        let b = &out.report.scenarios[3];
        assert_eq!(
            g.work_units.to_bits(),
            b.work_units.to_bits(),
            "batch_heavy work diverged from golden10"
        );
        // The aggregate profile exports round-trip and carry the
        // enumeration subtree.
        assert!(out.folded.contains("enumerate"));
        assert!(lqo_prof::parse_folded(&out.folded).is_some());
        assert!(out.top.contains("enumerate"));
        // The fresh report compares clean against itself.
        let cmp = compare(&out.report, &out.report).unwrap();
        assert!(cmp.regressions.is_empty());
    }

    #[test]
    fn committed_baseline_is_well_formed() {
        let path = baseline_path();
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("missing committed baseline {path}: {e}"));
        let report = parse_report(&text).expect("baseline parses");
        assert!(report.scenarios.len() >= 3, "need >=3 scenarios");
        for s in &report.scenarios {
            assert!(s.median_wall_ns > 0, "{}", s.name);
            assert!(s.p95_wall_ns >= s.median_wall_ns, "{}", s.name);
            assert!(s.work_units > 0.0, "{}", s.name);
            assert!(s.estimator_calls > 0, "{}", s.name);
        }
    }
}
