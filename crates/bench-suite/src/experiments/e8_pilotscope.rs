//! **E8 — PilotScope middleware** (paper §3): middleware overhead
//! (console-routed execution vs direct executor), the cardinality
//! driver's batch injection, and the Bao/Lero drivers steering the engine
//! through push/pull — the paper's demonstration, measured.

use std::sync::Arc;
use std::time::Instant;

use learned_qo::framework::OptContext;
use lqo_card::data_driven::DeepDbEstimator;
use lqo_card::estimator::FitContext;
use lqo_engine::datagen::stats_like;
use lqo_engine::{Executor, Optimizer, TrueCardOracle};
use lqo_obs::ObsContext;
use lqo_pilot::{BaoDriver, CardDriver, EngineInteractor, LeroDriver, PilotConsole};

use crate::report::TextTable;
use crate::workload::{generate_workload, WorkloadConfig};

/// E8 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// `stats_like` scale.
    pub scale: usize,
    /// Workload size.
    pub num_queries: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            scale: (120.0 * f) as usize,
            num_queries: (30.0 * f) as usize,
            seed: 0xE8,
        }
    }
}

/// Run E8.
pub fn run(cfg: &Config) -> TextTable {
    run_traced(cfg).0
}

/// Run E8 with query-lifecycle observability enabled on the console.
/// Returns the result table and the observability context holding one
/// trace per console-routed query (parse/plan/execute phases, driver
/// attribution, per-operator est-vs-true cardinalities) plus the metrics
/// registry.
pub fn run_traced(cfg: &Config) -> (TextTable, ObsContext) {
    let obs = ObsContext::enabled();
    let catalog = Arc::new(stats_like(cfg.scale.max(40), cfg.seed).unwrap());
    let ctx = OptContext::new(catalog.clone());
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.num_queries.max(4),
            max_tables: 4,
            seed: cfg.seed ^ 0x90,
            ..Default::default()
        },
    );
    let sqls: Vec<String> = queries.iter().map(|q| q.to_string()).collect();

    let mut table = TextTable::new(
        "E8: PilotScope middleware — overhead and drivers",
        &["Mode", "total-work", "wall-ms", "overhead", "notes"],
    );

    // Direct execution: optimizer + executor, no middleware.
    let t0 = Instant::now();
    let mut direct_work = 0.0;
    {
        let optimizer = Optimizer::with_defaults(&catalog);
        let executor = Executor::with_defaults(&catalog);
        for q in &queries {
            let plan = optimizer
                .optimize_default(q, ctx.card.as_ref())
                .unwrap()
                .plan;
            direct_work += executor.execute(q, &plan).unwrap().work;
        }
    }
    let direct_ms = t0.elapsed().as_secs_f64() * 1e3;
    table.row(vec![
        "direct (no middleware)".into(),
        format!("{direct_work:.0}"),
        format!("{direct_ms:.1}"),
        "1.00x".into(),
        "-".into(),
    ]);

    // Console without a driver: pure middleware overhead.
    let interactor = Arc::new(EngineInteractor::new(catalog.clone()));
    let mut console = PilotConsole::new(interactor).with_obs(obs.clone());
    let t0 = Instant::now();
    let mut console_work = 0.0;
    for sql in &sqls {
        console_work += console.execute_sql(sql).unwrap().work;
    }
    let console_ms = t0.elapsed().as_secs_f64() * 1e3;
    table.row(vec![
        "console (no driver)".into(),
        format!("{console_work:.0}"),
        format!("{console_ms:.1}"),
        format!("{:.2}x", console_ms / direct_ms.max(1e-9)),
        "same plans as direct".into(),
    ]);

    // Cardinality driver: DeepDB injected per sub-query.
    let fit = FitContext {
        catalog: ctx.catalog.clone(),
        stats: ctx.stats.clone(),
    };
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
    let est = Arc::new(DeepDbEstimator::fit(&fit, oracle));
    let mut card_driver = CardDriver::new(est);
    card_driver.max_subquery = 4;
    console.register_driver(Box::new(card_driver)).unwrap();
    console.start_driver(Some("learned-cardinality")).unwrap();
    let t0 = Instant::now();
    let mut card_work = 0.0;
    for sql in &sqls {
        card_work += console.execute_sql(sql).unwrap().work;
    }
    let card_ms = t0.elapsed().as_secs_f64() * 1e3;
    table.row(vec![
        "card driver (DeepDB)".into(),
        format!("{card_work:.0}"),
        format!("{card_ms:.1}"),
        format!("{:.2}x", card_ms / direct_ms.max(1e-9)),
        "batch sub-query injection".into(),
    ]);

    // Bao and Lero drivers, with one background update between passes.
    console
        .register_driver(Box::new(BaoDriver::new(ctx.clone())))
        .unwrap();
    console
        .register_driver(Box::new(LeroDriver::new(ctx.clone())))
        .unwrap();
    for name in ["bao", "lero"] {
        console.start_driver(Some(name)).unwrap();
        let t0 = Instant::now();
        let mut work = 0.0;
        for sql in &sqls {
            work += console.execute_sql(sql).unwrap().work;
        }
        console.tick(); // background model update
        for sql in &sqls {
            work += console.execute_sql(sql).unwrap().work;
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        table.row(vec![
            format!("{name} driver (2 passes)"),
            format!("{work:.0}"),
            format!("{ms:.1}"),
            format!("{:.2}x", ms / (2.0 * direct_ms).max(1e-9)),
            "push/pull steering + learning".into(),
        ]);
    }
    (table, obs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_traces_cover_the_query_lifecycle() {
        let cfg = Config {
            scale: 50,
            num_queries: 4,
            ..Default::default()
        };
        let (_, obs) = run_traced(&cfg);
        let traces = obs.finished_traces();
        // 4 queries x (console + card driver + 2x bao + 2x lero) passes.
        assert_eq!(traces.len(), 24);
        for t in &traces {
            let phases: Vec<&str> = t.phases.iter().map(|p| p.name.as_str()).collect();
            assert!(phases.contains(&"parse"), "phases {phases:?}");
            assert!(phases.contains(&"execute"), "phases {phases:?}");
            assert!(!t.exec.operators.is_empty(), "no operator events");
            assert!(t.outcome.is_some(), "no outcome");
        }
        // Driver attribution: the card/bao/lero passes carry their names,
        // with per-query decision latency.
        for name in ["learned-cardinality", "bao", "lero"] {
            let steered: Vec<_> = traces
                .iter()
                .filter(|t| t.driver.as_deref() == Some(name))
                .collect();
            assert!(!steered.is_empty(), "no traces for driver {name}");
            assert!(steered.iter().all(|t| t.decision_ns.is_some()));
        }
        // Estimated-vs-true cardinalities: the optimizer-planned passes
        // record card lookups that join_estimates matched to operators.
        assert!(
            traces.iter().any(|t| t
                .exec
                .operators
                .iter()
                .any(|o| o.est_rows.is_some() && o.q_error().is_some())),
            "no operator with both estimated and true cardinality"
        );
        // The whole log survives a JSONL round trip.
        let jsonl = lqo_obs::export::write_jsonl(&traces);
        assert_eq!(lqo_obs::export::parse_jsonl(&jsonl).expect("parse"), traces);
        // Execution metrics accumulated in the shared registry.
        let snap = obs.metrics().unwrap().snapshot();
        assert_eq!(snap.counter("lqo.pilot.queries"), Some(24));
        assert!(snap.counter("lqo.card.lookups").unwrap_or(0) > 0);
        assert!(snap.histogram("lqo.exec.work_units").is_some());
    }

    #[test]
    fn tiny_e8_console_matches_direct_work() {
        let cfg = Config {
            scale: 50,
            num_queries: 4,
            ..Default::default()
        };
        let table = run(&cfg);
        assert_eq!(table.rows.len(), 5);
        // The driverless console executes the same plans: identical work.
        let direct: f64 = table.rows[0][1].parse().unwrap();
        let console: f64 = table.rows[1][1].parse().unwrap();
        assert!(
            (direct - console).abs() < 1e-6,
            "direct {direct} console {console}"
        );
    }
}
