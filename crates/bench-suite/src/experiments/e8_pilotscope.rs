//! **E8 — PilotScope middleware** (paper §3): middleware overhead
//! (console-routed execution vs direct executor), the cardinality
//! driver's batch injection, and the Bao/Lero drivers steering the engine
//! through push/pull — the paper's demonstration, measured.

use std::sync::Arc;
use std::time::Instant;

use learned_qo::framework::OptContext;
use lqo_card::data_driven::DeepDbEstimator;
use lqo_card::estimator::FitContext;
use lqo_engine::datagen::stats_like;
use lqo_engine::{Executor, Optimizer, TrueCardOracle};
use lqo_pilot::{BaoDriver, CardDriver, EngineInteractor, LeroDriver, PilotConsole};

use crate::report::TextTable;
use crate::workload::{generate_workload, WorkloadConfig};

/// E8 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// `stats_like` scale.
    pub scale: usize,
    /// Workload size.
    pub num_queries: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            scale: (120.0 * f) as usize,
            num_queries: (30.0 * f) as usize,
            seed: 0xE8,
        }
    }
}

/// Run E8.
pub fn run(cfg: &Config) -> TextTable {
    let catalog = Arc::new(stats_like(cfg.scale.max(40), cfg.seed).unwrap());
    let ctx = OptContext::new(catalog.clone());
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.num_queries.max(4),
            max_tables: 4,
            seed: cfg.seed ^ 0x90,
            ..Default::default()
        },
    );
    let sqls: Vec<String> = queries.iter().map(|q| q.to_string()).collect();

    let mut table = TextTable::new(
        "E8: PilotScope middleware — overhead and drivers",
        &["Mode", "total-work", "wall-ms", "overhead", "notes"],
    );

    // Direct execution: optimizer + executor, no middleware.
    let t0 = Instant::now();
    let mut direct_work = 0.0;
    {
        let optimizer = Optimizer::with_defaults(&catalog);
        let executor = Executor::with_defaults(&catalog);
        for q in &queries {
            let plan = optimizer
                .optimize_default(q, ctx.card.as_ref())
                .unwrap()
                .plan;
            direct_work += executor.execute(q, &plan).unwrap().work;
        }
    }
    let direct_ms = t0.elapsed().as_secs_f64() * 1e3;
    table.row(vec![
        "direct (no middleware)".into(),
        format!("{direct_work:.0}"),
        format!("{direct_ms:.1}"),
        "1.00x".into(),
        "-".into(),
    ]);

    // Console without a driver: pure middleware overhead.
    let interactor = Arc::new(EngineInteractor::new(catalog.clone()));
    let mut console = PilotConsole::new(interactor);
    let t0 = Instant::now();
    let mut console_work = 0.0;
    for sql in &sqls {
        console_work += console.execute_sql(sql).unwrap().work;
    }
    let console_ms = t0.elapsed().as_secs_f64() * 1e3;
    table.row(vec![
        "console (no driver)".into(),
        format!("{console_work:.0}"),
        format!("{console_ms:.1}"),
        format!("{:.2}x", console_ms / direct_ms.max(1e-9)),
        "same plans as direct".into(),
    ]);

    // Cardinality driver: DeepDB injected per sub-query.
    let fit = FitContext {
        catalog: ctx.catalog.clone(),
        stats: ctx.stats.clone(),
    };
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
    let est = Arc::new(DeepDbEstimator::fit(&fit, oracle));
    let mut card_driver = CardDriver::new(est);
    card_driver.max_subquery = 4;
    console.register_driver(Box::new(card_driver)).unwrap();
    console.start_driver(Some("learned-cardinality")).unwrap();
    let t0 = Instant::now();
    let mut card_work = 0.0;
    for sql in &sqls {
        card_work += console.execute_sql(sql).unwrap().work;
    }
    let card_ms = t0.elapsed().as_secs_f64() * 1e3;
    table.row(vec![
        "card driver (DeepDB)".into(),
        format!("{card_work:.0}"),
        format!("{card_ms:.1}"),
        format!("{:.2}x", card_ms / direct_ms.max(1e-9)),
        "batch sub-query injection".into(),
    ]);

    // Bao and Lero drivers, with one background update between passes.
    console
        .register_driver(Box::new(BaoDriver::new(ctx.clone())))
        .unwrap();
    console
        .register_driver(Box::new(LeroDriver::new(ctx.clone())))
        .unwrap();
    for name in ["bao", "lero"] {
        console.start_driver(Some(name)).unwrap();
        let t0 = Instant::now();
        let mut work = 0.0;
        for sql in &sqls {
            work += console.execute_sql(sql).unwrap().work;
        }
        console.tick(); // background model update
        for sql in &sqls {
            work += console.execute_sql(sql).unwrap().work;
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        table.row(vec![
            format!("{name} driver (2 passes)"),
            format!("{work:.0}"),
            format!("{ms:.1}"),
            format!("{:.2}x", ms / (2.0 * direct_ms).max(1e-9)),
            "push/pull steering + learning".into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_e8_console_matches_direct_work() {
        let cfg = Config {
            scale: 50,
            num_queries: 4,
            ..Default::default()
        };
        let table = run(&cfg);
        assert_eq!(table.rows.len(), 5);
        // The driverless console executes the same plans: identical work.
        let direct: f64 = table.rows[0][1].parse().unwrap();
        let console: f64 = table.rows[1][1].parse().unwrap();
        assert!(
            (direct - console).abs() < 1e-6,
            "direct {direct} console {console}"
        );
    }
}
