//! **E13 — mid-query re-optimization on a poisoned-estimate replay.**
//! The robustness case for checkpointed re-optimization (Kabra-DeWitt
//! style, the survey's "what is next" for runtime adaptivity): a learned
//! estimator that has gone stale hands the optimizer a confidently wrong
//! cardinality, the optimizer picks a bad join order, and without
//! runtime feedback the query pays the full price. This experiment
//! replays a join workload in which exactly one query's estimates are
//! deliberately poisoned (its per-table cardinalities forced to 1):
//!
//! * `opt` — the plan chosen with accurate estimates, executed plainly:
//!   the quality ceiling.
//! * `stale` — the plan chosen under the poisoned estimates, executed
//!   plainly: what a non-adaptive system is stuck with.
//! * `reopt` — the same stale plan executed under the checkpointed
//!   re-optimizing executor, which observes the misestimate at the first
//!   materialization checkpoint, re-plans the residual within the
//!   [`lqo_guard::ReoptGuard`] budget, and splices the recovery in.
//!
//! Reported per query: work units under all three, the bounded
//! re-planning work against its budget, recovery latency (wall time of
//! the reopt run), and end-state plan quality (`work_reopt / work_opt`).
//! Asserted: every run returns the same answer (byte-identical rows for
//! kept plans, identical normalized tuple multisets after a switch),
//! untriggered queries are bit-identical to their plain execution, and
//! re-planning work never exceeds the guard cap. The binary additionally
//! asserts the headline: the re-optimized poisoned query beats the stale
//! plan.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use lqo_engine::datagen::stats_like;
use lqo_engine::optimizer::{CardSource, InjectedCardSource};
use lqo_engine::{
    Catalog, ExecConfig, Executor, Optimizer, PhysNode, TableSet, TraditionalCardSource,
};
use lqo_reopt::{ReoptConfig, ReoptExecutor};

use crate::report::TextTable;
use crate::workload::{generate_workload, WorkloadConfig};

/// E13 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// `stats_like` scale.
    pub scale: usize,
    /// Join queries in the replay.
    pub num_queries: usize,
    /// Re-optimization policy for the replay.
    pub reopt: ReoptConfig,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            scale: (120.0 * f).max(60.0) as usize,
            num_queries: (12.0 * f).max(6.0) as usize,
            reopt: ReoptConfig {
                q_error_threshold: 4.0,
                confirm_streak: 1,
                ..Default::default()
            },
            seed: 0xE13,
        }
    }
}

/// One JSONL record: one replayed query.
#[derive(Debug, Clone, Serialize)]
pub struct QueryPoint {
    /// Query index in the replay.
    pub index: usize,
    /// Number of base tables.
    pub tables: usize,
    /// Whether this is the deliberately poisoned query.
    pub poisoned: bool,
    /// Count-star answer (identical across all three runs).
    pub count: u64,
    /// Work units of the accurate-estimate plan, executed plainly.
    pub work_opt: f64,
    /// Work units of the (possibly stale) session plan, executed plainly.
    pub work_stale: f64,
    /// Work units of the session plan under the checkpointed executor
    /// (includes the re-planning charge).
    pub work_reopt: f64,
    /// Re-planning work spent at checkpoints.
    pub replan_work: f64,
    /// The guard's re-planning work cap.
    pub replan_budget: f64,
    /// Checkpoints evaluated.
    pub checkpoints: u64,
    /// Confirmed triggers.
    pub triggers: u64,
    /// Sub-plan switches.
    pub switches: u64,
    /// Wall time of the reopt run, seconds — the recovery latency.
    pub wall_reopt_s: f64,
    /// `work_stale / work_opt`: how bad the stale plan is.
    pub stale_ratio: f64,
    /// `work_reopt / work_opt`: end-state plan quality (1.0 = ceiling).
    pub reopt_ratio: f64,
}

/// E13 output.
#[derive(Debug, Serialize)]
pub struct Output {
    /// Rendered summary table.
    pub table: TextTable,
    /// One record per replayed query.
    pub points: Vec<QueryPoint>,
    /// Index of the poisoned query in `points`.
    pub poisoned_index: usize,
}

/// Run the replay. Panics if any run changes an answer, if an unpoisoned
/// query is not bit-identical under checkpointing, if re-planning work
/// exceeds the guard cap, or if no replayed query could be poisoned into
/// a distinct stale plan.
pub fn run(cfg: &Config) -> Output {
    let catalog: Arc<Catalog> = Arc::new(stats_like(cfg.scale, cfg.seed).expect("catalog"));
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.num_queries.max(2),
            min_tables: 2,
            max_tables: 4,
            max_predicates: 3,
            seed: cfg.seed,
        },
    );
    assert!(!queries.is_empty(), "empty replay workload");

    let stats = Arc::new(lqo_engine::CatalogStats::build_default(&catalog));
    let accurate: Arc<dyn CardSource> =
        Arc::new(TraditionalCardSource::new(catalog.clone(), stats));
    let optimizer = Optimizer::with_defaults(&catalog);
    let accurate_plans: Vec<PhysNode> = queries
        .iter()
        .map(|q| {
            optimizer
                .optimize_default(q, accurate.as_ref())
                .unwrap()
                .plan
        })
        .collect();

    // The session estimator: accurate everywhere except one query whose
    // per-table estimates are forced to 1 row — the "stale model" that
    // confidently hands the optimizer garbage. Pick the first query the
    // poison actually steers to a different plan.
    let session = InjectedCardSource::new(accurate.clone());
    let mut poisoned_index = None;
    for (i, q) in queries.iter().enumerate() {
        if q.num_tables() < 3 {
            continue;
        }
        for t in 0..q.num_tables() {
            session.inject(q, TableSet::singleton(t), 1.0);
        }
        let stale = optimizer.optimize_default(q, &session).unwrap().plan;
        if stale.fingerprint() != accurate_plans[i].fingerprint() {
            poisoned_index = Some(i);
            break;
        }
        session.clear();
    }
    let poisoned_index = poisoned_index.expect("no query could be poisoned into a stale plan");
    let session: Arc<dyn CardSource> = Arc::new(session);

    let session_plans: Vec<PhysNode> = queries
        .iter()
        .map(|q| {
            optimizer
                .optimize_default(q, session.as_ref())
                .unwrap()
                .plan
        })
        .collect();

    let plain = Executor::with_defaults(&catalog);
    let reopt_exec = ReoptExecutor::new(
        &catalog,
        ExecConfig::default(),
        session.clone(),
        cfg.reopt.clone(),
    );
    let budget = cfg.reopt.guard.replan_work_cap;

    let mut points = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let (opt_r, opt_rel) = plain.execute_collect(q, &accurate_plans[i]).unwrap();
        let (stale_r, stale_rel) = plain.execute_collect(q, &session_plans[i]).unwrap();
        let start = Instant::now();
        let (reopt_r, reopt_rel, report) =
            reopt_exec.execute_collect(q, &session_plans[i]).unwrap();
        let wall_reopt_s = start.elapsed().as_secs_f64();

        // Answer identity across all three runs.
        assert_eq!(opt_r.count, stale_r.count, "stale plan changed a result");
        assert_eq!(opt_r.count, reopt_r.count, "reopt changed a result");
        assert_eq!(
            stale_rel.normalize().canonical_digest(),
            opt_rel.normalize().canonical_digest(),
            "stale plan changed the tuple multiset"
        );
        if report.switches == 0 {
            assert_eq!(
                reopt_rel.digest(),
                stale_rel.digest(),
                "kept plan must be byte-identical to its plain execution"
            );
        } else {
            assert_eq!(
                reopt_rel.normalize().canonical_digest(),
                opt_rel.normalize().canonical_digest(),
                "switched plan changed the tuple multiset"
            );
        }
        // Untriggered checkpointing must be invisible. (An unpoisoned
        // query may still trip a checkpoint — the base estimator's own
        // q-errors are real — in which case the only legitimate delta is
        // the bounded re-planning charge, and the row-level digest checks
        // above already held.)
        if report.triggers == 0 {
            assert_eq!(
                reopt_r.work.to_bits(),
                stale_r.work.to_bits(),
                "untriggered query {i} was perturbed by checkpointing"
            );
        }
        assert!(
            report.replan_work <= budget + 1e-9,
            "re-planning work {} exceeded the guard cap {budget}",
            report.replan_work
        );

        points.push(QueryPoint {
            index: i,
            tables: q.num_tables(),
            poisoned: i == poisoned_index,
            count: opt_r.count,
            work_opt: opt_r.work,
            work_stale: stale_r.work,
            work_reopt: reopt_r.work,
            replan_work: report.replan_work,
            replan_budget: budget,
            checkpoints: report.checkpoints,
            triggers: report.triggers,
            switches: report.switches,
            wall_reopt_s,
            stale_ratio: stale_r.work / opt_r.work.max(1e-12),
            reopt_ratio: reopt_r.work / opt_r.work.max(1e-12),
        });
    }

    let mut table = TextTable::new(
        "E13: mid-query re-optimization — poisoned-estimate replay (answers identical)",
        &[
            "query",
            "tables",
            "poisoned",
            "work_opt",
            "work_stale",
            "work_reopt",
            "replan_work",
            "switches",
            "stale_ratio",
            "reopt_ratio",
        ],
    );
    for p in &points {
        table.row(vec![
            p.index.to_string(),
            p.tables.to_string(),
            if p.poisoned { "yes" } else { "" }.to_string(),
            format!("{:.0}", p.work_opt),
            format!("{:.0}", p.work_stale),
            format!("{:.0}", p.work_reopt),
            format!("{:.0}", p.replan_work),
            p.switches.to_string(),
            format!("{:.2}", p.stale_ratio),
            format!("{:.2}", p.reopt_ratio),
        ]);
    }
    Output {
        table,
        points,
        poisoned_index,
    }
}

/// Render the per-query records as JSONL for
/// `results/exp_e13_reopt.jsonl`.
pub fn to_jsonl(points: &[QueryPoint]) -> String {
    let mut out = String::new();
    for p in points {
        out.push_str(&serde_json::to_string(p).expect("serialize point"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_query_recovers_within_budget() {
        let cfg = Config {
            scale: 80,
            num_queries: 6,
            ..Default::default()
        };
        let out = run(&cfg); // answer identity asserted inside
        assert_eq!(out.points.len(), 6);
        let poisoned = &out.points[out.poisoned_index];
        assert!(poisoned.poisoned);
        assert!(poisoned.triggers > 0, "poison never tripped a checkpoint");
        assert!(
            poisoned.work_reopt < poisoned.work_stale,
            "re-optimization did not beat the stale plan: {} vs {}",
            poisoned.work_reopt,
            poisoned.work_stale
        );
        assert!(poisoned.replan_work > 0.0);
        assert!(poisoned.replan_work <= poisoned.replan_budget);
        // Untriggered queries are untouched.
        for p in out.points.iter().filter(|p| !p.poisoned && p.triggers == 0) {
            assert_eq!(p.work_reopt.to_bits(), p.work_stale.to_bits());
        }
        let jsonl = to_jsonl(&out.points);
        assert_eq!(jsonl.lines().count(), 6);
        assert!(jsonl.contains("\"poisoned\":true"));
    }
}
