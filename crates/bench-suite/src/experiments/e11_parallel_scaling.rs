//! **E11 — parallel scaling: speedup curves for the morsel-driven
//! executor.** Balsa/Bao-style training loops execute thousands of plans
//! per epoch; the survey's cost argument for learned optimizers collapses
//! if the execution feedback itself is the bottleneck. This experiment
//! runs a scan-heavy workload (single-table scans plus 2-table hash
//! joins over a scaled `stats_like` catalog) through `ExecMode::Serial`
//! and `ExecMode::Parallel` at a sweep of thread counts, verifying byte
//! identity at every cell (counts, bit-exact work, relation digests)
//! and reporting wall-clock speedup and worker utilization. Artifacts:
//! one JSONL record per thread count in `results/exp_e11_scaling.jsonl`.
//!
//! On hosts with at least four cores the binary asserts ≥2× speedup at
//! four threads; on smaller machines (including 1-CPU CI containers) the
//! timing assertion is skipped — byte identity is always asserted.

use std::time::Instant;

use serde::Serialize;

use lqo_engine::datagen::stats_like;
use lqo_engine::{Catalog, ExecConfig, ExecMode, Executor, ParallelConfig, PhysNode, SpjQuery};
use lqo_obs::ObsContext;

use crate::report::TextTable;
use crate::workload::{generate_single_table_workload, generate_workload, WorkloadConfig};

/// E11 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// `stats_like` scale (rows per table ∝ scale).
    pub scale: usize,
    /// Single-table scan queries (the scan-heavy core of the workload).
    pub num_scans: usize,
    /// 2-table join queries.
    pub num_joins: usize,
    /// Thread counts to sweep (serial is always measured first).
    pub thread_counts: Vec<usize>,
    /// Morsel size in rows.
    pub morsel_rows: usize,
    /// Timed repetitions per mode; the minimum wall time is reported.
    pub repeats: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            scale: (2_000.0 * f) as usize,
            num_scans: (24.0 * f).max(4.0) as usize,
            num_joins: (8.0 * f).max(2.0) as usize,
            thread_counts: vec![1, 2, 4, 8],
            morsel_rows: 4096,
            repeats: 3,
            seed: 0xE11,
        }
    }
}

/// One JSONL record: the measured scaling at one thread count.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingPoint {
    /// Worker threads (`0` encodes the serial reference run).
    pub threads: usize,
    /// Execution mode label (`serial` or `parallel:N`).
    pub mode: String,
    /// Best-of-`repeats` wall time for the whole workload, seconds.
    pub wall_s: f64,
    /// `serial_wall / wall` (1.0 for the serial row).
    pub speedup: f64,
    /// Queries executed.
    pub queries: usize,
    /// Total result rows across the workload (identical in every row).
    pub total_count: u64,
    /// Morsels dispatched (0 for serial).
    pub morsels: u64,
    /// Mean worker utilization across queries, when observed.
    pub utilization: f64,
}

/// E11 output: the scaling table plus per-mode records.
#[derive(Debug, Serialize)]
pub struct Output {
    /// Rendered summary table.
    pub table: TextTable,
    /// One record per measured mode, serial first.
    pub points: Vec<ScalingPoint>,
    /// Hardware parallelism the run observed (for interpreting speedups).
    pub host_threads: usize,
}

fn workload(catalog: &Catalog, cfg: &Config) -> Vec<(SpjQuery, PhysNode)> {
    let mut pairs: Vec<(SpjQuery, PhysNode)> = Vec::new();
    for q in generate_single_table_workload(
        catalog,
        "posts",
        &WorkloadConfig {
            num_queries: cfg.num_scans,
            seed: cfg.seed,
            ..Default::default()
        },
    ) {
        pairs.push((q, PhysNode::scan(0)));
    }
    for q in generate_workload(
        catalog,
        &WorkloadConfig {
            num_queries: cfg.num_joins,
            min_tables: 2,
            max_tables: 2,
            max_predicates: 2,
            seed: cfg.seed ^ 0x5EED,
        },
    ) {
        let plan = PhysNode::join(
            lqo_engine::JoinAlgo::Hash,
            PhysNode::scan(0),
            PhysNode::scan(1),
        );
        pairs.push((q, plan));
    }
    pairs
}

struct ModeRun {
    wall_s: f64,
    total_count: u64,
    digest: u64,
    work_bits: Vec<u64>,
    morsels: u64,
    utilization: f64,
}

fn run_mode(
    catalog: &Catalog,
    pairs: &[(SpjQuery, PhysNode)],
    cfg: &Config,
    mode: ExecMode,
) -> ModeRun {
    let mut best = f64::INFINITY;
    let mut total_count = 0;
    let mut digest = 0u64;
    let mut work_bits = Vec::new();
    let mut morsels = 0;
    let mut util_sum = 0.0;
    let mut util_n = 0u64;
    for _ in 0..cfg.repeats {
        let obs = ObsContext::enabled();
        let ex = Executor::new(
            catalog,
            ExecConfig {
                mode,
                parallel: ParallelConfig {
                    morsel_rows: cfg.morsel_rows,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .with_obs(obs.clone());
        total_count = 0;
        digest = 0;
        work_bits.clear();
        let start = Instant::now();
        for (q, plan) in pairs {
            obs.begin_query(&q.to_string());
            let (r, rel) = ex.execute_collect(q, plan).expect("workload executes");
            obs.end_query();
            total_count += r.count;
            // Fold per-query digests so one scalar fingerprints the run.
            digest = digest.rotate_left(7) ^ rel.digest();
            work_bits.push(r.work.to_bits());
        }
        best = best.min(start.elapsed().as_secs_f64());
        let snap = obs.metrics().expect("obs enabled").snapshot();
        morsels = snap.counter("lqo.exec.parallel.morsels").unwrap_or(0);
        if let Some(u) = snap.gauge("lqo.exec.parallel.utilization") {
            util_sum += u;
            util_n += 1;
        }
    }
    ModeRun {
        wall_s: best,
        total_count,
        digest,
        work_bits,
        morsels,
        utilization: if util_n > 0 {
            util_sum / util_n as f64
        } else {
            0.0
        },
    }
}

/// Run the scaling sweep. Panics if any parallel cell diverges from the
/// serial reference in counts, digests, or bit-exact work.
pub fn run(cfg: &Config) -> Output {
    let catalog = stats_like(cfg.scale, 0xE11).expect("catalog");
    let pairs = workload(&catalog, cfg);
    assert!(!pairs.is_empty(), "empty workload");

    let serial = run_mode(&catalog, &pairs, cfg, ExecMode::Serial);
    let mut table = TextTable::new(
        "E11: morsel-driven parallel scaling (byte-identity verified per cell)",
        &["mode", "wall_s", "speedup", "morsels", "utilization"],
    );
    let mut points = vec![ScalingPoint {
        threads: 0,
        mode: "serial".into(),
        wall_s: serial.wall_s,
        speedup: 1.0,
        queries: pairs.len(),
        total_count: serial.total_count,
        morsels: 0,
        utilization: 0.0,
    }];
    table.row(vec![
        "serial".into(),
        format!("{:.4}", serial.wall_s),
        "1.00".into(),
        "0".into(),
        "-".into(),
    ]);

    for &threads in &cfg.thread_counts {
        let run = run_mode(&catalog, &pairs, cfg, ExecMode::Parallel { threads });
        assert_eq!(
            run.total_count, serial.total_count,
            "count divergence at {threads} threads"
        );
        assert_eq!(
            run.digest, serial.digest,
            "digest divergence at {threads} threads"
        );
        assert_eq!(
            run.work_bits, serial.work_bits,
            "work-unit divergence at {threads} threads"
        );
        let speedup = serial.wall_s / run.wall_s.max(1e-12);
        table.row(vec![
            format!("parallel:{threads}"),
            format!("{:.4}", run.wall_s),
            format!("{speedup:.2}"),
            run.morsels.to_string(),
            format!("{:.2}", run.utilization),
        ]);
        points.push(ScalingPoint {
            threads,
            mode: format!("parallel:{threads}"),
            wall_s: run.wall_s,
            speedup,
            queries: pairs.len(),
            total_count: run.total_count,
            morsels: run.morsels,
            utilization: run.utilization,
        });
    }

    Output {
        table,
        points,
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Render the per-mode records as JSONL for `results/exp_e11_scaling.jsonl`.
pub fn to_jsonl(points: &[ScalingPoint]) -> String {
    let mut out = String::new();
    for p in points {
        out.push_str(&serde_json::to_string(p).expect("serialize point"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_byte_identical_and_reports_points() {
        let cfg = Config {
            scale: 200,
            num_scans: 3,
            num_joins: 2,
            thread_counts: vec![2, 4],
            morsel_rows: 64,
            repeats: 1,
            seed: 0xE11,
        };
        let out = run(&cfg);
        assert_eq!(out.points.len(), 3);
        assert_eq!(out.points[0].mode, "serial");
        assert!(out
            .points
            .iter()
            .all(|p| p.total_count == out.points[0].total_count));
        assert!(out.points[1].morsels > 0, "parallel runs dispatch morsels");
        let jsonl = to_jsonl(&out.points);
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"mode\":\"parallel:2\""));
    }
}
