//! **E12 — plan & inference caching on a repeated-template workload.**
//! Learned-optimizer inference is the deployment cost the survey keeps
//! returning to: Neo-style planners evaluate a model per candidate
//! subplan, so a workload that re-issues the same query templates pays
//! the same inference over and over. This experiment plans a fixed set
//! of templates for several rounds under three configurations —
//! `uncached` (estimator called directly), `memo` (cross-query
//! inference cache via `MemoCardSource` + per-optimization `OptMemo`),
//! and `plan+memo` (full `LqoCache`, reusing whole plans) — counting
//! every `CardSource::cardinality` call at the base estimator.
//!
//! Byte identity is asserted at every cell: all three configurations
//! must pick the identical plan (fingerprint) for every template in
//! every round, which is the cache's observational-transparency
//! contract. Artifacts: one JSONL record per (mode, round) in
//! `results/exp_e12_cache.jsonl` — the speedup curve — plus the summary
//! table; the binary asserts a ≥5× reduction in estimator calls.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use lqo_cache::{plan_key, LqoCache, MemoCardSource, OptMemo, PlannedQuery};
use lqo_engine::datagen::stats_like;
use lqo_engine::optimizer::CardSource;
use lqo_engine::{
    Catalog, CatalogStats, HintSet, Optimizer, SpjQuery, TableSet, TraditionalCardSource,
};

use crate::report::TextTable;
use crate::workload::{generate_workload, WorkloadConfig};

/// E12 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// `stats_like` scale (rows per table ∝ scale).
    pub scale: usize,
    /// Distinct query templates in the workload.
    pub num_templates: usize,
    /// How many times the whole template set is re-planned.
    pub rounds: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            scale: (1_000.0 * f).max(200.0) as usize,
            num_templates: (10.0 * f).max(4.0) as usize,
            // The reduction factor is bounded by the round count (warm
            // rounds cost zero estimator calls), so keep at least 8
            // rounds even at small scale for a comfortable >=5x margin.
            rounds: (8.0 * f).max(8.0) as usize,
            seed: 0xE12,
        }
    }
}

/// One JSONL record: one planning round under one configuration.
#[derive(Debug, Clone, Serialize)]
pub struct RoundPoint {
    /// Configuration label: `uncached`, `memo`, or `plan+memo`.
    pub mode: String,
    /// Round index (0-based; round 0 is the cold round).
    pub round: usize,
    /// Wall time of this round's planning, seconds.
    pub wall_s: f64,
    /// `uncached_wall / wall` for the same round (1.0 for uncached).
    pub speedup: f64,
    /// Base-estimator calls in this round.
    pub card_calls: u64,
    /// Cumulative base-estimator calls up to and including this round.
    pub card_calls_cum: u64,
    /// Cumulative inference-cache hits (0 for uncached).
    pub card_hits: u64,
    /// Cumulative plan-cache hits (0 unless `plan+memo`).
    pub plan_hits: u64,
}

/// E12 output.
#[derive(Debug, Serialize)]
pub struct Output {
    /// Rendered summary table.
    pub table: TextTable,
    /// One record per (mode, round), uncached first.
    pub points: Vec<RoundPoint>,
    /// Total estimator calls without any caching.
    pub uncached_calls: u64,
    /// Total estimator calls under the full cache.
    pub cached_calls: u64,
    /// `uncached_calls / cached_calls` — the headline reduction.
    pub reduction: f64,
}

/// Counts every call that reaches the base estimator.
struct CountingCardSource {
    inner: Arc<dyn CardSource>,
    calls: AtomicU64,
}

impl CountingCardSource {
    fn new(inner: Arc<dyn CardSource>) -> CountingCardSource {
        CountingCardSource {
            inner,
            calls: AtomicU64::new(0),
        }
    }

    fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl CardSource for CountingCardSource {
    fn cardinality(&self, query: &SpjQuery, set: TableSet) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.cardinality(query, set)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

enum Mode {
    Uncached,
    Memo,
    PlanMemo,
}

impl Mode {
    fn label(&self) -> &'static str {
        match self {
            Mode::Uncached => "uncached",
            Mode::Memo => "memo",
            Mode::PlanMemo => "plan+memo",
        }
    }
}

struct ModeRun {
    points: Vec<RoundPoint>,
    /// `fingerprints[round][template]`.
    fingerprints: Vec<Vec<String>>,
    total_calls: u64,
}

fn run_mode(catalog: &Arc<Catalog>, queries: &[SpjQuery], cfg: &Config, mode: &Mode) -> ModeRun {
    let stats = Arc::new(CatalogStats::build_default(catalog));
    let base: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(catalog.clone(), stats));
    let counting = Arc::new(CountingCardSource::new(base));
    let cache = Arc::new(LqoCache::default());
    let card: Arc<dyn CardSource> = match mode {
        Mode::Uncached => counting.clone(),
        Mode::Memo | Mode::PlanMemo => Arc::new(MemoCardSource::new(
            counting.clone() as Arc<dyn CardSource>,
            cache.clone(),
        )),
    };
    let optimizer = Optimizer::with_defaults(catalog);
    let hints = HintSet::default();
    let source = counting.name().to_string();

    let mut points = Vec::with_capacity(cfg.rounds);
    let mut fingerprints = Vec::with_capacity(cfg.rounds);
    let mut calls_before_round;
    for round in 0..cfg.rounds {
        calls_before_round = counting.calls();
        let start = Instant::now();
        let mut round_fps = Vec::with_capacity(queries.len());
        for q in queries {
            let plan = match mode {
                Mode::Uncached => optimizer.optimize(q, card.as_ref(), &hints).unwrap().plan,
                Mode::Memo => {
                    let memo = OptMemo::new(card.as_ref());
                    optimizer.optimize(q, &memo, &hints).unwrap().plan
                }
                Mode::PlanMemo => {
                    let key = plan_key(q, &hints.label(), &source);
                    match cache.plan_lookup(&key) {
                        Some(hit) => hit.plan,
                        None => {
                            let memo = OptMemo::new(card.as_ref());
                            let choice = optimizer.optimize(q, &memo, &hints).unwrap();
                            cache.plan_store(
                                key,
                                PlannedQuery {
                                    plan: choice.plan.clone(),
                                    cost: choice.cost,
                                },
                                &source,
                            );
                            choice.plan
                        }
                    }
                }
            };
            round_fps.push(plan.fingerprint());
        }
        let wall_s = start.elapsed().as_secs_f64();
        let cache_stats = cache.stats();
        points.push(RoundPoint {
            mode: mode.label().to_string(),
            round,
            wall_s,
            speedup: 1.0, // filled in against the uncached reference
            card_calls: counting.calls() - calls_before_round,
            card_calls_cum: counting.calls(),
            card_hits: cache_stats.card_hits,
            plan_hits: cache_stats.plan_hits,
        });
        fingerprints.push(round_fps);
    }
    ModeRun {
        points,
        fingerprints,
        total_calls: counting.calls(),
    }
}

/// Run the cache sweep. Panics if any configuration's plan for any
/// template in any round differs from the uncached reference — caching
/// must be observationally transparent.
pub fn run(cfg: &Config) -> Output {
    let catalog = Arc::new(stats_like(cfg.scale, 0xE12).expect("catalog"));
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.num_templates,
            min_tables: 2,
            max_tables: 3,
            max_predicates: 3,
            seed: cfg.seed,
        },
    );
    assert!(!queries.is_empty(), "empty template set");

    let uncached = run_mode(&catalog, &queries, cfg, &Mode::Uncached);
    let mut all_points = uncached.points.clone();
    let mut cached_calls = 0;
    for mode in [Mode::Memo, Mode::PlanMemo] {
        let mut run = run_mode(&catalog, &queries, cfg, &mode);
        assert_eq!(
            run.fingerprints,
            uncached.fingerprints,
            "{} diverged from the uncached plans",
            mode.label()
        );
        for (p, reference) in run.points.iter_mut().zip(&uncached.points) {
            p.speedup = reference.wall_s / p.wall_s.max(1e-12);
        }
        if matches!(mode, Mode::PlanMemo) {
            cached_calls = run.total_calls;
        }
        all_points.extend(run.points);
    }

    let reduction = uncached.total_calls as f64 / (cached_calls.max(1)) as f64;
    let mut table = TextTable::new(
        "E12: plan & inference caching (plans byte-identical in every cell)",
        &[
            "mode",
            "round",
            "wall_s",
            "speedup",
            "card_calls",
            "plan_hits",
        ],
    );
    for p in &all_points {
        table.row(vec![
            p.mode.clone(),
            p.round.to_string(),
            format!("{:.6}", p.wall_s),
            format!("{:.2}", p.speedup),
            p.card_calls.to_string(),
            p.plan_hits.to_string(),
        ]);
    }
    Output {
        table,
        points: all_points,
        uncached_calls: uncached.total_calls,
        cached_calls,
        reduction,
    }
}

/// Render the per-round records as JSONL for `results/exp_e12_cache.jsonl`.
pub fn to_jsonl(points: &[RoundPoint]) -> String {
    let mut out = String::new();
    for p in points {
        out.push_str(&serde_json::to_string(p).expect("serialize point"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_cuts_estimator_calls_without_changing_plans() {
        let cfg = Config {
            scale: 200,
            num_templates: 4,
            rounds: 6,
            seed: 0xE12,
        };
        let out = run(&cfg); // plan identity asserted inside
        assert_eq!(out.points.len(), 3 * cfg.rounds);
        assert!(
            out.reduction >= 5.0,
            "expected >=5x estimator-call reduction, got {:.2}x \
             ({} uncached vs {} cached)",
            out.reduction,
            out.uncached_calls,
            out.cached_calls
        );
        // The warm plan-cache rounds make no estimator calls at all.
        let warm = out
            .points
            .iter()
            .filter(|p| p.mode == "plan+memo" && p.round > 0);
        for p in warm {
            assert_eq!(p.card_calls, 0, "round {} re-ran the estimator", p.round);
        }
        let jsonl = to_jsonl(&out.points);
        assert_eq!(jsonl.lines().count(), 3 * cfg.rounds);
        assert!(jsonl.contains("\"mode\":\"plan+memo\""));
    }
}
