//! One module per reproduced table/figure. Each exposes a `Config` with a
//! scaled `Default` and a `run` function returning printable
//! [`crate::TextTable`]s; the `src/bin/exp_*` binaries are thin wrappers.

pub mod bench_core;
pub mod e10_drift_watch;
pub mod e11_parallel_scaling;
pub mod e12_cache;
pub mod e13_reopt;
pub mod e14_batch;
pub mod e1_single_table;
pub mod e2_design_space;
pub mod e3_injection;
pub mod e4_optimizers;
pub mod e5_regression;
pub mod e6_join_order;
pub mod e7_cost_models;
pub mod e8_pilotscope;
pub mod e9_chaos;
pub mod t1_taxonomy;
