//! **T1 — the paper's Table 1, executed.** Every implemented estimator
//! with its taxonomy category and applied ML technique (the paper's
//! columns), extended with measured accuracy, model size and costs on a
//! common STATS-like workload.

use std::sync::Arc;
use std::time::Instant;

use lqo_card::estimator::{label_workload, FitContext};
use lqo_card::registry::{build_estimator, EstimatorKind};
use lqo_engine::datagen::stats_like;
use lqo_engine::TrueCardOracle;

use crate::metrics::QErrorSummary;
use crate::report::TextTable;
use crate::workload::{generate_workload, WorkloadConfig};

/// T1 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// `stats_like` scale (base users).
    pub scale: usize,
    /// Training queries.
    pub train_queries: usize,
    /// Evaluation queries.
    pub eval_queries: usize,
    /// Label sub-queries up to this many tables.
    pub max_subquery: usize,
    /// Estimators to run.
    pub kinds: Vec<EstimatorKind>,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            scale: (200.0 * f) as usize,
            train_queries: (60.0 * f) as usize,
            eval_queries: (30.0 * f) as usize,
            max_subquery: 3,
            kinds: EstimatorKind::ALL.to_vec(),
            seed: 0x71,
        }
    }
}

/// Run T1 and return the taxonomy table.
pub fn run(cfg: &Config) -> TextTable {
    let catalog = Arc::new(stats_like(cfg.scale, cfg.seed).unwrap());
    let ctx = FitContext::new(catalog.clone());
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));

    let train_queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.train_queries.max(4),
            seed: cfg.seed ^ 0xA,
            ..Default::default()
        },
    );
    let eval_queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.eval_queries.max(2),
            seed: cfg.seed ^ 0xB,
            ..Default::default()
        },
    );
    let train = label_workload(&oracle, &train_queries, cfg.max_subquery).unwrap();
    let eval = label_workload(&oracle, &eval_queries, cfg.max_subquery).unwrap();

    let mut table = TextTable::new(
        "T1: learned cardinality estimators (paper Table 1, executed)",
        &[
            "Category",
            "Method",
            "Applied ML Technique",
            "median-q",
            "p95-q",
            "max-q",
            "size",
            "fit-ms",
            "est-us",
        ],
    );
    for &kind in &cfg.kinds {
        let t0 = Instant::now();
        let est = build_estimator(kind, &ctx, &oracle, &train);
        let fit_ms = t0.elapsed().as_millis();

        let t1 = Instant::now();
        let pairs: Vec<(f64, f64)> = eval
            .iter()
            .map(|l| (est.estimate(&l.query, l.set), l.card))
            .collect();
        let est_us = t1.elapsed().as_micros() as f64 / eval.len().max(1) as f64;
        let q = QErrorSummary::from_pairs(&pairs);
        table.row(vec![
            est.category().label().to_string(),
            est.name().to_string(),
            est.technique().to_string(),
            format!("{:.2}", q.median),
            format!("{:.2}", q.p95),
            format!("{:.0}", q.max),
            est.model_size().to_string(),
            fit_ms.to_string(),
            format!("{est_us:.0}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_t1_runs_for_fast_kinds() {
        let cfg = Config {
            scale: 60,
            train_queries: 8,
            eval_queries: 4,
            max_subquery: 2,
            kinds: vec![
                EstimatorKind::Histogram,
                EstimatorKind::GbdtQd,
                EstimatorKind::BayesNet,
            ],
            seed: 1,
        };
        let table = run(&cfg);
        assert_eq!(table.rows.len(), 3);
        // Categories render the Table-1 labels.
        assert!(table.rows.iter().any(|r| r[0].contains("Traditional")));
        assert!(table
            .rows
            .iter()
            .any(|r| r[0].contains("Probabilistic Graphical Model")));
        let rendered = table.render();
        assert!(rendered.contains("median-q"));
    }
}
