//! **E2 — design-space exploration** (Sun et al., \[53\] in the paper):
//! accuracy / training time / inference latency / model size across the
//! estimator design space, over data sizes — plus the bin-count ablation
//! DESIGN.md calls out for the discretized data-driven models.

use std::sync::Arc;
use std::time::Instant;

use lqo_card::data_driven::DeepDbEstimator;
use lqo_card::estimator::{label_workload, CardEstimator, FitContext};
use lqo_card::registry::{build_estimator, EstimatorKind};
use lqo_engine::datagen::stats_like;
use lqo_engine::TrueCardOracle;

use crate::metrics::QErrorSummary;
use crate::report::TextTable;
use crate::workload::{generate_workload, WorkloadConfig};

/// E2 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Data scales (base users) forming the grid.
    pub scales: Vec<usize>,
    /// Queries per cell.
    pub num_queries: usize,
    /// Estimators on the grid.
    pub kinds: Vec<EstimatorKind>,
    /// Bin counts for the DeepDB ablation.
    pub bin_ablation: Vec<usize>,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            scales: vec![
                (100.0 * f) as usize,
                (200.0 * f) as usize,
                (400.0 * f) as usize,
            ],
            num_queries: (40.0 * f) as usize,
            kinds: EstimatorKind::FAST.to_vec(),
            bin_ablation: vec![8, 24, 64],
            seed: 0xE2,
        }
    }
}

fn evaluate(est: &dyn CardEstimator, eval: &[lqo_card::estimator::LabeledSubquery]) -> (f64, f64) {
    let t0 = Instant::now();
    let pairs: Vec<(f64, f64)> = eval
        .iter()
        .map(|l| (est.estimate(&l.query, l.set), l.card))
        .collect();
    let est_us = t0.elapsed().as_micros() as f64 / eval.len().max(1) as f64;
    (QErrorSummary::from_pairs(&pairs).median, est_us)
}

/// Run E2: returns (grid table, bin-ablation table).
pub fn run(cfg: &Config) -> (TextTable, TextTable) {
    let mut grid = TextTable::new(
        "E2: design-space exploration (median q-error / fit ms / est us / size)",
        &["Method", "scale", "median-q", "fit-ms", "est-us", "size"],
    );
    let mut ablation = TextTable::new(
        "E2b: DeepDB bin-count ablation",
        &["bins", "median-q", "fit-ms", "size"],
    );

    for &scale in &cfg.scales {
        let catalog = Arc::new(stats_like(scale.max(40), cfg.seed).unwrap());
        let ctx = FitContext::new(catalog.clone());
        let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
        let train_q = generate_workload(
            &catalog,
            &WorkloadConfig {
                num_queries: cfg.num_queries.max(6),
                seed: cfg.seed ^ 0x10,
                ..Default::default()
            },
        );
        let eval_q = generate_workload(
            &catalog,
            &WorkloadConfig {
                num_queries: (cfg.num_queries / 2).max(4),
                seed: cfg.seed ^ 0x20,
                ..Default::default()
            },
        );
        let train = label_workload(&oracle, &train_q, 3).unwrap();
        let eval = label_workload(&oracle, &eval_q, 3).unwrap();

        for &kind in &cfg.kinds {
            let t0 = Instant::now();
            let est = build_estimator(kind, &ctx, &oracle, &train);
            let fit_ms = t0.elapsed().as_millis();
            let (median_q, est_us) = evaluate(est.as_ref(), &eval);
            grid.row(vec![
                est.name().to_string(),
                scale.to_string(),
                format!("{median_q:.2}"),
                fit_ms.to_string(),
                format!("{est_us:.0}"),
                est.model_size().to_string(),
            ]);
        }

        // Bin ablation on the middle scale only.
        if Some(&scale) == cfg.scales.get(cfg.scales.len() / 2) {
            for &bins in &cfg.bin_ablation {
                let t0 = Instant::now();
                let est = DeepDbEstimator::fit_with_bins(&ctx, oracle.clone(), bins);
                let fit_ms = t0.elapsed().as_millis();
                let (median_q, _) = evaluate(&est, &eval);
                ablation.row(vec![
                    bins.to_string(),
                    format!("{median_q:.2}"),
                    fit_ms.to_string(),
                    est.model_size().to_string(),
                ]);
            }
        }
    }
    (grid, ablation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_runs() {
        let cfg = Config {
            scales: vec![60],
            num_queries: 8,
            kinds: vec![EstimatorKind::Histogram, EstimatorKind::FactorJoin],
            bin_ablation: vec![8, 32],
            ..Default::default()
        };
        let (grid, ablation) = run(&cfg);
        assert_eq!(grid.rows.len(), 2);
        assert_eq!(ablation.rows.len(), 2);
        // More bins = larger model.
        let s8: usize = ablation.rows[0][3].parse().unwrap();
        let s32: usize = ablation.rows[1][3].parse().unwrap();
        assert!(s32 >= s8);
    }
}
