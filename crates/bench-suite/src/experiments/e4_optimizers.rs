//! **E4 — end-to-end learned optimizers vs native** (the Bao/Lero/Neo/
//! Balsa evaluations of §2.2): every system trains on the workload for
//! several epochs; per-epoch total work is reported relative to the
//! native cost-based optimizer, alongside regressions and timeouts.

use std::sync::Arc;

use learned_qo::framework::{LearnedOptimizer, OptContext};
use learned_qo::harness::TrainingLoop;
use learned_qo::{balsa, bao, hyper_qo, leon, lero, neo, NativeBaseline};
use lqo_engine::datagen::imdb_like;

use crate::report::TextTable;
use crate::workload::{generate_workload, WorkloadConfig};

/// E4 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// `imdb_like` scale (base titles).
    pub scale: usize,
    /// Workload size.
    pub num_queries: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            scale: (200.0 * f) as usize,
            num_queries: (30.0 * f) as usize,
            epochs: 4,
            seed: 0xE4,
        }
    }
}

/// Run E4; the table has one row per system with per-epoch work ratios.
pub fn run(cfg: &Config) -> TextTable {
    let catalog = Arc::new(imdb_like(cfg.scale.max(40), cfg.seed).unwrap());
    let ctx = OptContext::new(catalog.clone());
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.num_queries.max(4),
            min_tables: 2,
            max_tables: 5,
            seed: cfg.seed ^ 0x50,
            ..Default::default()
        },
    );
    let training = TrainingLoop::new(ctx.clone(), queries).unwrap();
    let native_total = training.native_total();

    let mut headers: Vec<String> = vec!["System".into()];
    for e in 1..=cfg.epochs {
        headers.push(format!("epoch{e}"));
    }
    headers.extend(["final regr".into(), "max slowdn".into(), "timeouts".into()]);
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(
        "E4: end-to-end learned optimizers (total work / native total)",
        &header_refs,
    );

    let mut systems: Vec<Box<dyn LearnedOptimizer>> = vec![
        Box::new(NativeBaseline::new(ctx.clone())),
        Box::new(bao(ctx.clone())),
        Box::new(lero(ctx.clone())),
        Box::new(hyper_qo(ctx.clone())),
        Box::new(leon(ctx.clone())),
        Box::new(neo(ctx.clone())),
        Box::new(balsa(ctx.clone())),
    ];
    for sys in &mut systems {
        let stats = training.run(sys.as_mut(), cfg.epochs);
        let mut row = vec![sys.name().to_string()];
        for s in &stats {
            row.push(format!("{:.2}x", s.total_work / native_total));
        }
        let last = stats.last().unwrap();
        row.push(last.regressions.to_string());
        row.push(format!("{:.1}x", last.max_regression));
        row.push(last.timeouts.to_string());
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_e4_native_stays_at_one() {
        let cfg = Config {
            scale: 60,
            num_queries: 5,
            epochs: 2,
            ..Default::default()
        };
        let table = run(&cfg);
        assert_eq!(table.rows.len(), 7);
        // Native row: every epoch is exactly 1.00x, zero regressions.
        let native = &table.rows[0];
        assert_eq!(native[0], "Native");
        assert_eq!(native[1], "1.00x");
        assert_eq!(native[2], "1.00x");
        assert_eq!(native[3], "0");
    }
}
