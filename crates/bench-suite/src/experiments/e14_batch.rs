//! **E14 — vectorized batch execution: batched-vs-serial speedup under
//! the byte-identity contract.** The survey's deployment argument for
//! learned optimizers assumes execution feedback is cheap to collect;
//! PR 4 attacked that with morsel parallelism, this experiment measures
//! the orthogonal axis: columnar batch execution (`ExecMode::Batched`)
//! on a single thread, plus one composed `BatchedParallel` cell. The
//! workload is the scan/join mix of E11 (single-table scans and 2-table
//! hash joins over a scaled `stats_like` catalog). Every cell is
//! verified byte-identical to the serial reference — counts, bit-exact
//! work units, and order-sensitive relation digests — before its wall
//! clock is reported, so any speedup shown is for *exactly the same
//! answer*. Artifacts: one JSONL record per mode in
//! `results/exp_e14_batch.jsonl`.
//!
//! The binary asserts a batched speedup ≥ 1.0 at full scale (vectorized
//! kernels do not need extra cores); at reduced scale
//! (`LQO_SCALE=small`, e.g. CI containers) the timing assertion is
//! skipped because sub-millisecond workloads are jitter-dominated —
//! byte identity is always asserted.

use std::time::Instant;

use serde::Serialize;

use lqo_engine::datagen::stats_like;
use lqo_engine::exec::batch::DEFAULT_BATCH_SIZE;
use lqo_engine::{Catalog, ExecConfig, ExecMode, Executor, ParallelConfig, PhysNode, SpjQuery};

use crate::report::TextTable;
use crate::workload::{generate_single_table_workload, generate_workload, WorkloadConfig};

/// E14 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// `stats_like` scale (rows per table ∝ scale).
    pub scale: usize,
    /// Single-table scan queries (selection-vector kernels dominate).
    pub num_scans: usize,
    /// 2-table hash-join queries (KeyTable build/probe dominates).
    pub num_joins: usize,
    /// Batch sizes to sweep (serial is always measured first).
    pub batch_sizes: Vec<usize>,
    /// Threads for the single composed `BatchedParallel` cell.
    pub threads: usize,
    /// Morsel size for the composed cell.
    pub morsel_rows: usize,
    /// Timed repetitions per mode; the minimum wall time is reported.
    pub repeats: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            scale: (2_000.0 * f) as usize,
            num_scans: (24.0 * f).max(4.0) as usize,
            num_joins: (8.0 * f).max(2.0) as usize,
            batch_sizes: vec![64, DEFAULT_BATCH_SIZE, 8192],
            threads: 4,
            morsel_rows: 4096,
            repeats: 3,
            seed: 0xE14,
        }
    }
}

/// One JSONL record: the measured cell at one mode.
#[derive(Debug, Clone, Serialize)]
pub struct BatchPoint {
    /// Execution mode label (`serial`, `batched:N`, or
    /// `batched-parallel:T:N`).
    pub mode: String,
    /// Columnar batch size (`0` encodes the serial reference run).
    pub batch_size: usize,
    /// Best-of-`repeats` wall time for the whole workload, seconds.
    pub wall_s: f64,
    /// `serial_wall / wall` (1.0 for the serial row).
    pub speedup: f64,
    /// Queries executed.
    pub queries: usize,
    /// Total result rows across the workload (identical in every row).
    pub total_count: u64,
}

/// E14 output: the speedup table plus per-mode records.
#[derive(Debug, Serialize)]
pub struct Output {
    /// Rendered summary table.
    pub table: TextTable,
    /// One record per measured mode, serial first.
    pub points: Vec<BatchPoint>,
    /// Whether the run was at full scale (timing assertions meaningful).
    pub full_scale: bool,
}

fn workload(catalog: &Catalog, cfg: &Config) -> Vec<(SpjQuery, PhysNode)> {
    let mut pairs: Vec<(SpjQuery, PhysNode)> = Vec::new();
    for q in generate_single_table_workload(
        catalog,
        "posts",
        &WorkloadConfig {
            num_queries: cfg.num_scans,
            seed: cfg.seed,
            ..Default::default()
        },
    ) {
        pairs.push((q, PhysNode::scan(0)));
    }
    for q in generate_workload(
        catalog,
        &WorkloadConfig {
            num_queries: cfg.num_joins,
            min_tables: 2,
            max_tables: 2,
            max_predicates: 2,
            seed: cfg.seed ^ 0x5EED,
        },
    ) {
        let plan = PhysNode::join(
            lqo_engine::JoinAlgo::Hash,
            PhysNode::scan(0),
            PhysNode::scan(1),
        );
        pairs.push((q, plan));
    }
    pairs
}

struct ModeRun {
    wall_s: f64,
    total_count: u64,
    digest: u64,
    work_bits: Vec<u64>,
}

fn run_mode(
    catalog: &Catalog,
    pairs: &[(SpjQuery, PhysNode)],
    cfg: &Config,
    mode: ExecMode,
) -> ModeRun {
    let ex = Executor::new(
        catalog,
        ExecConfig {
            mode,
            parallel: ParallelConfig {
                morsel_rows: cfg.morsel_rows,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut best = f64::INFINITY;
    let mut total_count = 0;
    let mut digest = 0u64;
    let mut work_bits = Vec::new();
    for _ in 0..cfg.repeats {
        total_count = 0;
        digest = 0;
        work_bits.clear();
        let start = Instant::now();
        for (q, plan) in pairs {
            let (r, rel) = ex.execute_collect(q, plan).expect("workload executes");
            total_count += r.count;
            digest = digest.rotate_left(7) ^ rel.digest();
            work_bits.push(r.work.to_bits());
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    ModeRun {
        wall_s: best,
        total_count,
        digest,
        work_bits,
    }
}

/// Run the batch sweep. Panics if any batched cell diverges from the
/// serial reference in counts, digests, or bit-exact work.
pub fn run(cfg: &Config) -> Output {
    let catalog = stats_like(cfg.scale, 0xE14).expect("catalog");
    let pairs = workload(&catalog, cfg);
    assert!(!pairs.is_empty(), "empty workload");

    let serial = run_mode(&catalog, &pairs, cfg, ExecMode::Serial);
    let mut table = TextTable::new(
        "E14: vectorized batch execution (byte-identity verified per cell)",
        &["mode", "wall_s", "speedup"],
    );
    let mut points = vec![BatchPoint {
        mode: "serial".into(),
        batch_size: 0,
        wall_s: serial.wall_s,
        speedup: 1.0,
        queries: pairs.len(),
        total_count: serial.total_count,
    }];
    table.row(vec![
        "serial".into(),
        format!("{:.4}", serial.wall_s),
        "1.00".into(),
    ]);

    let mut cells: Vec<(String, usize, ExecMode)> = cfg
        .batch_sizes
        .iter()
        .map(|&batch_size| {
            (
                format!("batched:{batch_size}"),
                batch_size,
                ExecMode::Batched { batch_size },
            )
        })
        .collect();
    cells.push((
        format!("batched-parallel:{}:{}", cfg.threads, DEFAULT_BATCH_SIZE),
        DEFAULT_BATCH_SIZE,
        ExecMode::BatchedParallel {
            threads: cfg.threads,
            batch_size: DEFAULT_BATCH_SIZE,
        },
    ));
    for (label, batch_size, mode) in cells {
        let run = run_mode(&catalog, &pairs, cfg, mode);
        assert_eq!(
            run.total_count, serial.total_count,
            "count divergence at {label}"
        );
        assert_eq!(run.digest, serial.digest, "digest divergence at {label}");
        assert_eq!(
            run.work_bits, serial.work_bits,
            "work-unit divergence at {label}"
        );
        let speedup = serial.wall_s / run.wall_s.max(1e-12);
        table.row(vec![
            label.clone(),
            format!("{:.4}", run.wall_s),
            format!("{speedup:.2}"),
        ]);
        points.push(BatchPoint {
            mode: label,
            batch_size,
            wall_s: run.wall_s,
            speedup,
            queries: pairs.len(),
            total_count: run.total_count,
        });
    }

    Output {
        table,
        points,
        full_scale: crate::report::scale_factor() >= 1.0,
    }
}

/// Render the per-mode records as JSONL for `results/exp_e14_batch.jsonl`.
pub fn to_jsonl(points: &[BatchPoint]) -> String {
    let mut out = String::new();
    for p in points {
        out.push_str(&serde_json::to_string(p).expect("serialize point"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_byte_identical_and_reports_points() {
        let cfg = Config {
            scale: 200,
            num_scans: 3,
            num_joins: 2,
            batch_sizes: vec![7, 256],
            threads: 2,
            morsel_rows: 64,
            repeats: 1,
            seed: 0xE14,
        };
        let out = run(&cfg);
        // serial + 2 batched + 1 batched-parallel.
        assert_eq!(out.points.len(), 4);
        assert_eq!(out.points[0].mode, "serial");
        assert!(out
            .points
            .iter()
            .all(|p| p.total_count == out.points[0].total_count));
        let jsonl = to_jsonl(&out.points);
        assert_eq!(jsonl.lines().count(), 4);
        assert!(jsonl.contains("\"mode\":\"batched:7\""));
        assert!(jsonl.contains("batched-parallel:2:"));
    }
}
