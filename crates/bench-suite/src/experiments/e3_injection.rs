//! **E3 — end-to-end injection evaluation** (the STATS-CEB methodology of
//! Han et al., \[12\] in the paper): each estimator's sub-query
//! cardinalities are injected into the native cost-based optimizer, plans
//! are actually executed, and total workload cost is compared against the
//! TrueCard upper bound and the PostgreSQL-style histogram baseline.

use std::sync::Arc;

use lqo_card::estimator::{label_workload, EstimatorCardSource, FitContext};
use lqo_card::registry::{build_estimator, EstimatorKind};
use lqo_engine::datagen::stats_like;
use lqo_engine::optimizer::CardSource;
use lqo_engine::{
    EngineError, ExecConfig, Executor, Optimizer, SpjQuery, TrueCardOracle, TrueCardSource,
};

use crate::report::TextTable;
use crate::workload::{generate_workload, WorkloadConfig};

/// E3 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// `stats_like` scale.
    pub scale: usize,
    /// Workload size (STATS-CEB has 146; scaled default is smaller).
    pub num_queries: usize,
    /// Training queries for the query-driven estimators.
    pub train_queries: usize,
    /// Estimators to inject.
    pub kinds: Vec<EstimatorKind>,
    /// Timeout budget as a multiple of the TrueCard plan's work.
    pub timeout_factor: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            // Scale is deliberately moderate: the TrueCard reference and
            // the fanout backbones *execute* join patterns exactly, and
            // Zipf star joins around hot keys grow super-linearly.
            scale: (150.0 * f) as usize,
            num_queries: (40.0 * f) as usize,
            train_queries: (40.0 * f) as usize,
            kinds: vec![
                EstimatorKind::Histogram,
                EstimatorKind::Sampling,
                EstimatorKind::GbdtQd,
                EstimatorKind::Mscn,
                EstimatorKind::BayesNet,
                EstimatorKind::NeuroCard,
                EstimatorKind::DeepDb,
                EstimatorKind::Flat,
                EstimatorKind::FactorJoin,
                EstimatorKind::Glue,
            ],
            timeout_factor: 30.0,
            seed: 0xE3,
        }
    }
}

/// Execute the workload with plans chosen under `card`; returns per-query
/// work (timeouts charged at the budget).
fn run_workload(
    catalog: &Arc<lqo_engine::Catalog>,
    queries: &[SpjQuery],
    card: &dyn CardSource,
    budgets: Option<&[f64]>,
) -> Vec<f64> {
    let optimizer = Optimizer::with_defaults(catalog);
    let mut out = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let budget = budgets.map(|b| b[i] * 1.0);
        let executor = Executor::new(
            catalog,
            ExecConfig {
                max_work: budget,
                ..Default::default()
            },
        );
        let work = match optimizer.optimize_default(q, card) {
            Ok(choice) => match executor.execute(q, &choice.plan) {
                Ok(r) => r.work,
                Err(EngineError::WorkLimitExceeded { limit }) => limit,
                Err(_) => budget.unwrap_or(f64::INFINITY),
            },
            Err(_) => budget.unwrap_or(f64::INFINITY),
        };
        out.push(work);
    }
    out
}

/// Run E3; returns the end-to-end comparison table.
pub fn run(cfg: &Config) -> TextTable {
    let catalog = Arc::new(stats_like(cfg.scale.max(40), cfg.seed).unwrap());
    let ctx = FitContext::new(catalog.clone());
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.num_queries.max(4),
            min_tables: 2,
            max_tables: 4,
            seed: cfg.seed ^ 0x30,
            ..Default::default()
        },
    );
    let train_q = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.train_queries.max(4),
            seed: cfg.seed ^ 0x40,
            ..Default::default()
        },
    );
    let train = label_workload(&oracle, &train_q, 3).unwrap();

    // TrueCard reference: best plans the optimizer can produce.
    let truth = TrueCardSource::new(oracle.clone());
    let true_work = run_workload(&catalog, &queries, &truth, None);
    assert_eq!(
        truth.misses(),
        0,
        "TrueCard oracle missed {} lookups: the E3 upper bound would be fake",
        truth.misses()
    );
    let budgets: Vec<f64> = true_work.iter().map(|w| w * cfg.timeout_factor).collect();
    let true_total: f64 = true_work.iter().sum();

    let mut table = TextTable::new(
        "E3: end-to-end plan quality with injected cardinalities (STATS-like)",
        &[
            "Estimator",
            "total-work",
            "vs TrueCard",
            "improved",
            "regressed",
            "timeouts",
        ],
    );
    table.row(vec![
        "TrueCard".into(),
        format!("{true_total:.0}"),
        "1.00x".into(),
        "-".into(),
        "-".into(),
        "0".into(),
    ]);

    // Histogram baseline first (it is also the regression reference).
    let baseline_work: Vec<f64> = {
        let est = build_estimator(EstimatorKind::Histogram, &ctx, &oracle, &train);
        let src = EstimatorCardSource::new(Arc::from(est));
        run_workload(&catalog, &queries, &src, Some(&budgets))
    };
    for &kind in &cfg.kinds {
        let t0 = std::time::Instant::now();
        let est = build_estimator(kind, &ctx, &oracle, &train);
        let name = est.name().to_string();
        eprintln!("  [e3] fitted {name} in {:?}", t0.elapsed());
        let src = EstimatorCardSource::new(Arc::from(est));
        let t0 = std::time::Instant::now();
        let work = run_workload(&catalog, &queries, &src, Some(&budgets));
        eprintln!("  [e3] ran workload under {name} in {:?}", t0.elapsed());
        let total: f64 = work.iter().sum();
        let improved = work
            .iter()
            .zip(&baseline_work)
            .filter(|(w, b)| **w < **b * 0.9)
            .count();
        let regressed = work
            .iter()
            .zip(&baseline_work)
            .filter(|(w, b)| **w > **b * 1.1)
            .count();
        let timeouts = work
            .iter()
            .zip(&budgets)
            .filter(|(w, b)| (**w - **b).abs() < 1e-9)
            .count();
        table.row(vec![
            name,
            format!("{total:.0}"),
            format!("{:.2}x", total / true_total),
            improved.to_string(),
            regressed.to_string(),
            timeouts.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_e3_truecard_is_lower_bound_ish() {
        let cfg = Config {
            scale: 60,
            num_queries: 6,
            train_queries: 6,
            kinds: vec![EstimatorKind::Histogram, EstimatorKind::FactorJoin],
            ..Default::default()
        };
        let table = run(&cfg);
        assert_eq!(table.rows.len(), 3);
        // Ratios vs TrueCard are >= ~1 (TrueCard plans are near-optimal).
        for row in &table.rows[1..] {
            let ratio: f64 = row[2].trim_end_matches('x').parse().unwrap();
            assert!(ratio > 0.5, "{row:?}");
        }
    }
}
