//! **E7 — learned cost models** (§2.1.2): cost→latency correlation and
//! plan-ranking accuracy of the native analytical model (under estimated
//! and true cardinalities) versus the learned TCNN, TreeRNN and Saturn
//! models, on held-out queries.

use std::sync::Arc;

use lqo_cost::{
    harvest_samples, CostModel, NativeCostModel, PlanSample, SaturnEmbedder, TcnnCostModel,
    TreeRnnCostModel,
};
use lqo_engine::datagen::imdb_like;
use lqo_engine::optimizer::CardSource;
use lqo_engine::stats::table_stats::CatalogStats;
use lqo_engine::{HintSet, TraditionalCardSource, TrueCardOracle, TrueCardSource};
use lqo_ml::metrics::{pairwise_rank_accuracy, pearson, spearman};

use crate::report::TextTable;
use crate::workload::{generate_workload, WorkloadConfig};

/// E7 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// `imdb_like` scale.
    pub scale: usize,
    /// Workload size (split in half train/test by query).
    pub num_queries: usize,
    /// Training epochs for the neural models.
    pub epochs: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            scale: (180.0 * f) as usize,
            num_queries: (40.0 * f) as usize,
            epochs: (160.0 * f) as usize,
            seed: 0xE7,
        }
    }
}

fn evaluate(model: &dyn CostModel, test: &[PlanSample]) -> (f64, f64, f64) {
    let pred: Vec<f64> = test
        .iter()
        .map(|s| model.predict(&s.query, &s.plan).max(1.0).ln())
        .collect();
    let truth: Vec<f64> = test.iter().map(|s| s.work.max(1.0).ln()).collect();
    (
        pearson(&pred, &truth),
        spearman(&pred, &truth),
        pairwise_rank_accuracy(&pred, &truth),
    )
}

/// Run E7.
pub fn run(cfg: &Config) -> TextTable {
    let catalog = Arc::new(imdb_like(cfg.scale.max(40), cfg.seed).unwrap());
    let stats = Arc::new(CatalogStats::build_default(&catalog));
    let trad: Arc<dyn CardSource> = Arc::new(TraditionalCardSource::new(catalog.clone(), stats));
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
    let truth: Arc<dyn CardSource> = Arc::new(TrueCardSource::new(oracle));

    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.num_queries.max(6),
            min_tables: 2,
            max_tables: 5,
            seed: cfg.seed ^ 0x80,
            ..Default::default()
        },
    );
    let (train_q, test_q): (Vec<_>, Vec<_>) = queries
        .into_iter()
        .enumerate()
        .partition(|(i, _)| i % 2 == 0);
    let train_q: Vec<_> = train_q.into_iter().map(|(_, q)| q).collect();
    let test_q: Vec<_> = test_q.into_iter().map(|(_, q)| q).collect();
    let arms = HintSet::standard_arms();
    let train = harvest_samples(&catalog, &train_q, &arms, trad.as_ref()).unwrap();
    let test = harvest_samples(&catalog, &test_q, &arms, trad.as_ref()).unwrap();

    let mut table = TextTable::new(
        "E7: cost models — correlation with measured work (held-out queries)",
        &["Model", "pearson(log)", "spearman", "rank-acc", "size"],
    );
    let models: Vec<Box<dyn CostModel>> = vec![
        Box::new(NativeCostModel::new(catalog.clone(), trad.clone())),
        Box::new(NativeCostModel::new(catalog.clone(), truth)),
        Box::new(TcnnCostModel::fit(catalog.clone(), &train, cfg.epochs)),
        Box::new(TreeRnnCostModel::fit(catalog.clone(), &train, cfg.epochs)),
        Box::new(SaturnEmbedder::fit(catalog.clone(), &train, cfg.epochs)),
    ];
    let labels = [
        "Native (est. cards)",
        "Native (true cards)",
        "TCNN",
        "TreeRNN",
        "Saturn (kNN)",
    ];
    for (model, label) in models.iter().zip(labels) {
        let (p, s, r) = evaluate(model.as_ref(), &test);
        table.row(vec![
            label.to_string(),
            format!("{p:.3}"),
            format!("{s:.3}"),
            format!("{r:.3}"),
            model.model_size().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_e7_native_true_cards_correlate() {
        let cfg = Config {
            scale: 60,
            num_queries: 8,
            epochs: 30,
            ..Default::default()
        };
        let table = run(&cfg);
        assert_eq!(table.rows.len(), 5);
        // Native with true cards must correlate strongly.
        let s: f64 = table.rows[1][2].parse().unwrap();
        assert!(s > 0.5, "native(true) spearman {s}");
    }
}
