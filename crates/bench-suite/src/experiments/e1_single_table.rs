//! **E1 — "Are we ready for learned cardinality estimation?"** (Wang et
//! al., \[61\] in the paper): single-table estimators under static data and
//! under data drift (appended rows with a shifted distribution), plus
//! training cost and model size — the deployment-readiness axes that
//! study introduced.

use std::sync::Arc;
use std::time::Instant;

use lqo_card::estimator::{label_workload, CardEstimator, FitContext, LabeledSubquery};
use lqo_card::registry::{build_estimator, EstimatorKind};
use lqo_engine::datagen::{correlated_table, SingleTableConfig};
use lqo_engine::{Catalog, TrueCardOracle};
use lqo_obs::trace::{CardLookup, OperatorEvent, QueryOutcome};
use lqo_obs::ObsContext;

use crate::metrics::QErrorSummary;
use crate::report::TextTable;
use crate::workload::{generate_single_table_workload, WorkloadConfig};

/// E1 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Base table rows.
    pub nrows: usize,
    /// Appended (drifted) rows as a fraction of the base.
    pub drift_fraction: f64,
    /// Training/evaluation query counts.
    pub num_queries: usize,
    /// Estimators to evaluate (single-table-capable).
    pub kinds: Vec<EstimatorKind>,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            nrows: (10_000.0 * f) as usize,
            drift_fraction: 0.4,
            num_queries: (50.0 * f) as usize,
            kinds: vec![
                EstimatorKind::Histogram,
                EstimatorKind::Sampling,
                EstimatorKind::QuickSel,
                EstimatorKind::GbdtQd,
                EstimatorKind::MlpQd,
                EstimatorKind::Mscn,
                EstimatorKind::Kde,
                EstimatorKind::Naru,
                EstimatorKind::BayesNet,
                EstimatorKind::DeepDb,
                EstimatorKind::Flat,
            ],
            seed: 0xE1,
        }
    }
}

/// Evaluate one estimator over a labeled set, recording per-estimate
/// metrics and one synthesized provenance trace per point: the estimate
/// as a planner card lookup, the oracle truth as the operator's measured
/// cardinality. That is exactly the feedback shape a live system would
/// harvest, so the JSONL dump slots into the same tooling as E8/E9.
fn evaluate_traced(
    obs: &ObsContext,
    phase: &str,
    name: &str,
    est: &dyn CardEstimator,
    labeled: &[LabeledSubquery],
) -> Vec<(f64, f64)> {
    labeled
        .iter()
        .map(|l| {
            obs.begin_query(&format!("{phase}/{name}: {}", l.query));
            let t0 = Instant::now();
            let pred = est.estimate(&l.query, l.set);
            let ns = t0.elapsed().as_nanos() as u64;
            let (e, t) = (pred.max(1.0), l.card.max(1.0));
            obs.count("lqo.card.estimates", 1);
            obs.observe(&format!("lqo.card.q_error.{phase}"), (e / t).max(t / e));
            obs.observe("lqo.card.estimate_ns", ns as f64);
            obs.with_query(|tr| {
                tr.planner.card_source = Some(name.to_string());
                tr.planner.card_lookups.push(CardLookup {
                    tables: l.set.0,
                    est_rows: pred,
                });
                tr.record_phase("estimate", ns);
                tr.exec.operators.push(OperatorEvent {
                    op: "Scan".into(),
                    tables: l.set.0,
                    true_rows: l.card as u64,
                    est_rows: Some(pred),
                    work: l.card,
                });
                tr.outcome = Some(QueryOutcome {
                    count: l.card as u64,
                    work: l.card,
                    wall_ns: ns,
                });
            });
            obs.end_query();
            (pred, l.card)
        })
        .collect()
}

/// Run E1 and return just the static-vs-drift table.
pub fn run(cfg: &Config) -> TextTable {
    run_traced(cfg).0
}

/// Run E1: returns the static-vs-drift table plus the observability
/// context holding per-estimate metrics and synthesized traces.
pub fn run_traced(cfg: &Config) -> (TextTable, ObsContext) {
    let obs = ObsContext::enabled();
    // Static world.
    let base_cfg = SingleTableConfig {
        nrows: cfg.nrows.max(200),
        seed: cfg.seed,
        ..Default::default()
    };
    let mut catalog = Catalog::new();
    catalog.add_table(correlated_table("t", &base_cfg).unwrap());
    let catalog = Arc::new(catalog);
    let ctx = FitContext::new(catalog.clone());
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));

    let wcfg = WorkloadConfig {
        num_queries: cfg.num_queries.max(6),
        max_predicates: 2,
        seed: cfg.seed ^ 0x1,
        ..Default::default()
    };
    let train_q = generate_single_table_workload(&catalog, "t", &wcfg);
    let eval_q = generate_single_table_workload(
        &catalog,
        "t",
        &WorkloadConfig {
            seed: cfg.seed ^ 0x2,
            ..wcfg.clone()
        },
    );
    let train = label_workload(&oracle, &train_q, 1).unwrap();
    let eval = label_workload(&oracle, &eval_q, 1).unwrap();

    // Drifted world: append rows from a shifted distribution; the learned
    // models keep their stale view (their Arc points at the old catalog),
    // while truth comes from the drifted one.
    let drift_cfg = SingleTableConfig {
        nrows: ((cfg.nrows.max(200)) as f64 * cfg.drift_fraction) as usize + 50,
        skew: 0.2,        // drift: much less skew
        correlation: 0.1, // drift: correlation breaks down
        seed: cfg.seed ^ 0xD41F7,
        ..Default::default()
    };
    let mut drifted = (*catalog).clone();
    let extra = correlated_table("t", &drift_cfg).unwrap();
    drifted.table_mut("t").unwrap().append(&extra).unwrap();
    let drifted = Arc::new(drifted);
    let drift_oracle = Arc::new(TrueCardOracle::new(drifted.clone()));
    let drift_eval = label_workload(&drift_oracle, &eval_q, 1).unwrap();

    let mut table = TextTable::new(
        "E1: single-table estimators, static vs drifted data",
        &[
            "Method",
            "static med-q",
            "static p95-q",
            "drift med-q",
            "drift p95-q",
            "size",
            "fit-ms",
        ],
    );
    for &kind in &cfg.kinds {
        let t0 = Instant::now();
        let est = build_estimator(kind, &ctx, &oracle, &train);
        let fit_ms = t0.elapsed().as_millis();
        let static_pairs = evaluate_traced(&obs, "static", est.name(), est.as_ref(), &eval);
        let drift_pairs = evaluate_traced(&obs, "drift", est.name(), est.as_ref(), &drift_eval);
        let qs = QErrorSummary::from_pairs(&static_pairs);
        let qd = QErrorSummary::from_pairs(&drift_pairs);
        table.row(vec![
            est.name().to_string(),
            format!("{:.2}", qs.median),
            format!("{:.2}", qs.p95),
            format!("{:.2}", qd.median),
            format!("{:.2}", qd.p95),
            est.model_size().to_string(),
            fit_ms.to_string(),
        ]);
    }

    // Model updating (paper §2.2.2): DDUp-style drift detection triggers
    // either a statistics refresh or a Warper-style targeted update set.
    use lqo_card::drift::{warper_update_set, DriftDetector};
    let detector = DriftDetector::baseline(&ctx);
    let drifted_tables = detector.detect(&drifted);
    let drift_ctx = FitContext::new(drifted.clone());

    // Refresh the traditional statistics on the drifted data.
    let t0 = Instant::now();
    let refreshed = build_estimator(EstimatorKind::Histogram, &drift_ctx, &drift_oracle, &[]);
    let fit_ms = t0.elapsed().as_millis();
    let pairs = evaluate_traced(
        &obs,
        "drift",
        "Histogram-refreshed",
        refreshed.as_ref(),
        &drift_eval,
    );
    let q = QErrorSummary::from_pairs(&pairs);
    table.row(vec![
        "Histogram (refreshed)".into(),
        "-".into(),
        "-".into(),
        format!("{:.2}", q.median),
        format!("{:.2}", q.p95),
        refreshed.model_size().to_string(),
        fit_ms.to_string(),
    ]);

    // Warper: generate an update set over the drifted tables, refit GBDT.
    let t0 = Instant::now();
    let update = warper_update_set(
        &drifted,
        &drift_oracle,
        &drifted_tables,
        cfg.num_queries.max(6),
        cfg.seed ^ 0x3,
    )
    .unwrap();
    let mut augmented = train.clone();
    augmented.extend(update);
    let warped = build_estimator(EstimatorKind::GbdtQd, &drift_ctx, &drift_oracle, &augmented);
    let fit_ms = t0.elapsed().as_millis();
    let pairs = evaluate_traced(
        &obs,
        "drift",
        "GBDT-QD-Warper",
        warped.as_ref(),
        &drift_eval,
    );
    let q = QErrorSummary::from_pairs(&pairs);
    table.row(vec![
        format!("GBDT-QD + Warper (drift on {drifted_tables:?})"),
        "-".into(),
        "-".into(),
        format!("{:.2}", q.median),
        format!("{:.2}", q.p95),
        warped.model_size().to_string(),
        fit_ms.to_string(),
    ]);
    (table, obs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_e1_shows_drift_degradation() {
        let cfg = Config {
            nrows: 1500,
            num_queries: 12,
            kinds: vec![EstimatorKind::Histogram, EstimatorKind::BayesNet],
            ..Default::default()
        };
        let table = run(&cfg);
        // Two estimators plus the two model-updating rows.
        assert_eq!(table.rows.len(), 4);
        // Drift should not *improve* the median by a large margin for a
        // stale model (sanity of the harness direction).
        for row in &table.rows[..2] {
            let static_med: f64 = row[1].parse().unwrap();
            let drift_med: f64 = row[3].parse().unwrap();
            assert!(drift_med > static_med * 0.5, "{row:?}");
        }
        // The updating rows have no static columns.
        assert_eq!(table.rows[2][1], "-");
        assert!(table.rows[2][0].contains("refreshed"));
        assert!(table.rows[3][0].contains("Warper"));
        // Refreshed statistics beat the stale ones on drifted data.
        let stale_hist: f64 = table.rows[0][3].parse().unwrap();
        let fresh_hist: f64 = table.rows[2][3].parse().unwrap();
        assert!(
            fresh_hist <= stale_hist * 1.2,
            "stale {stale_hist} fresh {fresh_hist}"
        );
    }
}
