//! **E6 — learned join-order search** (§2.1.3): plan-cost ratio of each
//! method versus exhaustive bushy DP, plus planning time, over a workload
//! of 3–7-table joins. True cardinalities drive the cost evaluation so
//! the comparison isolates *search* quality from estimation error.

use std::sync::Arc;
use std::time::Instant;

use lqo_engine::datagen::imdb_like;
use lqo_engine::optimizer::CardSource;
use lqo_engine::{TrueCardOracle, TrueCardSource};
use lqo_join::{
    DpBaseline, DqJoinOrderer, EddyRl, GreedyBaseline, JoinEnv, JoinOrderSearch, RtosLite,
    SkinnerMcts,
};
use lqo_ml::metrics::geometric_mean;

use crate::report::TextTable;
use crate::workload::{generate_workload, WorkloadConfig};

/// E6 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// `imdb_like` scale.
    pub scale: usize,
    /// Workload size.
    pub num_queries: usize,
    /// Max joined tables.
    pub max_tables: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        Config {
            scale: (150.0 * f) as usize,
            num_queries: (20.0 * f) as usize,
            max_tables: 7,
            seed: 0xE6,
        }
    }
}

/// Run E6.
pub fn run(cfg: &Config) -> TextTable {
    let catalog = Arc::new(imdb_like(cfg.scale.max(40), cfg.seed).unwrap());
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));
    let card: Arc<dyn CardSource> = Arc::new(TrueCardSource::new(oracle));
    let env = JoinEnv::new(catalog.clone(), card);
    let queries = generate_workload(
        &catalog,
        &WorkloadConfig {
            num_queries: cfg.num_queries.max(4),
            min_tables: 3,
            max_tables: cfg.max_tables.max(3),
            seed: cfg.seed ^ 0x70,
            ..Default::default()
        },
    );

    // Reference: exhaustive bushy DP cost per query.
    let mut dp = DpBaseline {
        left_deep_only: false,
    };
    let reference: Vec<f64> = queries
        .iter()
        .map(|q| env.tree_cost(q, &dp.find_plan(&env, q).unwrap()))
        .collect();

    let mut table = TextTable::new(
        "E6: join-order search vs exhaustive DP (cost ratios)",
        &["Method", "geo-mean ratio", "max ratio", "plan-ms"],
    );

    let mut methods: Vec<Box<dyn JoinOrderSearch>> = vec![
        Box::new(DpBaseline {
            left_deep_only: false,
        }),
        Box::new(DpBaseline {
            left_deep_only: true,
        }),
        Box::new(GreedyBaseline),
        Box::new(DqJoinOrderer::new(
            cfg.max_tables.max(3),
            Default::default(),
        )),
        Box::new(RtosLite::new(cfg.max_tables.max(3), 40)),
        Box::new(EddyRl::new(60)),
        Box::new(SkinnerMcts::new(300)),
    ];
    for method in &mut methods {
        method.train(&env, &queries);
        let t0 = Instant::now();
        let mut ratios = Vec::with_capacity(queries.len());
        for (q, &ref_cost) in queries.iter().zip(&reference) {
            match method.find_plan(&env, q) {
                Ok(tree) => ratios.push((env.tree_cost(q, &tree) / ref_cost).max(1e-9)),
                Err(_) => ratios.push(f64::NAN),
            }
        }
        let plan_ms = t0.elapsed().as_millis() as f64 / queries.len().max(1) as f64;
        let valid: Vec<f64> = ratios.iter().copied().filter(|r| r.is_finite()).collect();
        let max = valid.iter().copied().fold(0.0f64, f64::max);
        table.row(vec![
            method.name().to_string(),
            format!("{:.2}", geometric_mean(&valid)),
            format!("{max:.1}"),
            format!("{plan_ms:.1}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_e6_dp_is_reference() {
        let cfg = Config {
            scale: 60,
            num_queries: 4,
            max_tables: 4,
            ..Default::default()
        };
        let table = run(&cfg);
        assert_eq!(table.rows.len(), 7);
        // The bushy DP row is exactly 1.00 (it is the reference).
        assert_eq!(table.rows[0][0], "DP (bushy)");
        let r: f64 = table.rows[0][1].parse().unwrap();
        assert!((r - 1.0).abs() < 1e-6);
        // Every method's geo-mean ratio is >= ~1 (DP is optimal).
        for row in &table.rows {
            let r: f64 = row[1].parse().unwrap();
            assert!(r >= 0.99, "{row:?}");
        }
    }
}
