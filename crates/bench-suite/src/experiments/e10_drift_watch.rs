//! **E10 — model-health watch on the E1 drift scenario.** E1 shows that
//! single-table estimators silently go stale when the data distribution
//! shifts under them; the survey's deployment chapters ask who notices.
//! This experiment answers operationally: the same static→drifted replay
//! is streamed through [`lqo_watch::ModelHealthMonitor`] as execution
//! feedback, and the monitor must raise its first alarm *only after* the
//! drift point — zero alarms across the whole stationary prefix, a
//! confirmed `Drifted` verdict within the post-shift window. The run
//! also produces the monitor's JSONL time series and the self-contained
//! HTML dashboard.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use lqo_card::estimator::{label_workload, CardEstimator, FitContext, LabeledSubquery};
use lqo_card::registry::{build_estimator, EstimatorKind};
use lqo_engine::datagen::{correlated_table, SingleTableConfig};
use lqo_engine::{Catalog, TrueCardOracle};
use lqo_obs::ObsContext;
use lqo_watch::{ModelHealthMonitor, WatchConfig};
use serde::Serialize;

use crate::report::TextTable;
use crate::workload::{generate_single_table_workload, WorkloadConfig};

/// E10 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Base table rows.
    pub nrows: usize,
    /// Appended (drifted) rows as a fraction of the base.
    pub drift_fraction: f64,
    /// Distinct evaluation queries (replayed cyclically).
    pub num_queries: usize,
    /// Feedback observations per component before the drift point.
    pub stationary_obs: usize,
    /// Feedback observations per component after the drift point.
    pub drift_obs: usize,
    /// Estimators to watch (single-table-capable).
    pub kinds: Vec<EstimatorKind>,
    /// Monitor tuning.
    pub watch: WatchConfig,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        let f = crate::report::scale_factor();
        // The replay cycles a fixed set of distinct queries, so in the
        // stationary prefix the two drift windows see the same cycled
        // multiset and KS stays tiny (measured ceiling 0.10 across
        // scales), while a doubling of the table moves KS only to
        // ~0.29-0.33 (each query's truth grows, but the values stay
        // interleaved across the distribution's many octaves). 0.2
        // separates the two regimes with 2x margin on both sides.
        let mut watch = WatchConfig::default();
        watch.drift.ks_threshold = 0.2;
        Config {
            nrows: (10_000.0 * f) as usize,
            drift_fraction: 1.0,
            num_queries: (40.0 * f) as usize,
            stationary_obs: 200,
            drift_obs: 150,
            kinds: vec![EstimatorKind::Histogram, EstimatorKind::GbdtQd],
            watch,
            seed: 0xE10,
        }
    }
}

/// Everything the binary needs: the summary table, the live monitor (for
/// the report, series, and dashboard), the metrics context, and the
/// per-component observation index at which the drift began.
pub struct Outcome {
    /// Per-component summary table.
    pub table: TextTable,
    /// The monitor after the full replay.
    pub monitor: ModelHealthMonitor,
    /// Metrics context the monitor published into.
    pub obs: ObsContext,
    /// Observation index of the drift point (per component).
    pub drift_point: u64,
    /// Alarms raised during the stationary prefix (must be zero).
    pub stationary_alarms: usize,
}

/// JSON result shape for `results/exp_e10_drift_watch.json`.
#[derive(Debug, Serialize)]
pub struct Summary {
    /// Observation index of the drift point (per component).
    pub drift_point: u64,
    /// Alarms raised during the stationary prefix.
    pub stationary_alarms: usize,
    /// First-alarm observation index per component.
    pub first_alarm: BTreeMap<String, Option<u64>>,
    /// Final health name per component.
    pub health: BTreeMap<String, String>,
    /// Worst health across components.
    pub overall: String,
    /// The rendered summary table.
    pub table: TextTable,
}

/// Build the JSON summary from a finished run.
pub fn summarize(out: &Outcome) -> Summary {
    let report = out.monitor.report();
    Summary {
        drift_point: out.drift_point,
        stationary_alarms: out.stationary_alarms,
        first_alarm: report
            .components
            .iter()
            .map(|c| (c.name.clone(), c.first_alarm))
            .collect(),
        health: report
            .components
            .iter()
            .map(|c| (c.name.clone(), c.health.name().to_string()))
            .collect(),
        overall: report.overall().name().to_string(),
        table: out.table.clone(),
    }
}

/// Stream one phase of labeled feedback through the monitor: each
/// estimator sees its own (stale) estimate against the phase's truth.
fn replay_phase(
    monitor: &ModelHealthMonitor,
    estimators: &[(String, Arc<dyn CardEstimator>)],
    labeled: &[LabeledSubquery],
    observations: usize,
) {
    for i in 0..observations {
        let l = &labeled[i % labeled.len()];
        for (name, est) in estimators {
            let t0 = Instant::now();
            let predicted = est.estimate(&l.query, l.set);
            let plan_ns = t0.elapsed().as_nanos() as u64;
            monitor.observe_estimate(name, predicted, l.card);
            monitor.observe_latency(Some(plan_ns), Some(l.card));
        }
    }
}

/// Run E10: replay the E1 static→drifted feedback stream through the
/// model-health monitor and check the alarm discipline.
pub fn run_watched(cfg: &Config) -> Outcome {
    // The E1 worlds: a static correlated table, then the same table with
    // appended rows from a shifted distribution. Models fit the static
    // world and keep their stale view; truth moves under them.
    let base_cfg = SingleTableConfig {
        nrows: cfg.nrows.max(200),
        seed: cfg.seed,
        ..Default::default()
    };
    let mut catalog = Catalog::new();
    catalog.add_table(correlated_table("t", &base_cfg).unwrap());
    let catalog = Arc::new(catalog);
    let fit = FitContext::new(catalog.clone());
    let oracle = Arc::new(TrueCardOracle::new(catalog.clone()));

    let wcfg = WorkloadConfig {
        num_queries: cfg.num_queries.max(6),
        max_predicates: 2,
        seed: cfg.seed ^ 0x1,
        ..Default::default()
    };
    let train_q = generate_single_table_workload(&catalog, "t", &wcfg);
    let eval_q = generate_single_table_workload(
        &catalog,
        "t",
        &WorkloadConfig {
            seed: cfg.seed ^ 0x2,
            ..wcfg.clone()
        },
    );
    let train = label_workload(&oracle, &train_q, 1).unwrap();
    let static_eval = label_workload(&oracle, &eval_q, 1).unwrap();

    let drift_cfg = SingleTableConfig {
        nrows: ((cfg.nrows.max(200)) as f64 * cfg.drift_fraction) as usize + 50,
        skew: 0.2,
        correlation: 0.1,
        seed: cfg.seed ^ 0xD41F7,
        ..Default::default()
    };
    let mut drifted = (*catalog).clone();
    drifted
        .table_mut("t")
        .unwrap()
        .append(&correlated_table("t", &drift_cfg).unwrap())
        .unwrap();
    let drifted = Arc::new(drifted);
    let drift_oracle = Arc::new(TrueCardOracle::new(drifted.clone()));
    let drift_eval = label_workload(&drift_oracle, &eval_q, 1).unwrap();

    let estimators: Vec<(String, Arc<dyn CardEstimator>)> = cfg
        .kinds
        .iter()
        .map(|&kind| {
            let est: Arc<dyn CardEstimator> =
                Arc::from(build_estimator(kind, &fit, &oracle, &train));
            (format!("card:{}", est.name()), est)
        })
        .collect();

    let obs = ObsContext::enabled();
    let monitor = ModelHealthMonitor::new(cfg.watch.clone()).with_obs(obs.clone());

    // Stationary prefix: stale models over static truth. Nothing here
    // should trip an alarm.
    replay_phase(&monitor, &estimators, &static_eval, cfg.stationary_obs);
    let report = monitor.report();
    let stationary_alarms = report
        .components
        .iter()
        .filter(|c| c.first_alarm.is_some())
        .count();
    let drift_point = cfg.stationary_obs as u64;

    // The drift point: the same queries, truth now from the drifted
    // world. The detectors must notice — and only now.
    replay_phase(&monitor, &estimators, &drift_eval, cfg.drift_obs);

    let report = monitor.report();
    let mut table = TextTable::new(
        "E10: model-health watch on the E1 drift scenario",
        &[
            "Component",
            "obs",
            "drift-point",
            "first-alarm",
            "psi",
            "ks",
            "q95",
            "health",
        ],
    );
    for c in &report.components {
        if !c.name.starts_with("card:") {
            continue;
        }
        table.row(vec![
            c.name.clone(),
            c.observations.to_string(),
            drift_point.to_string(),
            c.first_alarm.map_or("-".into(), |i| i.to_string()),
            format!("{:.3}", c.psi),
            format!("{:.3}", c.ks),
            c.q95.map_or("-".into(), |q| format!("{q:.2}")),
            c.health.to_string(),
        ]);
    }

    Outcome {
        table,
        monitor,
        obs,
        drift_point,
        stationary_alarms,
    }
}

/// Run E10 and return just the summary table.
pub fn run(cfg: &Config) -> TextTable {
    run_watched(cfg).table
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqo_watch::HealthState;

    #[test]
    fn e10_alarm_fires_only_after_the_drift_point() {
        let cfg = Config {
            nrows: 1500,
            num_queries: 20,
            stationary_obs: 160,
            drift_obs: 120,
            kinds: vec![EstimatorKind::Histogram],
            ..Default::default()
        };
        let out = run_watched(&cfg);
        // Zero alarms across the whole stationary prefix.
        assert_eq!(out.stationary_alarms, 0, "alarm before the drift point");
        let report = out.monitor.report();
        let card = report
            .components
            .iter()
            .find(|c| c.name.starts_with("card:"))
            .expect("watched component");
        // The alarm fired, and only after the drift point.
        let first = card.first_alarm.expect("no alarm after drift");
        assert!(
            first > out.drift_point,
            "alarm at {first} not after drift point {}",
            out.drift_point
        );
        // The distribution shift is confirmed as drift, not just
        // degradation, and it is the worst state in the report.
        assert_eq!(card.health, HealthState::Drifted);
        assert_eq!(report.overall(), HealthState::Drifted);
        // The series behind the dashboard saw both phases.
        let series = out.monitor.series();
        assert!(series.len() as u64 >= card.observations);
    }
}
