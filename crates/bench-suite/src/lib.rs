//! # lqo-bench-suite
//!
//! The benchmark harness: SPJ workload generators over the synthetic
//! schemas, q-error metrics, text-table/JSON reporting, and one experiment
//! module per reproduced table/figure (see DESIGN.md §4):
//!
//! | id | binary | reproduces |
//! |----|--------|------------|
//! | T1 | `exp_t1_taxonomy` | paper Table 1, executed |
//! | E1 | `exp_e1_single_table` | "Are we ready?" static/dynamic study |
//! | E2 | `exp_e2_design_space` | design-space exploration |
//! | E3 | `exp_e3_injection` | STATS-CEB end-to-end injection |
//! | E4 | `exp_e4_optimizers` | Bao/Lero/Neo/Balsa vs native |
//! | E5 | `exp_e5_regression` | Eraser regression elimination |
//! | E6 | `exp_e6_join_order` | learned join-order search |
//! | E7 | `exp_e7_cost_models` | learned cost models |
//! | E8 | `exp_e8_pilotscope` | PilotScope overhead & drivers |
//! | E9 | `exp_e9_chaos` | fault injection & guarded degradation |
//! | E10 | `exp_e10_drift_watch` | lqo-watch model-health monitor on the E1 drift scenario |
//! | E11 | `exp_e11_parallel_scaling` | morsel-driven parallel execution scaling |
//! | E12 | `exp_e12_cache` | plan & inference caching on repeated templates |
//! | BENCH | `exp_bench_core` | continuous perf baseline vs committed `BENCH_core.json` |

#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod report;
pub mod workload;

pub use metrics::QErrorSummary;
pub use report::TextTable;
pub use workload::{generate_workload, WorkloadConfig};
