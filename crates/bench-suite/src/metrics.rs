//! Accuracy summaries used across the experiments.

use lqo_ml::metrics::{geometric_mean, percentile, q_error};
use serde::Serialize;

/// Distribution summary of q-errors, the standard columns of every
/// cardinality-estimation evaluation.
#[derive(Debug, Clone, Serialize)]
pub struct QErrorSummary {
    /// Number of evaluated (sub-)queries.
    pub count: usize,
    /// Median q-error.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst case.
    pub max: f64,
    /// Geometric mean.
    pub geo_mean: f64,
}

impl QErrorSummary {
    /// Summarize paired `(estimate, truth)` values.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> QErrorSummary {
        let qs: Vec<f64> = pairs.iter().map(|&(e, t)| q_error(e, t)).collect();
        Self::from_q_errors(&qs)
    }

    /// Summarize precomputed q-errors.
    pub fn from_q_errors(qs: &[f64]) -> QErrorSummary {
        assert!(!qs.is_empty(), "no q-errors to summarize");
        QErrorSummary {
            count: qs.len(),
            median: percentile(qs, 50.0),
            p90: percentile(qs, 90.0),
            p95: percentile(qs, 95.0),
            p99: percentile(qs, 99.0),
            max: percentile(qs, 100.0),
            geo_mean: geometric_mean(qs),
        }
    }

    /// Render as fixed columns `[median, p95, max]` for report tables.
    pub fn cells(&self) -> Vec<String> {
        vec![
            format!("{:.2}", self.median),
            format!("{:.2}", self.p95),
            format!("{:.1}", self.max),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_distribution() {
        let pairs: Vec<(f64, f64)> = (1..=100).map(|i| (i as f64, 1.0)).collect();
        let s = QErrorSummary::from_pairs(&pairs);
        assert_eq!(s.count, 100);
        assert!((s.median - 50.5).abs() < 1.0);
        assert_eq!(s.max, 100.0);
        assert!(s.p95 > s.p90);
        assert!(s.p99 > s.p95);
        assert!(s.geo_mean > 1.0 && s.geo_mean < s.median * 1.2);
    }

    #[test]
    fn perfect_estimates() {
        let pairs = vec![(10.0, 10.0); 5];
        let s = QErrorSummary::from_pairs(&pairs);
        assert_eq!(s.median, 1.0);
        assert_eq!(s.max, 1.0);
    }

    #[test]
    fn cells_render() {
        let s = QErrorSummary::from_q_errors(&[1.0, 2.0, 3.0]);
        assert_eq!(s.cells().len(), 3);
    }
}
