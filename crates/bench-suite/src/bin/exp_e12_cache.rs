//! Experiment binary — see `lqo_bench_suite::experiments::e12_cache`.
//! Scale with `LQO_SCALE=small|default|large`.
//!
//! Artifacts: `results/exp_e12_cache.json` (summary) and
//! `results/exp_e12_cache.jsonl` (one record per (mode, round), the
//! speedup curve).

use lqo_bench_suite::experiments::e12_cache::{run, to_jsonl, Config};
use lqo_bench_suite::report::{dump_json, dump_text};

fn main() {
    let cfg = Config::default();
    eprintln!("running e12_cache with {cfg:?}");
    let out = run(&cfg);
    println!("{}", out.table.render());

    assert!(
        out.reduction >= 5.0,
        "expected >=5x estimator-call reduction on the repeated-template \
         workload, got {:.2}x ({} uncached vs {} cached calls)",
        out.reduction,
        out.uncached_calls,
        out.cached_calls
    );
    eprintln!(
        "estimator calls: {} uncached -> {} cached ({:.1}x reduction), \
         plans byte-identical in every cell",
        out.uncached_calls, out.cached_calls, out.reduction
    );

    dump_json("exp_e12_cache", &out);
    dump_text("exp_e12_cache.jsonl", &to_jsonl(&out.points));
    eprintln!(
        "wrote {} round records to results/exp_e12_cache.jsonl",
        out.points.len()
    );
}
