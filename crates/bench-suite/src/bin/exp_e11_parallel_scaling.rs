//! Experiment binary — see
//! `lqo_bench_suite::experiments::e11_parallel_scaling`.
//! Scale with `LQO_SCALE=small|default|large`.
//!
//! Artifacts: `results/exp_e11_parallel_scaling.json` (summary) and
//! `results/exp_e11_scaling.jsonl` (one record per thread count, the
//! speedup curve).

use lqo_bench_suite::experiments::e11_parallel_scaling::{run, to_jsonl, Config};
use lqo_bench_suite::report::{dump_json, dump_text};

fn main() {
    let cfg = Config::default();
    eprintln!("running e11_parallel_scaling with {cfg:?}");
    let out = run(&cfg);
    println!("{}", out.table.render());

    // Timing assertion only where the hardware can actually exhibit the
    // speedup; byte identity was already asserted inside `run` for every
    // cell regardless.
    if out.host_threads >= 4 {
        let at4 = out
            .points
            .iter()
            .find(|p| p.threads == 4)
            .expect("4-thread point");
        assert!(
            at4.speedup >= 2.0,
            "expected >=2x speedup at 4 threads on a {}-thread host, got {:.2}x",
            out.host_threads,
            at4.speedup
        );
    } else {
        eprintln!(
            "host has {} hardware thread(s): skipping the >=2x speedup assertion \
             (byte identity still verified at every thread count)",
            out.host_threads
        );
    }

    dump_json("exp_e11_parallel_scaling", &out);
    dump_text("exp_e11_scaling.jsonl", &to_jsonl(&out.points));
    eprintln!(
        "wrote {} scaling points to results/exp_e11_scaling.jsonl",
        out.points.len()
    );
}
