//! Experiment binary — see `lqo_bench_suite::experiments::e2_design_space`.
//! Scale with `LQO_SCALE=small|default|large`.

use lqo_bench_suite::experiments::e2_design_space::{run, Config};
use lqo_bench_suite::report::dump_json;

fn main() {
    let cfg = Config::default();
    eprintln!("running e2_design_space with {cfg:?}");
    let (grid, ablation) = run(&cfg);
    println!("{}", grid.render());
    println!("{}", ablation.render());
    dump_json("exp_e2_design_space", &(grid, ablation));
}
