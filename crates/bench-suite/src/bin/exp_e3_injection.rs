//! Experiment binary — see `lqo_bench_suite::experiments::e3_injection`.
//! Scale with `LQO_SCALE=small|default|large`.

use lqo_bench_suite::experiments::e3_injection::{run, Config};
use lqo_bench_suite::report::dump_json;

fn main() {
    let cfg = Config::default();
    eprintln!("running e3_injection with {cfg:?}");
    let table = run(&cfg);
    println!("{}", table.render());
    dump_json("exp_e3_injection", &table);
}
