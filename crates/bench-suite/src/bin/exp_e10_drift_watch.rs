//! Experiment binary — see `lqo_bench_suite::experiments::e10_drift_watch`.
//! Scale with `LQO_SCALE=small|default|large`.
//!
//! Artifacts: `results/exp_e10_drift_watch.json` (summary),
//! `results/exp_e10_series.jsonl` (monitor time series), and
//! `results/dashboard.html` (self-contained model-health dashboard).

use lqo_bench_suite::experiments::e10_drift_watch::{run_watched, summarize, Config};
use lqo_bench_suite::report::{dump_json, dump_text, obs_report};
use lqo_watch::{render_dashboard, render_health_ansi, write_series_jsonl};

fn main() {
    let cfg = Config::default();
    eprintln!("running e10_drift_watch with {cfg:?}");
    let out = run_watched(&cfg);
    println!("{}", out.table.render());

    let report = out.monitor.report();
    println!("{}", render_health_ansi(&report));
    println!("{}", obs_report(&out.obs));

    assert_eq!(
        out.stationary_alarms, 0,
        "model-health alarm fired before the drift point"
    );
    for c in report
        .components
        .iter()
        .filter(|c| c.name.starts_with("card:"))
    {
        let first = c
            .first_alarm
            .unwrap_or_else(|| panic!("{}: no alarm after the drift point", c.name));
        assert!(
            first > out.drift_point,
            "{}: alarm at {first} not after drift point {}",
            c.name,
            out.drift_point
        );
    }

    dump_json("exp_e10_drift_watch", &summarize(&out));
    let series = out.monitor.series();
    dump_text("exp_e10_series.jsonl", &write_series_jsonl(&series));
    dump_text("dashboard.html", &render_dashboard(&report, &series));
    eprintln!(
        "wrote {} series samples to results/exp_e10_series.jsonl and results/dashboard.html",
        series.len()
    );
}
