//! Experiment binary — see `lqo_bench_suite::experiments::e7_cost_models`.
//! Scale with `LQO_SCALE=small|default|large`.

use lqo_bench_suite::experiments::e7_cost_models::{run, Config};
use lqo_bench_suite::report::dump_json;

fn main() {
    let cfg = Config::default();
    eprintln!("running e7_cost_models with {cfg:?}");
    let table = run(&cfg);
    println!("{}", table.render());
    dump_json("exp_e7_cost_models", &table);
}
