//! Experiment binary — see `lqo_bench_suite::experiments::e13_reopt`.
//! Scale with `LQO_SCALE=small|default|large`.
//!
//! Artifacts: `results/exp_e13_reopt.json` (summary) and
//! `results/exp_e13_reopt.jsonl` (one record per replayed query:
//! work units under accurate / stale / re-optimized execution, bounded
//! re-planning work vs the guard budget, recovery latency, end-state
//! plan quality).

use lqo_bench_suite::experiments::e13_reopt::{run, to_jsonl, Config};
use lqo_bench_suite::report::{dump_json, dump_text};

fn main() {
    let cfg = Config::default();
    eprintln!("running e13_reopt with {cfg:?}");
    let out = run(&cfg);
    println!("{}", out.table.render());

    let poisoned = &out.points[out.poisoned_index];
    assert!(
        poisoned.work_reopt < poisoned.work_stale,
        "re-optimization did not beat the stale plan: {} vs {} work units",
        poisoned.work_reopt,
        poisoned.work_stale
    );
    assert!(
        poisoned.replan_work <= poisoned.replan_budget,
        "re-planning work {} exceeded the guard budget {}",
        poisoned.replan_work,
        poisoned.replan_budget
    );
    eprintln!(
        "poisoned query {}: stale {:.0} -> reopt {:.0} work units \
         (ceiling {:.0}; {:.0} of {:.0} re-planning budget spent, \
         recovery in {:.1}ms)",
        poisoned.index,
        poisoned.work_stale,
        poisoned.work_reopt,
        poisoned.work_opt,
        poisoned.replan_work,
        poisoned.replan_budget,
        poisoned.wall_reopt_s * 1e3
    );

    dump_json("exp_e13_reopt", &out);
    dump_text("exp_e13_reopt.jsonl", &to_jsonl(&out.points));
    eprintln!(
        "wrote {} query records to results/exp_e13_reopt.jsonl",
        out.points.len()
    );
}
