//! Continuous perf-baseline harness — see
//! `lqo_bench_suite::experiments::bench_core`. Scale the iteration count
//! with `LQO_SCALE=small|default|large`; the workload itself is pinned.
//!
//! Artifacts: `results/exp_bench_core.json` (the fresh report),
//! `results/bench_core.folded` (flamegraph-ready folded stacks), and the
//! ANSI top-phases report on stdout. With `BLESS_BENCH=1` the fresh
//! report replaces the committed baseline `BENCH_core.json` at the repo
//! root; otherwise the run compares against it and exits non-zero on a
//! confirmed regression (the CI perf-smoke gate).

use lqo_bench_suite::experiments::bench_core::{self, Config};
use lqo_bench_suite::report::{dump_json, dump_text};

fn main() {
    let cfg = Config::default();
    eprintln!("running bench_core with {cfg:?}");
    let out = bench_core::run(&cfg);
    println!("{}", out.table.render());
    println!("{}", out.top);
    dump_json("exp_bench_core", &out.report);
    dump_text("bench_core.folded", &out.folded);
    eprintln!(
        "wrote results/exp_bench_core.json and {} folded stack lines",
        out.folded.lines().count()
    );

    let path = bench_core::baseline_path();
    if std::env::var("BLESS_BENCH").as_deref() == Ok("1") {
        let json = serde_json::to_string_pretty(&out.report).expect("serialize report");
        std::fs::write(path, json + "\n").expect("write baseline");
        eprintln!("blessed baseline -> {path}");
        return;
    }
    let baseline = match std::fs::read_to_string(path) {
        Ok(text) => match bench_core::parse_report(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: committed baseline {path} is malformed: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!(
                "error: no committed baseline at {path} ({e}); \
                 run with BLESS_BENCH=1 to create one"
            );
            std::process::exit(1);
        }
    };
    match bench_core::compare(&baseline, &out.report) {
        Ok(cmp) => {
            eprintln!("machine factor {:.3}", cmp.machine_factor);
            for line in &cmp.lines {
                eprintln!("  {line}");
            }
            if cmp.regressions.is_empty() {
                eprintln!("bench_core: within thresholds of the committed baseline");
            } else {
                for r in &cmp.regressions {
                    eprintln!("REGRESSION: {r}");
                }
                eprintln!(
                    "bench_core: {} confirmed regression(s); \
                     bless with BLESS_BENCH=1 only if intended",
                    cmp.regressions.len()
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: cannot compare against baseline: {e}");
            std::process::exit(1);
        }
    }
}
