//! Experiment binary — see `lqo_bench_suite::experiments::e9_chaos`.
//! Scale with `LQO_SCALE=small|default|large`.

use lqo_bench_suite::experiments::e9_chaos::{
    run_incident_chaos, run_reopt_chaos, run_traced, run_worker_chaos, Config,
};
use lqo_bench_suite::report::{dump_json, dump_text, obs_report};
use lqo_flight::{render_postmortem, write_bundles_jsonl};
use lqo_obs::export::write_jsonl;

fn main() {
    let cfg = Config::default();
    eprintln!("running e9_chaos with {cfg:?}");
    // Injected panics are part of the experiment; keep stderr readable.
    std::panic::set_hook(Box::new(|_| {}));
    let (table, obs) = run_traced(&cfg);
    let (worker_table, _worker_obs) = run_worker_chaos(&cfg);
    let (reopt_table, _reopt_obs) = run_reopt_chaos(&cfg);
    let (incident_table, bundles) = run_incident_chaos(&cfg);
    let _ = std::panic::take_hook();
    println!("{}", table.render());
    println!("{}", worker_table.render());
    println!("{}", reopt_table.render());
    println!("{}", incident_table.render());
    // Worked example: the postmortem for the first captured incident.
    if let Some(b) = bundles.first() {
        println!("{}", render_postmortem(b, true));
    }
    println!("{}", obs_report(&obs));
    dump_json("exp_e9_chaos", &table);
    dump_json("exp_e9_worker_chaos", &worker_table);
    dump_json("exp_e9_reopt_chaos", &reopt_table);
    dump_json("exp_e9_incident_chaos", &incident_table);
    dump_text("exp_e9_incidents.jsonl", &write_bundles_jsonl(&bundles));
    eprintln!(
        "wrote {} incident bundles to results/exp_e9_incidents.jsonl",
        bundles.len()
    );
    let traces = obs.take_finished_traces();
    dump_text("exp_e9_traces.jsonl", &write_jsonl(&traces));
    eprintln!(
        "wrote {} query traces to results/exp_e9_traces.jsonl",
        traces.len()
    );
}
