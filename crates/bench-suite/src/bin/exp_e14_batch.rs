//! Experiment binary — see `lqo_bench_suite::experiments::e14_batch`.
//! Scale with `LQO_SCALE=small|default|large`.
//!
//! Artifacts: `results/exp_e14_batch.json` (summary) and
//! `results/exp_e14_batch.jsonl` (one record per mode, the
//! batched-vs-serial speedup curve).

use lqo_bench_suite::experiments::e14_batch::{run, to_jsonl, Config};
use lqo_bench_suite::report::{dump_json, dump_text};

fn main() {
    let cfg = Config::default();
    eprintln!("running e14_batch with {cfg:?}");
    let out = run(&cfg);
    println!("{}", out.table.render());

    // Timing assertion only at full scale, where iterations are long
    // enough for the medians to dominate jitter; byte identity was
    // already asserted inside `run` for every cell regardless.
    if out.full_scale {
        let best = out
            .points
            .iter()
            .filter(|p| p.mode.starts_with("batched:"))
            .map(|p| p.speedup)
            .fold(0.0f64, f64::max);
        assert!(
            best >= 1.0,
            "expected the batched executor to match or beat serial at some \
             batch size, got best {best:.2}x"
        );
    } else {
        eprintln!(
            "reduced scale: skipping the speedup assertion \
             (byte identity still verified at every batch size)"
        );
    }

    dump_json("exp_e14_batch", &out);
    dump_text("exp_e14_batch.jsonl", &to_jsonl(&out.points));
    eprintln!(
        "wrote {} batch points to results/exp_e14_batch.jsonl",
        out.points.len()
    );
}
