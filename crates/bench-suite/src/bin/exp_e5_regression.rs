//! Experiment binary — see `lqo_bench_suite::experiments::e5_regression`.
//! Scale with `LQO_SCALE=small|default|large`.

use lqo_bench_suite::experiments::e5_regression::{run_traced, Config};
use lqo_bench_suite::report::{dump_json, dump_text, obs_report};
use lqo_obs::export::write_jsonl;

fn main() {
    let cfg = Config::default();
    eprintln!("running e5_regression with {cfg:?}");
    let (table, obs) = run_traced(&cfg);
    println!("{}", table.render());
    println!("{}", obs_report(&obs));
    dump_json("exp_e5_regression", &table);
    let traces = obs.take_finished_traces();
    dump_text("exp_e5_traces.jsonl", &write_jsonl(&traces));
    eprintln!(
        "wrote {} query traces to results/exp_e5_traces.jsonl",
        traces.len()
    );
}
