//! Experiment binary — see `lqo_bench_suite::experiments::e5_regression`.
//! Scale with `LQO_SCALE=small|default|large`.

use lqo_bench_suite::experiments::e5_regression::{run, Config};
use lqo_bench_suite::report::dump_json;

fn main() {
    let cfg = Config::default();
    eprintln!("running e5_regression with {cfg:?}");
    let table = run(&cfg);
    println!("{}", table.render());
    dump_json("exp_e5_regression", &table);
}
