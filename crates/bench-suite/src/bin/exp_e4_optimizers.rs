//! Experiment binary — see `lqo_bench_suite::experiments::e4_optimizers`.
//! Scale with `LQO_SCALE=small|default|large`.

use lqo_bench_suite::experiments::e4_optimizers::{run, Config};
use lqo_bench_suite::report::dump_json;

fn main() {
    let cfg = Config::default();
    eprintln!("running e4_optimizers with {cfg:?}");
    let table = run(&cfg);
    println!("{}", table.render());
    dump_json("exp_e4_optimizers", &table);
}
