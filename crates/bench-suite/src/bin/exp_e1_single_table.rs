//! Experiment binary — see `lqo_bench_suite::experiments::e1_single_table`.
//! Scale with `LQO_SCALE=small|default|large`.

use lqo_bench_suite::experiments::e1_single_table::{run_traced, Config};
use lqo_bench_suite::report::{dump_json, dump_text, obs_report};
use lqo_obs::export::write_jsonl;

fn main() {
    let cfg = Config::default();
    eprintln!("running e1_single_table with {cfg:?}");
    let (table, obs) = run_traced(&cfg);
    println!("{}", table.render());
    println!("{}", obs_report(&obs));
    dump_json("exp_e1_single_table", &table);
    let traces = obs.take_finished_traces();
    dump_text("exp_e1_traces.jsonl", &write_jsonl(&traces));
    eprintln!(
        "wrote {} estimate traces to results/exp_e1_traces.jsonl",
        traces.len()
    );
}
