//! Experiment binary — see `lqo_bench_suite::experiments::e1_single_table`.
//! Scale with `LQO_SCALE=small|default|large`.

use lqo_bench_suite::experiments::e1_single_table::{run, Config};
use lqo_bench_suite::report::dump_json;

fn main() {
    let cfg = Config::default();
    eprintln!("running e1_single_table with {cfg:?}");
    let table = run(&cfg);
    println!("{}", table.render());
    dump_json("exp_e1_single_table", &table);
}
