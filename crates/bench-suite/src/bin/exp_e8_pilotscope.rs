//! Experiment binary — see `lqo_bench_suite::experiments::e8_pilotscope`.
//! Scale with `LQO_SCALE=small|default|large`.

use lqo_bench_suite::experiments::e8_pilotscope::{run_traced, Config};
use lqo_bench_suite::report::{dump_json, dump_text, obs_report};
use lqo_obs::export::write_jsonl;

fn main() {
    let cfg = Config::default();
    eprintln!("running e8_pilotscope with {cfg:?}");
    let (table, obs) = run_traced(&cfg);
    println!("{}", table.render());
    println!("{}", obs_report(&obs));
    dump_json("exp_e8_pilotscope", &table);
    let traces = obs.take_finished_traces();
    dump_text("exp_e8_traces.jsonl", &write_jsonl(&traces));
    eprintln!(
        "wrote {} query traces to results/exp_e8_traces.jsonl",
        traces.len()
    );
}
