//! Experiment binary — see `lqo_bench_suite::experiments::e8_pilotscope`.
//! Scale with `LQO_SCALE=small|default|large`.

use lqo_bench_suite::experiments::e8_pilotscope::{run, Config};
use lqo_bench_suite::report::dump_json;

fn main() {
    let cfg = Config::default();
    eprintln!("running e8_pilotscope with {cfg:?}");
    let table = run(&cfg);
    println!("{}", table.render());
    dump_json("exp_e8_pilotscope", &table);
}
