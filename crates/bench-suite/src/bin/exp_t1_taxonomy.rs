//! Experiment binary — see `lqo_bench_suite::experiments::t1_taxonomy`.
//! Scale with `LQO_SCALE=small|default|large`.

use lqo_bench_suite::experiments::t1_taxonomy::{run, Config};
use lqo_bench_suite::report::dump_json;

fn main() {
    let cfg = Config::default();
    eprintln!("running t1_taxonomy with {cfg:?}");
    let table = run(&cfg);
    println!("{}", table.render());
    dump_json("exp_t1_taxonomy", &table);
}
