//! Experiment binary — see `lqo_bench_suite::experiments::e6_join_order`.
//! Scale with `LQO_SCALE=small|default|large`.

use lqo_bench_suite::experiments::e6_join_order::{run, Config};
use lqo_bench_suite::report::dump_json;

fn main() {
    let cfg = Config::default();
    eprintln!("running e6_join_order with {cfg:?}");
    let table = run(&cfg);
    println!("{}", table.render());
    dump_json("exp_e6_join_order", &table);
}
