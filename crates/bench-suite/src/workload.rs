//! SPJ workload generation: random connected FK-join queries with
//! data-derived predicates, in the style of JOB and STATS-CEB.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lqo_engine::query::expr::{CmpOp, ColRef, JoinCond, Predicate, TableRef};
use lqo_engine::{Catalog, DataType, SpjQuery, Value};

/// Workload shape knobs.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of queries.
    pub num_queries: usize,
    /// Minimum joined tables per query.
    pub min_tables: usize,
    /// Maximum joined tables per query.
    pub max_tables: usize,
    /// Maximum filter predicates per query (at least 1).
    pub max_predicates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_queries: 50,
            min_tables: 2,
            max_tables: 5,
            max_predicates: 3,
            seed: 0xC0FFEE,
        }
    }
}

/// Generate a workload over a catalog's FK join graph. Every query is
/// validated and guaranteed connected; predicates compare against values
/// sampled from the data so selectivities are non-degenerate.
pub fn generate_workload(catalog: &Catalog, cfg: &WorkloadConfig) -> Vec<SpjQuery> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.num_queries);
    let mut attempts = 0;
    while out.len() < cfg.num_queries && attempts < cfg.num_queries * 50 {
        attempts += 1;
        if let Some(q) = generate_one(catalog, cfg, &mut rng) {
            if q.validate(catalog).is_ok() {
                out.push(q);
            }
        }
    }
    out
}

fn generate_one(catalog: &Catalog, cfg: &WorkloadConfig, rng: &mut StdRng) -> Option<SpjQuery> {
    let fks = catalog.foreign_keys();
    if fks.is_empty() {
        return None;
    }
    let target = rng.gen_range(cfg.min_tables..=cfg.max_tables);

    // Grow a connected table set along FK edges.
    let start = &fks[rng.gen_range(0..fks.len())];
    let mut tables: Vec<String> = vec![start.table.clone()];
    let mut joins: Vec<JoinCond> = Vec::new();
    let alias_of = |tables: &[String], name: &str| -> Option<String> {
        tables.iter().find(|t| *t == name).cloned()
    };
    let mut guard = 0;
    while tables.len() < target && guard < 40 {
        guard += 1;
        // Pick an edge touching the current set.
        let candidates: Vec<&lqo_engine::schema::ForeignKey> = fks
            .iter()
            .filter(|fk| tables.contains(&fk.table) || tables.contains(&fk.ref_table))
            .collect();
        if candidates.is_empty() {
            break;
        }
        let fk = candidates[rng.gen_range(0..candidates.len())];
        // Determine which side is new.
        let (new_table, new_col, old_table, old_col) = if tables.contains(&fk.table) {
            (&fk.ref_table, &fk.ref_column, &fk.table, &fk.column)
        } else {
            (&fk.table, &fk.column, &fk.ref_table, &fk.ref_column)
        };
        let old_alias = alias_of(&tables, old_table)?;
        if tables.contains(new_table) {
            // Both endpoints present: add the condition if not duplicate.
            let cond = JoinCond::new(
                ColRef::new(new_table.clone(), new_col.clone()),
                ColRef::new(old_alias, old_col.clone()),
            );
            let dup = joins.iter().any(|j| {
                (j.left == cond.left && j.right == cond.right)
                    || (j.left == cond.right && j.right == cond.left)
            });
            if !dup && rng.gen_bool(0.4) {
                joins.push(cond);
            }
            continue;
        }
        joins.push(JoinCond::new(
            ColRef::new(new_table.clone(), new_col.clone()),
            ColRef::new(old_alias, old_col.clone()),
        ));
        tables.push(new_table.clone());
    }
    if tables.len() < cfg.min_tables {
        return None;
    }

    // Predicates: sample columns and literal values from the data.
    let npreds = rng.gen_range(1..=cfg.max_predicates.max(1));
    let mut predicates = Vec::new();
    let mut guard = 0;
    while predicates.len() < npreds && guard < 30 {
        guard += 1;
        let tname = &tables[rng.gen_range(0..tables.len())];
        let Ok(table) = catalog.table(tname) else {
            continue;
        };
        if table.nrows() == 0 {
            continue;
        }
        let ci = rng.gen_range(0..table.schema.arity());
        if table.schema.primary_key == Some(ci) {
            continue;
        }
        let def = &table.schema.columns[ci];
        let row = rng.gen_range(0..table.nrows());
        let value = table.column(ci).value(row);
        let op = match def.dtype {
            DataType::Text => CmpOp::Eq,
            _ => match rng.gen_range(0..5) {
                0 => CmpOp::Eq,
                1 => CmpOp::Lt,
                2 => CmpOp::Le,
                3 => CmpOp::Gt,
                _ => CmpOp::Ge,
            },
        };
        // Equality on high-cardinality float columns is degenerate.
        if def.dtype == DataType::Float && op == CmpOp::Eq {
            continue;
        }
        let value = match value {
            Value::Float(f) => Value::Float((f * 100.0).round() / 100.0),
            v => v,
        };
        predicates.push(Predicate::new(
            ColRef::new(tname.clone(), def.name.clone()),
            op,
            value,
        ));
    }
    if predicates.is_empty() {
        return None;
    }

    Some(SpjQuery::new(
        tables.into_iter().map(TableRef::bare).collect(),
        joins,
        predicates,
    ))
}

/// Generate a single-table workload (experiments E1/E2): 1–`max_predicates`
/// data-derived predicates over one table, no joins.
pub fn generate_single_table_workload(
    catalog: &Catalog,
    table: &str,
    cfg: &WorkloadConfig,
) -> Vec<SpjQuery> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.num_queries);
    let Ok(t) = catalog.table(table) else {
        return out;
    };
    let mut attempts = 0;
    while out.len() < cfg.num_queries && attempts < cfg.num_queries * 50 {
        attempts += 1;
        let npreds = rng.gen_range(1..=cfg.max_predicates.max(1));
        let mut predicates = Vec::new();
        let mut guard = 0;
        while predicates.len() < npreds && guard < 30 {
            guard += 1;
            let ci = rng.gen_range(0..t.schema.arity());
            if t.schema.primary_key == Some(ci) {
                continue;
            }
            let def = &t.schema.columns[ci];
            let row = rng.gen_range(0..t.nrows());
            let value = t.column(ci).value(row);
            let op = match def.dtype {
                DataType::Text => CmpOp::Eq,
                DataType::Float => {
                    [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][rng.gen_range(0..4)]
                }
                DataType::Int => {
                    [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][rng.gen_range(0..5)]
                }
            };
            predicates.push(Predicate::new(
                ColRef::new(table.to_string(), def.name.clone()),
                op,
                value,
            ));
        }
        if predicates.is_empty() {
            continue;
        }
        let q = SpjQuery::new(vec![TableRef::bare(table)], Vec::new(), predicates);
        if q.validate(catalog).is_ok() {
            out.push(q);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqo_engine::datagen::{imdb_like, stats_like};
    use lqo_engine::query::JoinGraph;

    #[test]
    fn generates_requested_count_and_shapes() {
        let catalog = stats_like(100, 1).unwrap();
        let cfg = WorkloadConfig {
            num_queries: 30,
            min_tables: 2,
            max_tables: 4,
            ..Default::default()
        };
        let w = generate_workload(&catalog, &cfg);
        assert_eq!(w.len(), 30);
        for q in &w {
            assert!(q.num_tables() >= 2 && q.num_tables() <= 4);
            assert!(!q.predicates.is_empty());
            q.validate(&catalog).unwrap();
            let g = JoinGraph::new(q);
            assert!(g.is_connected(q.all_tables()), "disconnected: {q}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let catalog = imdb_like(80, 2).unwrap();
        let cfg = WorkloadConfig::default();
        let a = generate_workload(&catalog, &cfg);
        let b = generate_workload(&catalog, &cfg);
        assert_eq!(a, b);
        let c = generate_workload(&catalog, &WorkloadConfig { seed: 999, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn single_table_workload() {
        let mut catalog = Catalog::new();
        catalog.add_table(
            lqo_engine::datagen::correlated_table(
                "t",
                &lqo_engine::datagen::SingleTableConfig {
                    nrows: 500,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let w = generate_single_table_workload(
            &catalog,
            "t",
            &WorkloadConfig {
                num_queries: 15,
                ..Default::default()
            },
        );
        assert_eq!(w.len(), 15);
        for q in &w {
            assert_eq!(q.num_tables(), 1);
            assert!(q.joins.is_empty());
            assert!(!q.predicates.is_empty());
        }
    }

    #[test]
    fn queries_have_nonzero_results_sometimes() {
        let catalog = std::sync::Arc::new(stats_like(100, 3).unwrap());
        let oracle = lqo_engine::TrueCardOracle::new(catalog.clone());
        let w = generate_workload(
            &catalog,
            &WorkloadConfig {
                num_queries: 20,
                ..Default::default()
            },
        );
        let nonzero = w
            .iter()
            .filter(|q| oracle.true_card_full(q).unwrap() > 0)
            .count();
        assert!(nonzero >= w.len() / 2, "only {nonzero} non-empty queries");
    }
}
