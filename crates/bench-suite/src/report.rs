//! Plain-text table rendering and JSON result dumping for the experiment
//! binaries.

use std::path::Path;

use serde::Serialize;

/// A padded monospace table.
#[derive(Debug, Clone, Serialize)]
pub struct TextTable {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            (0..ncols)
                .map(|i| format!(" {:<width$} ", cells[i], width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let mut out = format!("== {} ==\n", self.title);
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Write any serializable result as JSON next to the experiment output
/// (`results/<name>.json`); creates the directory if needed. The write is
/// crash-safe (temp file + atomic rename, via
/// [`lqo_obs::export::atomic_write`]) so a killed run never leaves a
/// truncated artifact. Errors are reported but non-fatal — the printed
/// table is the primary artifact.
pub fn dump_json<T: Serialize>(name: &str, value: &T) {
    let path = Path::new("results").join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = lqo_obs::export::atomic_write(&path, &json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Write a raw text artifact (e.g. a JSONL trace dump or a rendered
/// metrics table) to `results/<name>`; creates the directory if needed.
/// Crash-safe and non-fatal on error, like [`dump_json`].
pub fn dump_text(name: &str, contents: &str) {
    let path = Path::new("results").join(name);
    if let Err(e) = lqo_obs::export::atomic_write(&path, contents) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

/// Render an observability context as a report section: the metrics
/// snapshot table, then an EXPLAIN ANALYZE-style rendering of the last
/// finished query trace as a worked example. Empty when disabled.
pub fn obs_report(obs: &lqo_obs::ObsContext) -> String {
    let mut out = String::new();
    if let Some(metrics) = obs.metrics() {
        out.push_str("== observability: metrics ==\n");
        out.push_str(&lqo_obs::render::render_metrics(&metrics.snapshot()));
    }
    if let Some(trace) = obs.finished_traces().last() {
        out.push_str("== observability: last query trace ==\n");
        out.push_str(&lqo_obs::render::render_trace(trace));
    }
    out
}

/// Experiment scale taken from the `LQO_SCALE` environment variable
/// (`small`, `default`, `large`), controlling data size and query counts
/// so the same binaries serve smoke tests and full runs.
pub fn scale_factor() -> f64 {
    match std::env::var("LQO_SCALE").as_deref() {
        Ok("small") => 0.3,
        Ok("large") => 3.0,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_pads_columns() {
        let mut t = TextTable::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        // All data lines have equal width.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
