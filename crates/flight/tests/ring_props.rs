//! Property tests for the flight ring: drain order respects per-producer
//! sequence numbers under arbitrary interleavings, capacities, and
//! concurrent publication.

use std::sync::Arc;

use proptest::prelude::*;

use lqo_flight::{FlightEvent, FlightRing, Producer};

fn ev(tag: u64) -> FlightEvent {
    FlightEvent::Cache {
        cache: "plan".to_string(),
        event: "hit".to_string(),
        detail: format!("k{tag}"),
    }
}

/// Assert the two ring invariants on a drained snapshot: global seqs
/// strictly increase, and within each producer the per-producer seqs
/// strictly increase.
fn assert_drain_order(snap: &[lqo_flight::FlightRecord]) {
    for w in snap.windows(2) {
        assert!(w[0].seq < w[1].seq, "global seq disorder");
    }
    for p in Producer::ALL {
        let pseqs: Vec<u64> = snap
            .iter()
            .filter(|r| r.producer == p)
            .map(|r| r.producer_seq)
            .collect();
        for w in pseqs.windows(2) {
            assert!(
                w[0] < w[1],
                "producer {p:?} drained out of order: {} then {}",
                w[0],
                w[1]
            );
        }
    }
}

proptest! {
    /// Sequential interleavings: any schedule of producers publishing,
    /// at any capacity (including heavy overwrite), drains in per-
    /// producer order.
    #[test]
    fn drain_respects_producer_order_sequential(
        schedule in proptest::collection::vec(0usize..Producer::ALL.len(), 1..400),
        cap in 8usize..128,
    ) {
        let ring = FlightRing::new(cap);
        for (i, &p) in schedule.iter().enumerate() {
            ring.push(Producer::ALL[p], (i % 5) as u64, ev(i as u64));
        }
        let snap = ring.snapshot();
        prop_assert!(snap.len() <= ring.capacity());
        prop_assert_eq!(
            snap.len() as u64 + ring.dropped_total(),
            schedule.len() as u64
        );
        assert_drain_order(&snap);
    }

    /// Concurrent publication, one thread per producer (the stack-wide
    /// pattern): drain still respects every producer's own order, and
    /// accounting is exact (survivors + dropped == published).
    #[test]
    fn drain_respects_producer_order_concurrent(
        per_producer in 1usize..120,
        producers in 2usize..=4,
        cap in 8usize..256,
    ) {
        let ring = Arc::new(FlightRing::new(cap));
        let threads: Vec<_> = Producer::ALL
            .into_iter()
            .take(producers)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per_producer {
                        ring.push(p, 1, ev(i as u64));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = ring.snapshot();
        let published = (per_producer * producers) as u64;
        prop_assert_eq!(ring.published(), published);
        prop_assert_eq!(snap.len() as u64 + ring.dropped_total(), published);
        assert_drain_order(&snap);
    }
}
