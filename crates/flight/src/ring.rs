//! The black-box recorder: a bounded MPSC ring buffer of
//! [`FlightRecord`]s.
//!
//! # Design
//!
//! Writers must never block and never allocate proportionally to
//! history — the recorder is on the hot path of every instrumented
//! subsystem. The ring therefore:
//!
//! * claims a **global sequence number** per publication with one
//!   wait-free `fetch_add` on an atomic head; the slot is `seq mod
//!   capacity` (capacity is a power of two, so a mask);
//! * guards each slot with its own tiny mutex taken with `try_lock`
//!   only: if a reader (or a lap-ahead writer) holds the slot, the
//!   writer *drops the event* and bumps its producer's contention
//!   counter instead of waiting. Publication cost is thus bounded: two
//!   relaxed `fetch_add`s, one uncontended lock, one move;
//! * **overwrites oldest**: a full ring replaces the record previously
//!   in the slot, charging the loss to the *overwritten* record's
//!   producer. A lap-ahead race (an older claimed seq arriving after a
//!   newer one already landed in the same slot) keeps the newer record
//!   and charges the older writer, so slot contents are monotone in
//!   `seq`;
//! * reconstructs order at drain time by sorting the surviving records
//!   by global seq — the happens-before edge is the slot lock
//!   release/acquire, and the total order is the claimed sequence, so
//!   no cross-slot memory-ordering stronger than the `fetch_add` is
//!   needed (see DESIGN §15 for the full argument).
//!
//! Per-producer sequence numbers are claimed immediately before the
//! global seq in the same `push` call, so for any producer publishing
//! from one thread at a time (the stack-wide pattern: each subsystem
//! publishes from the query's driving thread), drain order respects
//! per-producer publication order — property-tested in this crate.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::event::{FlightEvent, FlightRecord, Producer, NUM_PRODUCERS};

/// A fixed-capacity, overwrite-oldest MPSC ring of flight records.
pub struct FlightRing {
    mask: u64,
    /// Next global sequence number (== total records ever published).
    head: AtomicU64,
    slots: Box<[Mutex<Option<FlightRecord>>]>,
    /// Next per-producer sequence number.
    producer_seq: [AtomicU64; NUM_PRODUCERS],
    /// Events lost to capacity (overwritten before any drain), charged
    /// to the overwritten record's producer.
    overwritten: [AtomicU64; NUM_PRODUCERS],
    /// Events dropped because the slot was held at publish time.
    contended: [AtomicU64; NUM_PRODUCERS],
}

impl FlightRing {
    /// A ring holding up to `capacity` records (rounded up to a power
    /// of two, floored at 8).
    pub fn new(capacity: usize) -> FlightRing {
        let cap = capacity.max(8).next_power_of_two();
        let slots = (0..cap)
            .map(|_| Mutex::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FlightRing {
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            slots,
            producer_seq: std::array::from_fn(|_| AtomicU64::new(0)),
            overwritten: std::array::from_fn(|_| AtomicU64::new(0)),
            contended: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The fixed capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever published (including since-dropped ones).
    pub fn published(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Publish one event; returns its global sequence number. Never
    /// blocks: a held slot drops the event into the producer's
    /// contention counter instead.
    pub fn push(&self, producer: Producer, query_id: u64, event: FlightEvent) -> u64 {
        let p = producer.index();
        let producer_seq = self.producer_seq[p].fetch_add(1, Ordering::Relaxed);
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        match slot.try_lock() {
            Some(mut guard) => match guard.take() {
                Some(old) if old.seq > seq => {
                    // Lap-ahead race: a newer record already landed in
                    // this slot. Keep it; we are the stale write.
                    *guard = Some(old);
                    self.overwritten[p].fetch_add(1, Ordering::Relaxed);
                }
                old => {
                    if let Some(old) = old {
                        self.overwritten[old.producer.index()].fetch_add(1, Ordering::Relaxed);
                    }
                    *guard = Some(FlightRecord {
                        seq,
                        producer,
                        producer_seq,
                        query_id,
                        event,
                    });
                }
            },
            None => {
                self.contended[p].fetch_add(1, Ordering::Relaxed);
            }
        }
        seq
    }

    /// Drain-free snapshot: the surviving records, sorted by global
    /// sequence number (ascending — oldest first). Blocks briefly per
    /// slot; concurrent writers hitting a locked slot drop (by design)
    /// rather than wait, so snapshotting never stalls the hot path.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut out: Vec<FlightRecord> =
            self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        out.sort_unstable_by_key(|r| r.seq);
        out
    }

    /// Events lost per producer (capacity overwrites + slot contention),
    /// in [`Producer::ALL`] order. Zero entries included.
    pub fn dropped(&self) -> Vec<(Producer, u64)> {
        Producer::ALL
            .into_iter()
            .map(|p| {
                let i = p.index();
                (
                    p,
                    self.overwritten[i].load(Ordering::Relaxed)
                        + self.contended[i].load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Total events lost across producers.
    pub fn dropped_total(&self) -> u64 {
        self.dropped().into_iter().map(|(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> FlightEvent {
        FlightEvent::Span {
            name: format!("s{i}"),
            begin: true,
        }
    }

    #[test]
    fn records_survive_below_capacity_in_order() {
        let ring = FlightRing::new(16);
        for i in 0..10 {
            ring.push(Producer::Pilot, 1, ev(i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 10);
        for (i, r) in snap.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.producer_seq, i as u64);
            assert_eq!(r.query_id, 1);
        }
        assert_eq!(ring.dropped_total(), 0);
        assert_eq!(ring.published(), 10);
    }

    #[test]
    fn overwrite_oldest_keeps_newest_and_counts_drops() {
        let ring = FlightRing::new(8);
        assert_eq!(ring.capacity(), 8);
        for i in 0..20 {
            ring.push(Producer::Exec, 0, ev(i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8);
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        assert_eq!(ring.dropped_total(), 12);
        let by_exec = ring
            .dropped()
            .into_iter()
            .find(|(p, _)| *p == Producer::Exec)
            .unwrap()
            .1;
        assert_eq!(by_exec, 12);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(FlightRing::new(0).capacity(), 8);
        assert_eq!(FlightRing::new(9).capacity(), 16);
        assert_eq!(FlightRing::new(1024).capacity(), 1024);
    }

    #[test]
    fn producers_interleave_with_monotone_producer_seqs() {
        let ring = FlightRing::new(64);
        for i in 0..10 {
            ring.push(Producer::Guard, 1, ev(i));
            ring.push(Producer::Cache, 1, ev(i));
        }
        let snap = ring.snapshot();
        for p in [Producer::Guard, Producer::Cache] {
            let pseqs: Vec<u64> = snap
                .iter()
                .filter(|r| r.producer == p)
                .map(|r| r.producer_seq)
                .collect();
            assert_eq!(pseqs, (0..10).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn concurrent_publishers_lose_nothing_below_capacity() {
        use std::sync::Arc;
        let ring = Arc::new(FlightRing::new(4096));
        let threads: Vec<_> = Producer::ALL
            .into_iter()
            .take(4)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        ring.push(p, 7, ev(i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = ring.snapshot();
        // Capacity exceeds the publication count, and slot locks are
        // uncontended (distinct slots), so nothing is lost.
        assert_eq!(snap.len() as u64 + ring.dropped_total(), 800);
        assert_eq!(ring.published(), 800);
        // Global seqs are unique and sorted.
        for w in snap.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        // Per-producer order holds for each single-threaded producer.
        for p in Producer::ALL.into_iter().take(4) {
            let pseqs: Vec<u64> = snap
                .iter()
                .filter(|r| r.producer == p)
                .map(|r| r.producer_seq)
                .collect();
            for w in pseqs.windows(2) {
                assert!(w[0] < w[1], "producer {p:?} out of order");
            }
        }
    }
}
