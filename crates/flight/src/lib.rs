//! # lqo-flight — flight recorder & incident forensics
//!
//! An always-on, bounded-overhead black box for the learned-qo stack.
//! Every event-emitting subsystem (guards, model-health watch, caches,
//! mid-query re-optimization, the executor's budget/worker containment,
//! the optimizer's and pilot's span boundaries) publishes a unified
//! [`FlightEvent`] into one fixed-capacity, overwrite-oldest MPSC ring
//! buffer ([`FlightRing`]) through a shared [`FlightContext`] handle —
//! the same `Option<Arc>` pattern as `ObsContext`/`ProfContext`, so a
//! disabled recorder costs one branch per call site.
//!
//! When a **severity trigger** fires (configurable via
//! [`FlightTriggers`]: breaker open, confirmed drift, regression-guard
//! cancel, reopt switch/degrade, worker fault), the recorder snapshots
//! the ring and, when the offending query ends, finalizes a
//! self-contained [`IncidentBundle`]: the last N events with monotonic
//! sequence numbers and query-id correlation, the offending
//! `QueryTrace`, the metrics-counter delta over the query, and the
//! query's profiler folded stack. Bundles export as JSONL
//! (`schema_version` `FLIGHT=1`, [`bundle::write_bundles_jsonl`]) and
//! render as ANSI postmortems ([`render::render_postmortem`]).
//!
//! Capture is rate-limited deterministically: at most one bundle per
//! query and at most [`FlightConfig::max_bundles`] per context; excess
//! triggers are counted in `lqo.flight.suppressed`. The `lqo.flight.*`
//! metrics family (events, dropped, triggers, bundles, suppressed) is
//! flushed into the attached `ObsContext` at query boundaries so the
//! per-event hot path touches only relaxed atomics.

pub mod bundle;
pub mod event;
pub mod render;
pub mod ring;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use lqo_obs::trace::QueryTrace;
use lqo_obs::ObsContext;

pub use bundle::{
    bundle_from_json, bundle_to_json, parse_bundles_jsonl, write_bundles_jsonl, IncidentBundle,
    FLIGHT_SCHEMA_VERSION,
};
pub use event::{FlightEvent, FlightRecord, Producer};
pub use render::render_postmortem;
pub use ring::FlightRing;

/// Which severity conditions open an incident bundle.
#[derive(Debug, Clone)]
pub struct FlightTriggers {
    /// A circuit breaker transitioned to open.
    pub breaker_open: bool,
    /// The model-health watch confirmed drift.
    pub confirmed_drift: bool,
    /// The execution regression guard cancelled the chosen plan.
    pub regression_cancel: bool,
    /// Mid-query re-optimization switched sub-plans (or degraded while
    /// trying to).
    pub reopt_switch: bool,
    /// A parallel worker died and execution degraded to serial.
    pub worker_fault: bool,
}

impl Default for FlightTriggers {
    fn default() -> FlightTriggers {
        FlightTriggers {
            breaker_open: true,
            confirmed_drift: true,
            regression_cancel: true,
            reopt_switch: true,
            worker_fault: true,
        }
    }
}

/// Recorder tuning.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Ring capacity in records (rounded up to a power of two).
    pub capacity: usize,
    /// Max ring events carried into one bundle (the newest N at trigger
    /// time).
    pub bundle_events: usize,
    /// Rate limit: total bundles captured per context; further triggers
    /// are suppressed (counted, not captured).
    pub max_bundles: usize,
    /// Which severity conditions trigger capture.
    pub triggers: FlightTriggers,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            capacity: 1024,
            bundle_events: 256,
            max_bundles: 8,
            triggers: FlightTriggers::default(),
        }
    }
}

struct CurrentQuery {
    id: u64,
    label: String,
    /// Counter snapshot at query begin, for the bundle's metrics delta.
    baseline: Vec<(String, u64)>,
}

struct Pending {
    trigger: String,
    query_id: u64,
    /// Ring snapshot taken at trigger time (newest `bundle_events`).
    events: Vec<FlightRecord>,
    dropped: Vec<(String, u64)>,
}

struct FlightState {
    current: Option<CurrentQuery>,
    pending: Option<Pending>,
    bundles: Vec<IncidentBundle>,
}

struct FlightInner {
    config: FlightConfig,
    ring: FlightRing,
    obs: ObsContext,
    /// Query-id source (ids start at 1; 0 = outside any query).
    next_query: AtomicU64,
    /// Id of the query in flight, 0 when none — read on the publish hot
    /// path without taking the state lock.
    current_qid: AtomicU64,
    next_bundle: AtomicU64,
    /// Hot-path event counter, flushed into `lqo.flight.events` at
    /// query boundaries.
    events: AtomicU64,
    events_flushed: AtomicU64,
    dropped_flushed: AtomicU64,
    state: Mutex<FlightState>,
}

/// Shared handle to one flight-recording session. Cheap to clone; a
/// disabled context is a `None` and every call returns immediately.
#[derive(Clone, Default)]
pub struct FlightContext {
    inner: Option<Arc<FlightInner>>,
}

impl FlightContext {
    /// An enabled recorder with `config`, flushing `lqo.flight.*`
    /// metrics into `obs` (pass [`ObsContext::disabled`] for none).
    pub fn new(config: FlightConfig, obs: ObsContext) -> FlightContext {
        FlightContext {
            inner: Some(Arc::new(FlightInner {
                ring: FlightRing::new(config.capacity),
                config,
                obs,
                next_query: AtomicU64::new(0),
                current_qid: AtomicU64::new(0),
                next_bundle: AtomicU64::new(0),
                events: AtomicU64::new(0),
                events_flushed: AtomicU64::new(0),
                dropped_flushed: AtomicU64::new(0),
                state: Mutex::new(FlightState {
                    current: None,
                    pending: None,
                    bundles: Vec::new(),
                }),
            })),
        }
    }

    /// An enabled recorder with default configuration and no metrics
    /// mirroring.
    pub fn enabled() -> FlightContext {
        FlightContext::new(FlightConfig::default(), ObsContext::disabled())
    }

    /// The no-op recorder: every call is a branch on a `None`.
    pub fn disabled() -> FlightContext {
        FlightContext { inner: None }
    }

    /// Whether this context records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The configuration, when enabled.
    pub fn config(&self) -> Option<&FlightConfig> {
        self.inner.as_deref().map(|i| &i.config)
    }

    /// Publish one event into the ring, stamped with the id of the
    /// query in flight. Hot path: two relaxed atomic adds, one
    /// uncontended slot lock, plus a rare slow path when the event
    /// matches a severity trigger.
    pub fn publish(&self, producer: Producer, event: FlightEvent) {
        let Some(inner) = &self.inner else { return };
        inner.events.fetch_add(1, Ordering::Relaxed);
        let qid = inner.current_qid.load(Ordering::Relaxed);
        let cause = trigger_cause(&event, &inner.config.triggers);
        inner.ring.push(producer, qid, event);
        if let Some(cause) = cause {
            self.note_trigger(inner, qid, cause);
        }
    }

    /// Slow path: a severity trigger fired. Opens a pending incident
    /// for the query in flight unless one is already open, the rate
    /// limit is exhausted, or no query is in flight (triggers outside a
    /// query are counted but not captured — there is no trace to bind
    /// them to).
    fn note_trigger(&self, inner: &FlightInner, qid: u64, cause: String) {
        inner.obs.count("lqo.flight.triggers", 1);
        let mut st = inner.state.lock();
        if qid == 0 || st.pending.is_some() || st.bundles.len() >= inner.config.max_bundles {
            inner.obs.count("lqo.flight.suppressed", 1);
            return;
        }
        let mut events = inner.ring.snapshot();
        if events.len() > inner.config.bundle_events {
            let skip = events.len() - inner.config.bundle_events;
            events.drain(..skip);
        }
        let dropped = inner
            .ring
            .dropped()
            .into_iter()
            .filter(|&(_, n)| n > 0)
            .map(|(p, n)| (p.name().to_string(), n))
            .collect();
        st.pending = Some(Pending {
            trigger: cause,
            query_id: qid,
            events,
            dropped,
        });
    }

    /// Begin a query: assigns it a correlation id, snapshots the
    /// counter baseline for a later bundle's metrics delta, and
    /// publishes the opening `query` span edge. A still-open previous
    /// query is closed (without a trace) first.
    pub fn begin_query(&self, label: &str) {
        let Some(inner) = &self.inner else { return };
        if inner.current_qid.load(Ordering::Relaxed) != 0 {
            self.end_query(None, None);
        }
        let id = inner.next_query.fetch_add(1, Ordering::Relaxed) + 1;
        let baseline = inner
            .obs
            .metrics()
            .map(|m| m.snapshot().counters)
            .unwrap_or_default();
        {
            let mut st = inner.state.lock();
            st.current = Some(CurrentQuery {
                id,
                label: label.to_string(),
                baseline,
            });
        }
        inner.current_qid.store(id, Ordering::Relaxed);
        self.publish(
            Producer::Pilot,
            FlightEvent::Span {
                name: "query".into(),
                begin: true,
            },
        );
    }

    /// End the current query. If a severity trigger fired during it,
    /// the pending incident is finalized into a bundle carrying
    /// `trace` (the query's finished `QueryTrace`) and `prof_folded`
    /// (its profiler folded stack), and the bundle is returned.
    /// Accumulated `lqo.flight.*` metrics are flushed either way.
    pub fn end_query(
        &self,
        trace: Option<&QueryTrace>,
        prof_folded: Option<String>,
    ) -> Option<IncidentBundle> {
        let inner = self.inner.as_deref()?;
        if inner.current_qid.load(Ordering::Relaxed) == 0 {
            return None;
        }
        self.publish(
            Producer::Pilot,
            FlightEvent::Span {
                name: "query".into(),
                begin: false,
            },
        );
        inner.current_qid.store(0, Ordering::Relaxed);
        let out = {
            let mut st = inner.state.lock();
            let cur = st.current.take();
            let pending = st.pending.take();
            match (cur, pending) {
                (Some(cur), Some(p)) if p.query_id == cur.id => {
                    let id = inner.next_bundle.fetch_add(1, Ordering::Relaxed) + 1;
                    let bundle = IncidentBundle {
                        id,
                        trigger: p.trigger,
                        query_id: cur.id,
                        query: cur.label,
                        events: p.events,
                        dropped: p.dropped,
                        trace: trace.cloned(),
                        metrics_delta: counter_delta(&cur.baseline, inner.obs.metrics()),
                        prof_folded,
                    };
                    st.bundles.push(bundle.clone());
                    Some(bundle)
                }
                (_, Some(_)) | (_, None) => None,
            }
        };
        if out.is_some() {
            inner.obs.count("lqo.flight.bundles", 1);
        }
        self.flush_metrics();
        out
    }

    /// Flush hot-path counters into the attached `ObsContext` as the
    /// `lqo.flight.*` family (delta-based, so repeated flushes are
    /// exact).
    pub fn flush_metrics(&self) {
        let Some(inner) = &self.inner else { return };
        if !inner.obs.is_enabled() {
            return;
        }
        let events = inner.events.load(Ordering::Relaxed);
        let flushed = inner.events_flushed.swap(events, Ordering::Relaxed);
        if events > flushed {
            inner.obs.count("lqo.flight.events", events - flushed);
        }
        let dropped = inner.ring.dropped_total();
        let dflushed = inner.dropped_flushed.swap(dropped, Ordering::Relaxed);
        if dropped > dflushed {
            inner.obs.count("lqo.flight.dropped", dropped - dflushed);
        }
    }

    /// Total events published so far.
    pub fn events_published(&self) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |i| i.events.load(Ordering::Relaxed))
    }

    /// Snapshot of the ring's surviving records, oldest first.
    pub fn ring_snapshot(&self) -> Vec<FlightRecord> {
        self.inner
            .as_deref()
            .map_or_else(Vec::new, |i| i.ring.snapshot())
    }

    /// Events lost so far (capacity overwrites + slot contention).
    pub fn dropped_total(&self) -> u64 {
        self.inner.as_deref().map_or(0, |i| i.ring.dropped_total())
    }

    /// Bundles captured so far (clones; the log is kept).
    pub fn bundles(&self) -> Vec<IncidentBundle> {
        match &self.inner {
            Some(inner) => inner.state.lock().bundles.clone(),
            None => Vec::new(),
        }
    }

    /// Drain the captured-bundle log.
    pub fn take_bundles(&self) -> Vec<IncidentBundle> {
        match &self.inner {
            Some(inner) => std::mem::take(&mut inner.state.lock().bundles),
            None => Vec::new(),
        }
    }
}

/// Map an event to the severity trigger it satisfies, if any.
fn trigger_cause(ev: &FlightEvent, t: &FlightTriggers) -> Option<String> {
    match ev {
        FlightEvent::Breaker { component, state } if t.breaker_open && state == "open" => {
            Some(format!("breaker-open:{component}"))
        }
        FlightEvent::WatchAlarm { metric, health, .. }
            if t.confirmed_drift && health == "drifted" =>
        {
            Some(format!("confirmed-drift:{metric}"))
        }
        FlightEvent::Guard {
            component, action, ..
        } if t.regression_cancel && component == "exec" && action == "replan:native" => {
            Some(format!("regression-cancel:{component}"))
        }
        FlightEvent::Reopt { action, .. }
            if t.reopt_switch && (action == "switch" || action.starts_with("degrade")) =>
        {
            Some(format!("reopt-{action}"))
        }
        FlightEvent::WorkerFault { op, .. } if t.worker_fault => Some(format!("worker-fault:{op}")),
        _ => None,
    }
}

/// Counter deltas against a baseline snapshot (zero deltas omitted;
/// name-sorted because both sides are).
fn counter_delta(
    baseline: &[(String, u64)],
    metrics: Option<&lqo_obs::metrics::MetricsRegistry>,
) -> Vec<(String, u64)> {
    let Some(metrics) = metrics else {
        return Vec::new();
    };
    let now = metrics.snapshot().counters;
    now.into_iter()
        .filter_map(|(name, v)| {
            let base = baseline
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |&(_, b)| b);
            (v > base).then(|| (name, v - base))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker_open() -> FlightEvent {
        FlightEvent::Breaker {
            component: "card:learned".into(),
            state: "open".into(),
        }
    }

    #[test]
    fn disabled_context_is_inert() {
        let f = FlightContext::disabled();
        assert!(!f.is_enabled());
        f.publish(Producer::Guard, breaker_open());
        f.begin_query("q");
        assert!(f.end_query(None, None).is_none());
        assert!(f.bundles().is_empty());
        assert!(f.ring_snapshot().is_empty());
        assert_eq!(f.events_published(), 0);
        assert!(f.config().is_none());
    }

    #[test]
    fn breaker_open_inside_query_captures_one_bundle() {
        let obs = ObsContext::enabled();
        let f = FlightContext::new(FlightConfig::default(), obs.clone());
        f.begin_query("SELECT 1");
        obs.count("lqo.exec.queries", 1);
        f.publish(Producer::Guard, breaker_open());
        let trace = QueryTrace::new("SELECT 1");
        let bundle = f
            .end_query(Some(&trace), Some("execute 10\n".into()))
            .expect("bundle");
        assert_eq!(bundle.trigger, "breaker-open:card:learned");
        assert_eq!(bundle.query_id, 1);
        assert!(bundle.is_well_formed());
        assert!(bundle.trace.is_some());
        assert_eq!(bundle.prof_folded.as_deref(), Some("execute 10\n"));
        assert!(bundle
            .metrics_delta
            .iter()
            .any(|(n, d)| n == "lqo.exec.queries" && *d == 1));
        // The timeline contains the query's opening span and the breaker.
        assert!(bundle.events.iter().any(|r| matches!(
            &r.event,
            FlightEvent::Span { name, begin: true } if name == "query"
        )));
        assert!(bundle
            .events
            .iter()
            .any(|r| matches!(&r.event, FlightEvent::Breaker { .. })));
        // Metrics family recorded.
        let snap = obs.metrics().unwrap().snapshot();
        assert_eq!(snap.counter("lqo.flight.triggers"), Some(1));
        assert_eq!(snap.counter("lqo.flight.bundles"), Some(1));
        assert!(snap.counter("lqo.flight.events").unwrap_or(0) >= 3);
        assert_eq!(f.bundles().len(), 1);
        assert_eq!(f.take_bundles().len(), 1);
        assert!(f.bundles().is_empty());
    }

    #[test]
    fn one_bundle_per_query_and_rate_limit() {
        let obs = ObsContext::enabled();
        let f = FlightContext::new(
            FlightConfig {
                max_bundles: 1,
                ..FlightConfig::default()
            },
            obs.clone(),
        );
        f.begin_query("q1");
        f.publish(Producer::Guard, breaker_open());
        f.publish(Producer::Guard, breaker_open()); // dedup within the query
        assert!(f.end_query(None, None).is_some());
        f.begin_query("q2");
        f.publish(Producer::Guard, breaker_open()); // over the rate limit
        assert!(f.end_query(None, None).is_none());
        let snap = obs.metrics().unwrap().snapshot();
        assert_eq!(snap.counter("lqo.flight.triggers"), Some(3));
        assert_eq!(snap.counter("lqo.flight.suppressed"), Some(2));
        assert_eq!(snap.counter("lqo.flight.bundles"), Some(1));
    }

    #[test]
    fn triggers_outside_queries_are_counted_not_captured() {
        let obs = ObsContext::enabled();
        let f = FlightContext::new(FlightConfig::default(), obs.clone());
        f.publish(Producer::Guard, breaker_open());
        assert!(f.bundles().is_empty());
        let snap = obs.metrics().unwrap().snapshot();
        assert_eq!(snap.counter("lqo.flight.triggers"), Some(1));
        assert_eq!(snap.counter("lqo.flight.suppressed"), Some(1));
    }

    #[test]
    fn disabled_triggers_do_not_capture() {
        let f = FlightContext::new(
            FlightConfig {
                triggers: FlightTriggers {
                    breaker_open: false,
                    ..FlightTriggers::default()
                },
                ..FlightConfig::default()
            },
            ObsContext::disabled(),
        );
        f.begin_query("q");
        f.publish(Producer::Guard, breaker_open());
        assert!(f.end_query(None, None).is_none());
    }

    #[test]
    fn bundle_carries_at_most_bundle_events() {
        let f = FlightContext::new(
            FlightConfig {
                capacity: 64,
                bundle_events: 4,
                ..FlightConfig::default()
            },
            ObsContext::disabled(),
        );
        f.begin_query("q");
        for i in 0..10 {
            f.publish(
                Producer::Cache,
                FlightEvent::Cache {
                    cache: "plan".into(),
                    event: "hit".into(),
                    detail: format!("k{i}"),
                },
            );
        }
        f.publish(Producer::Guard, breaker_open());
        let b = f.end_query(None, None).expect("bundle");
        assert_eq!(b.events.len(), 4);
        // The newest events, ending with the trigger itself.
        assert!(matches!(
            b.events.last().unwrap().event,
            FlightEvent::Breaker { .. }
        ));
        assert!(b.is_well_formed());
    }

    #[test]
    fn trigger_causes_cover_every_class() {
        let t = FlightTriggers::default();
        assert_eq!(
            trigger_cause(&breaker_open(), &t).as_deref(),
            Some("breaker-open:card:learned")
        );
        assert_eq!(
            trigger_cause(
                &FlightEvent::WatchAlarm {
                    metric: "card".into(),
                    health: "drifted".into(),
                    detail: String::new(),
                },
                &t
            )
            .as_deref(),
            Some("confirmed-drift:card")
        );
        assert_eq!(
            trigger_cause(
                &FlightEvent::Guard {
                    component: "exec".into(),
                    fault: "work-regression".into(),
                    action: "replan:native".into(),
                },
                &t
            )
            .as_deref(),
            Some("regression-cancel:exec")
        );
        assert_eq!(
            trigger_cause(
                &FlightEvent::Reopt {
                    tables: 1,
                    action: "switch".into(),
                    q_error: 8.0,
                },
                &t
            )
            .as_deref(),
            Some("reopt-switch")
        );
        assert_eq!(
            trigger_cause(
                &FlightEvent::Reopt {
                    tables: 1,
                    action: "degrade:panic".into(),
                    q_error: 8.0,
                },
                &t
            )
            .as_deref(),
            Some("reopt-degrade:panic")
        );
        assert_eq!(
            trigger_cause(
                &FlightEvent::WorkerFault {
                    op: "Scan".into(),
                    action: "fallback:serial".into(),
                },
                &t
            )
            .as_deref(),
            Some("worker-fault:Scan")
        );
        // Non-severe events never trigger.
        assert!(trigger_cause(
            &FlightEvent::Cache {
                cache: "plan".into(),
                event: "hit".into(),
                detail: String::new(),
            },
            &t
        )
        .is_none());
        assert!(trigger_cause(
            &FlightEvent::Breaker {
                component: "c".into(),
                state: "closed".into(),
            },
            &t
        )
        .is_none());
        assert!(trigger_cause(
            &FlightEvent::Reopt {
                tables: 1,
                action: "keep:cost".into(),
                q_error: 2.0,
            },
            &t
        )
        .is_none());
    }

    #[test]
    fn begin_query_closes_unfinished_predecessor() {
        let f = FlightContext::enabled();
        f.begin_query("q1");
        f.begin_query("q2");
        let snap = f.ring_snapshot();
        // q1 begin, q1 end (implicit), q2 begin.
        let spans: Vec<(u64, bool)> = snap
            .iter()
            .filter_map(|r| match &r.event {
                FlightEvent::Span { name, begin } if name == "query" => Some((r.query_id, *begin)),
                _ => None,
            })
            .collect();
        assert_eq!(spans, vec![(1, true), (1, false), (2, true)]);
    }
}
