//! The unified flight-recorder vocabulary: who published ([`Producer`]),
//! what happened ([`FlightEvent`]), and the stamped record that lands in
//! the ring buffer ([`FlightRecord`]).
//!
//! Every event-emitting subsystem in the stack (pilot, training harness,
//! optimizer, executor, guards, model-health watch, caches, mid-query
//! re-optimization) publishes into one bus using this vocabulary, so a
//! postmortem reads as a single interleaved timeline instead of five
//! per-subsystem silos.

/// Number of distinct producers (sized for the fixed per-producer
/// counter arrays in the ring).
pub const NUM_PRODUCERS: usize = 8;

/// The subsystem that published an event. Fixed and small so the ring
/// can keep wait-free per-producer counters in plain arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Producer {
    /// The session driver (`PilotConsole` or `TrainingLoop`).
    Pilot,
    /// The training harness.
    Train,
    /// The plan optimizer.
    Optimizer,
    /// The plan executor (serial or parallel).
    Exec,
    /// Planning/execution guards (`lqo-guard`).
    Guard,
    /// The model-health monitor (`lqo-watch`).
    Watch,
    /// Plan & inference caches (`lqo-cache`).
    Cache,
    /// Mid-query re-optimization (`lqo-reopt`).
    Reopt,
}

impl Producer {
    /// Every producer, in index order.
    pub const ALL: [Producer; NUM_PRODUCERS] = [
        Producer::Pilot,
        Producer::Train,
        Producer::Optimizer,
        Producer::Exec,
        Producer::Guard,
        Producer::Watch,
        Producer::Cache,
        Producer::Reopt,
    ];

    /// Stable index into per-producer counter arrays.
    pub fn index(self) -> usize {
        match self {
            Producer::Pilot => 0,
            Producer::Train => 1,
            Producer::Optimizer => 2,
            Producer::Exec => 3,
            Producer::Guard => 4,
            Producer::Watch => 5,
            Producer::Cache => 6,
            Producer::Reopt => 7,
        }
    }

    /// Stable wire name (used in exports and renders).
    pub fn name(self) -> &'static str {
        match self {
            Producer::Pilot => "pilot",
            Producer::Train => "train",
            Producer::Optimizer => "optimizer",
            Producer::Exec => "exec",
            Producer::Guard => "guard",
            Producer::Watch => "watch",
            Producer::Cache => "cache",
            Producer::Reopt => "reopt",
        }
    }

    /// Inverse of [`Producer::name`].
    pub fn from_name(name: &str) -> Option<Producer> {
        Producer::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// One thing that happened somewhere in the stack.
///
/// The variants deliberately mirror the per-trace event records
/// (`GuardEvent`/`CacheEvent`/`ReoptEvent` on `QueryTrace`) where those
/// exist, plus the cross-cutting signals that previously lived only in
/// metrics counters (breaker transitions, budget trips, worker-panic
/// degrades, stats-epoch bumps) and span boundaries for timeline
/// context.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightEvent {
    /// A span boundary: a named region began (`begin == true`) or ended.
    Span {
        /// Region name (e.g. `"query"`, `"plan.optimize"`, `"exec.query"`).
        name: String,
        /// Whether this is the opening edge.
        begin: bool,
    },
    /// A guard intervention (contained fault, fallback, replan) —
    /// mirrors `lqo_obs::trace::GuardEvent`.
    Guard {
        /// Guarded component (e.g. `"card:learned"`, `"exec"`).
        component: String,
        /// What went wrong.
        fault: String,
        /// What the guard did about it.
        action: String,
    },
    /// A model-health alarm edge: the watch rollup changed state.
    WatchAlarm {
        /// The watched metric or channel that transitioned.
        metric: String,
        /// New health state (`"healthy"`, `"degrading"`, `"drifted"`).
        health: String,
        /// Free-form detail (e.g. the PSI/KS evidence).
        detail: String,
    },
    /// A cache interaction — mirrors `lqo_obs::trace::CacheEvent`.
    Cache {
        /// Which cache (`"plan"` or `"card"`).
        cache: String,
        /// What happened (`"hit"`, `"miss"`, `"store"`, ...).
        event: String,
        /// Free-form detail.
        detail: String,
    },
    /// A mid-query re-optimization decision (condensed from
    /// `lqo_obs::trace::ReoptEvent`).
    Reopt {
        /// Tables materialized at the checkpoint (`TableSet` raw bits).
        tables: u64,
        /// Decision (`"switch"`, `"keep:cost"`, `"degrade:<fault>"`, ...).
        action: String,
        /// Q-error that drove the decision.
        q_error: f64,
    },
    /// A work budget tripped (execution cancelled at its limit).
    BudgetTrip {
        /// The budgeted component (e.g. `"exec"`).
        component: String,
        /// The budget that tripped, in work units.
        budget: f64,
    },
    /// A circuit breaker changed state.
    Breaker {
        /// The guarded component the breaker protects.
        component: String,
        /// New state (`"open"` or `"closed"`).
        state: String,
    },
    /// A parallel worker died and the query degraded to the serial path.
    WorkerFault {
        /// The operator whose morsel the worker was running.
        op: String,
        /// The containment action (e.g. `"fallback:serial"`).
        action: String,
    },
    /// The catalog stats epoch advanced, invalidating epoch-keyed caches.
    EpochBump {
        /// The new epoch.
        epoch: u64,
        /// Free-form detail (what bumped it).
        detail: String,
    },
}

impl FlightEvent {
    /// Stable kind tag, used as the JSONL discriminant and in renders.
    pub fn kind(&self) -> &'static str {
        match self {
            FlightEvent::Span { .. } => "span",
            FlightEvent::Guard { .. } => "guard",
            FlightEvent::WatchAlarm { .. } => "watch-alarm",
            FlightEvent::Cache { .. } => "cache",
            FlightEvent::Reopt { .. } => "reopt",
            FlightEvent::BudgetTrip { .. } => "budget-trip",
            FlightEvent::Breaker { .. } => "breaker",
            FlightEvent::WorkerFault { .. } => "worker-fault",
            FlightEvent::EpochBump { .. } => "epoch-bump",
        }
    }

    /// One-line human rendering for timelines.
    pub fn summary(&self) -> String {
        match self {
            FlightEvent::Span { name, begin } => {
                format!("span {name} {}", if *begin { "begin" } else { "end" })
            }
            FlightEvent::Guard {
                component,
                fault,
                action,
            } => format!("guard {component}: {fault} -> {action}"),
            FlightEvent::WatchAlarm {
                metric,
                health,
                detail,
            } => format!("watch {metric}: {health} ({detail})"),
            FlightEvent::Cache {
                cache,
                event,
                detail,
            } => format!("cache {cache}: {event} {detail}"),
            FlightEvent::Reopt {
                tables,
                action,
                q_error,
            } => format!("reopt tables={tables:#x}: {action} (q={q_error:.2})"),
            FlightEvent::BudgetTrip { component, budget } => {
                format!("budget-trip {component}: budget={budget:.0}")
            }
            FlightEvent::Breaker { component, state } => {
                format!("breaker {component}: {state}")
            }
            FlightEvent::WorkerFault { op, action } => {
                format!("worker-fault {op}: {action}")
            }
            FlightEvent::EpochBump { epoch, detail } => {
                format!("epoch-bump to {epoch} ({detail})")
            }
        }
    }
}

/// An event as stamped into the ring: globally sequenced, attributed to
/// a producer with its own per-producer sequence, and correlated to the
/// query in flight when it was published (`query_id == 0` means outside
/// any query).
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Global publication sequence number (total order across producers).
    pub seq: u64,
    /// Who published.
    pub producer: Producer,
    /// This producer's own publication sequence number.
    pub producer_seq: u64,
    /// Id of the query in flight at publication time, `0` if none.
    pub query_id: u64,
    /// What happened.
    pub event: FlightEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producer_names_round_trip() {
        for p in Producer::ALL {
            assert_eq!(Producer::from_name(p.name()), Some(p));
        }
        assert_eq!(Producer::from_name("nope"), None);
    }

    #[test]
    fn producer_indexes_are_dense_and_unique() {
        let mut seen = [false; NUM_PRODUCERS];
        for p in Producer::ALL {
            assert!(!seen[p.index()], "duplicate index for {p:?}");
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            FlightEvent::Span {
                name: "q".into(),
                begin: true,
            }
            .kind(),
            FlightEvent::Guard {
                component: "c".into(),
                fault: "f".into(),
                action: "a".into(),
            }
            .kind(),
            FlightEvent::WatchAlarm {
                metric: "m".into(),
                health: "drifted".into(),
                detail: String::new(),
            }
            .kind(),
            FlightEvent::Cache {
                cache: "plan".into(),
                event: "hit".into(),
                detail: String::new(),
            }
            .kind(),
            FlightEvent::Reopt {
                tables: 3,
                action: "switch".into(),
                q_error: 8.0,
            }
            .kind(),
            FlightEvent::BudgetTrip {
                component: "exec".into(),
                budget: 1e4,
            }
            .kind(),
            FlightEvent::Breaker {
                component: "card".into(),
                state: "open".into(),
            }
            .kind(),
            FlightEvent::WorkerFault {
                op: "HashJoin".into(),
                action: "fallback:serial".into(),
            }
            .kind(),
            FlightEvent::EpochBump {
                epoch: 2,
                detail: "stats".into(),
            }
            .kind(),
        ];
        let mut sorted = kinds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), kinds.len());
    }
}
