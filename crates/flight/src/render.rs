//! ANSI postmortem rendering for [`IncidentBundle`]s.

use crate::bundle::IncidentBundle;

const BOLD: &str = "\x1b[1m";
const RED: &str = "\x1b[31m";
const YELLOW: &str = "\x1b[33m";
const CYAN: &str = "\x1b[36m";
const DIM: &str = "\x1b[2m";
const RESET: &str = "\x1b[0m";

struct Style {
    color: bool,
}

impl Style {
    fn paint(&self, code: &str, s: &str) -> String {
        if self.color {
            format!("{code}{s}{RESET}")
        } else {
            s.to_string()
        }
    }
}

/// Render one incident as a human postmortem. With `color`, severity is
/// highlighted with ANSI escapes; without, the output is plain text
/// (and stable, suitable for golden files).
pub fn render_postmortem(b: &IncidentBundle, color: bool) -> String {
    let st = Style { color };
    let mut out = String::new();
    out.push_str(&st.paint(BOLD, &format!("== incident #{} — {} ==", b.id, b.trigger)));
    out.push('\n');
    out.push_str(&format!("query #{}: {}\n", b.query_id, b.query));
    if !b.dropped.is_empty() {
        let s = b
            .dropped
            .iter()
            .map(|(p, n)| format!("{p}={n}"))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&st.paint(YELLOW, &format!("! recorder dropped events: {s}")));
        out.push('\n');
    }
    out.push_str(&st.paint(CYAN, "-- timeline (oldest first) --"));
    out.push('\n');
    for r in &b.events {
        let marker = if r.query_id == b.query_id { "*" } else { " " };
        let line = format!(
            "{marker} [{:>6}] {:<9} q#{:<3} {}",
            r.seq,
            r.producer.name(),
            r.query_id,
            r.event.summary()
        );
        let is_fault = matches!(
            r.event,
            crate::event::FlightEvent::Guard { .. }
                | crate::event::FlightEvent::WorkerFault { .. }
                | crate::event::FlightEvent::BudgetTrip { .. }
                | crate::event::FlightEvent::Breaker { .. }
        );
        if is_fault {
            out.push_str(&st.paint(RED, &line));
        } else {
            out.push_str(&line);
        }
        out.push('\n');
    }
    if !b.metrics_delta.is_empty() {
        out.push_str(&st.paint(CYAN, "-- metrics delta over the query --"));
        out.push('\n');
        for (name, delta) in &b.metrics_delta {
            out.push_str(&format!("  {name:<40} +{delta}\n"));
        }
    }
    if let Some(t) = &b.trace {
        out.push_str(&st.paint(CYAN, "-- trace --"));
        out.push('\n');
        out.push_str(&format!(
            "  driver={} phases={} guard={} cache={} reopt={} timeout={}\n",
            t.driver.as_deref().unwrap_or("-"),
            t.phases.len(),
            t.guard.len(),
            t.cache.len(),
            t.reopt.len(),
            t.exec.timeout,
        ));
        for g in &t.guard {
            out.push_str(&st.paint(
                RED,
                &format!("  guard {}: {} -> {}", g.component, g.fault, g.action),
            ));
            out.push('\n');
        }
        if let Some(o) = &t.outcome {
            out.push_str(&format!(
                "  outcome: count={} work={:.0} wall={}ns\n",
                o.count, o.work, o.wall_ns
            ));
        }
    }
    if let Some(folded) = &b.prof_folded {
        out.push_str(&st.paint(CYAN, "-- prof folded stack --"));
        out.push('\n');
        for line in folded.lines().take(12) {
            out.push_str(&st.paint(DIM, &format!("  {line}")));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FlightEvent, FlightRecord, Producer};

    fn bundle() -> IncidentBundle {
        IncidentBundle {
            id: 2,
            trigger: "worker-fault:HashJoin".into(),
            query_id: 5,
            query: "q5".into(),
            events: vec![FlightRecord {
                seq: 40,
                producer: Producer::Exec,
                producer_seq: 12,
                query_id: 5,
                event: FlightEvent::WorkerFault {
                    op: "HashJoin".into(),
                    action: "fallback:serial".into(),
                },
            }],
            dropped: vec![],
            trace: None,
            metrics_delta: vec![("lqo.exec.parallel.degraded".into(), 1)],
            prof_folded: None,
        }
    }

    #[test]
    fn plain_render_has_no_ansi_and_names_the_trigger() {
        let s = render_postmortem(&bundle(), false);
        assert!(!s.contains('\x1b'));
        assert!(s.contains("worker-fault:HashJoin"));
        assert!(s.contains("lqo.exec.parallel.degraded"));
        assert!(s.contains("q#5"));
    }

    #[test]
    fn color_render_is_ansi_and_resets() {
        let s = render_postmortem(&bundle(), true);
        assert!(s.contains("\x1b[1m"));
        let opens = s.matches('\x1b').count();
        let resets = s.matches("\x1b[0m").count();
        assert_eq!(opens, resets * 2, "every escape is paired with a reset");
    }
}
