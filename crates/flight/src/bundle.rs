//! Incident bundles: self-contained postmortem records captured when a
//! severity trigger fires, exported as JSONL (`schema_version`
//! `FLIGHT=1`).
//!
//! A bundle carries everything needed to explain one incident offline:
//! the last N ring events around the trigger (globally sequenced and
//! query-correlated), the offending query's full [`QueryTrace`], the
//! metrics-counter delta over the incident query, the query's profiler
//! folded stack, and the recorder's per-producer drop counters at
//! capture time (so a reader knows whether the timeline has holes).

use lqo_obs::export::{trace_from_json, trace_to_json};
use lqo_obs::json::Value;
use lqo_obs::trace::QueryTrace;

use crate::event::{FlightEvent, FlightRecord, Producer};

/// Schema version stamped on every exported bundle. Readers accept
/// absent or older versions and reject newer ones.
pub const FLIGHT_SCHEMA_VERSION: u64 = 1;

/// One captured incident.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentBundle {
    /// Bundle id, unique within the recording context.
    pub id: u64,
    /// What fired (e.g. `"breaker-open:card:learned"`,
    /// `"worker-fault:HashJoin"`, `"reopt-switch"`).
    pub trigger: String,
    /// Id of the offending query (correlates with
    /// [`FlightRecord::query_id`]).
    pub query_id: u64,
    /// The offending query's text or label.
    pub query: String,
    /// The last N ring events at trigger time, oldest first (global
    /// sequence order).
    pub events: Vec<FlightRecord>,
    /// Per-producer events lost before capture (capacity overwrites +
    /// contention drops); only non-zero entries, producer-name keyed.
    pub dropped: Vec<(String, u64)>,
    /// The offending query's full trace, when the query ran under an
    /// enabled `ObsContext`.
    pub trace: Option<QueryTrace>,
    /// Metrics-counter deltas over the incident query (counter name →
    /// increase since the query began), name-sorted, zero deltas
    /// omitted.
    pub metrics_delta: Vec<(String, u64)>,
    /// The query's profiler folded stack, when a `ProfContext` was
    /// attached.
    pub prof_folded: Option<String>,
}

impl IncidentBundle {
    /// Structural well-formedness: non-empty trigger and query label,
    /// ring events in strictly increasing global-sequence order, and
    /// each producer's events in strictly increasing per-producer
    /// order. This is the invariant the E9d chaos sweep asserts on
    /// every captured bundle.
    pub fn is_well_formed(&self) -> bool {
        if self.trigger.is_empty() || self.query.is_empty() || self.query_id == 0 {
            return false;
        }
        let mut last_seq: Option<u64> = None;
        let mut last_pseq: [Option<u64>; crate::event::NUM_PRODUCERS] = Default::default();
        for r in &self.events {
            if last_seq.is_some_and(|s| r.seq <= s) {
                return false;
            }
            last_seq = Some(r.seq);
            let p = r.producer.index();
            if last_pseq[p].is_some_and(|s| r.producer_seq <= s) {
                return false;
            }
            last_pseq[p] = Some(r.producer_seq);
        }
        true
    }
}

fn u64_value(v: u64) -> Value {
    if v <= i64::MAX as u64 {
        Value::Int(v as i64)
    } else {
        Value::Float(v as f64)
    }
}

fn event_to_json(e: &FlightEvent) -> Value {
    let mut fields = vec![("kind".to_string(), Value::Str(e.kind().to_string()))];
    match e {
        FlightEvent::Span { name, begin } => {
            fields.push(("name".into(), Value::Str(name.clone())));
            fields.push(("begin".into(), Value::Bool(*begin)));
        }
        FlightEvent::Guard {
            component,
            fault,
            action,
        } => {
            fields.push(("component".into(), Value::Str(component.clone())));
            fields.push(("fault".into(), Value::Str(fault.clone())));
            fields.push(("action".into(), Value::Str(action.clone())));
        }
        FlightEvent::WatchAlarm {
            metric,
            health,
            detail,
        } => {
            fields.push(("metric".into(), Value::Str(metric.clone())));
            fields.push(("health".into(), Value::Str(health.clone())));
            fields.push(("detail".into(), Value::Str(detail.clone())));
        }
        FlightEvent::Cache {
            cache,
            event,
            detail,
        } => {
            fields.push(("cache".into(), Value::Str(cache.clone())));
            fields.push(("event".into(), Value::Str(event.clone())));
            fields.push(("detail".into(), Value::Str(detail.clone())));
        }
        FlightEvent::Reopt {
            tables,
            action,
            q_error,
        } => {
            fields.push(("tables".into(), u64_value(*tables)));
            fields.push(("action".into(), Value::Str(action.clone())));
            fields.push(("q_error".into(), Value::Float(*q_error)));
        }
        FlightEvent::BudgetTrip { component, budget } => {
            fields.push(("component".into(), Value::Str(component.clone())));
            fields.push(("budget".into(), Value::Float(*budget)));
        }
        FlightEvent::Breaker { component, state } => {
            fields.push(("component".into(), Value::Str(component.clone())));
            fields.push(("state".into(), Value::Str(state.clone())));
        }
        FlightEvent::WorkerFault { op, action } => {
            fields.push(("op".into(), Value::Str(op.clone())));
            fields.push(("action".into(), Value::Str(action.clone())));
        }
        FlightEvent::EpochBump { epoch, detail } => {
            fields.push(("epoch".into(), u64_value(*epoch)));
            fields.push(("detail".into(), Value::Str(detail.clone())));
        }
    }
    Value::Obj(fields)
}

fn str_field(v: &Value, key: &str) -> Option<String> {
    v.get(key)?.as_str().map(str::to_string)
}

fn event_from_json(v: &Value) -> Option<FlightEvent> {
    match v.get("kind")?.as_str()? {
        "span" => Some(FlightEvent::Span {
            name: str_field(v, "name")?,
            begin: v.get("begin")?.as_bool()?,
        }),
        "guard" => Some(FlightEvent::Guard {
            component: str_field(v, "component")?,
            fault: str_field(v, "fault")?,
            action: str_field(v, "action")?,
        }),
        "watch-alarm" => Some(FlightEvent::WatchAlarm {
            metric: str_field(v, "metric")?,
            health: str_field(v, "health")?,
            detail: str_field(v, "detail")?,
        }),
        "cache" => Some(FlightEvent::Cache {
            cache: str_field(v, "cache")?,
            event: str_field(v, "event")?,
            detail: str_field(v, "detail")?,
        }),
        "reopt" => Some(FlightEvent::Reopt {
            tables: v.get("tables")?.as_u64()?,
            action: str_field(v, "action")?,
            q_error: v.get("q_error")?.as_f64()?,
        }),
        "budget-trip" => Some(FlightEvent::BudgetTrip {
            component: str_field(v, "component")?,
            budget: v.get("budget")?.as_f64()?,
        }),
        "breaker" => Some(FlightEvent::Breaker {
            component: str_field(v, "component")?,
            state: str_field(v, "state")?,
        }),
        "worker-fault" => Some(FlightEvent::WorkerFault {
            op: str_field(v, "op")?,
            action: str_field(v, "action")?,
        }),
        "epoch-bump" => Some(FlightEvent::EpochBump {
            epoch: v.get("epoch")?.as_u64()?,
            detail: str_field(v, "detail")?,
        }),
        _ => None,
    }
}

fn record_to_json(r: &FlightRecord) -> Value {
    Value::Obj(vec![
        ("seq".into(), u64_value(r.seq)),
        ("producer".into(), Value::Str(r.producer.name().into())),
        ("producer_seq".into(), u64_value(r.producer_seq)),
        ("query_id".into(), u64_value(r.query_id)),
        ("event".into(), event_to_json(&r.event)),
    ])
}

fn record_from_json(v: &Value) -> Option<FlightRecord> {
    Some(FlightRecord {
        seq: v.get("seq")?.as_u64()?,
        producer: Producer::from_name(v.get("producer")?.as_str()?)?,
        producer_seq: v.get("producer_seq")?.as_u64()?,
        query_id: v.get("query_id")?.as_u64()?,
        event: event_from_json(v.get("event")?)?,
    })
}

/// Encode one bundle as a JSON object (one JSONL line once compacted).
pub fn bundle_to_json(b: &IncidentBundle) -> Value {
    Value::Obj(vec![
        ("schema_version".into(), u64_value(FLIGHT_SCHEMA_VERSION)),
        ("id".into(), u64_value(b.id)),
        ("trigger".into(), Value::Str(b.trigger.clone())),
        ("query_id".into(), u64_value(b.query_id)),
        ("query".into(), Value::Str(b.query.clone())),
        (
            "events".into(),
            Value::Arr(b.events.iter().map(record_to_json).collect()),
        ),
        (
            "dropped".into(),
            Value::Obj(
                b.dropped
                    .iter()
                    .map(|(p, n)| (p.clone(), u64_value(*n)))
                    .collect(),
            ),
        ),
        (
            "trace".into(),
            match &b.trace {
                Some(t) => trace_to_json(t),
                None => Value::Null,
            },
        ),
        (
            "metrics_delta".into(),
            Value::Obj(
                b.metrics_delta
                    .iter()
                    .map(|(k, v)| (k.clone(), u64_value(*v)))
                    .collect(),
            ),
        ),
        (
            "prof_folded".into(),
            match &b.prof_folded {
                Some(s) => Value::Str(s.clone()),
                None => Value::Null,
            },
        ),
    ])
}

/// Decode one bundle; `None` on shape mismatch or a schema version
/// newer than this reader understands (absent versions are accepted).
pub fn bundle_from_json(v: &Value) -> Option<IncidentBundle> {
    if let Some(ver) = v.get("schema_version").and_then(Value::as_u64) {
        if ver > FLIGHT_SCHEMA_VERSION {
            return None;
        }
    }
    let events = v
        .get("events")?
        .as_arr()?
        .iter()
        .map(record_from_json)
        .collect::<Option<Vec<_>>>()?;
    let obj_pairs = |val: &Value| -> Option<Vec<(String, u64)>> {
        match val {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, n)| Some((k.clone(), n.as_u64()?)))
                .collect(),
            _ => None,
        }
    };
    let trace = match v.get("trace")? {
        Value::Null => None,
        t => Some(trace_from_json(t)?),
    };
    Some(IncidentBundle {
        id: v.get("id")?.as_u64()?,
        trigger: str_field(v, "trigger")?,
        query_id: v.get("query_id")?.as_u64()?,
        query: str_field(v, "query")?,
        events,
        dropped: obj_pairs(v.get("dropped")?)?,
        trace,
        metrics_delta: obj_pairs(v.get("metrics_delta")?)?,
        prof_folded: v
            .get("prof_folded")
            .and_then(Value::as_str)
            .map(String::from),
    })
}

/// Serialize bundles as JSONL, one self-contained bundle per line.
pub fn write_bundles_jsonl(bundles: &[IncidentBundle]) -> String {
    let mut out = String::new();
    for b in bundles {
        out.push_str(&bundle_to_json(b).to_compact());
        out.push('\n');
    }
    out
}

/// Parse a JSONL bundle export; `None` if any non-blank line fails.
pub fn parse_bundles_jsonl(input: &str) -> Option<Vec<IncidentBundle>> {
    input
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| bundle_from_json(&lqo_obs::json::parse(l)?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> IncidentBundle {
        let mut trace = QueryTrace::new("SELECT COUNT(*) FROM t0, t1");
        trace.push_guard(lqo_obs::trace::GuardEvent {
            component: "card:learned".into(),
            fault: "panic".into(),
            action: "fallback:traditional".into(),
        });
        IncidentBundle {
            id: 1,
            trigger: "breaker-open:card:learned".into(),
            query_id: 3,
            query: "SELECT COUNT(*) FROM t0, t1".into(),
            events: vec![
                FlightRecord {
                    seq: 10,
                    producer: Producer::Pilot,
                    producer_seq: 4,
                    query_id: 3,
                    event: FlightEvent::Span {
                        name: "query".into(),
                        begin: true,
                    },
                },
                FlightRecord {
                    seq: 11,
                    producer: Producer::Guard,
                    producer_seq: 0,
                    query_id: 3,
                    event: FlightEvent::Breaker {
                        component: "card:learned".into(),
                        state: "open".into(),
                    },
                },
                FlightRecord {
                    seq: 14,
                    producer: Producer::Guard,
                    producer_seq: 1,
                    query_id: 3,
                    event: FlightEvent::BudgetTrip {
                        component: "exec".into(),
                        budget: 1.5e4,
                    },
                },
            ],
            dropped: vec![("exec".into(), 2)],
            trace: Some(trace),
            metrics_delta: vec![
                ("lqo.exec.queries".into(), 1),
                ("lqo.guard.breaker_opens".into(), 1),
            ],
            prof_folded: Some("execute 120\nexecute;Scan 40\n".into()),
        }
    }

    #[test]
    fn bundle_round_trips_losslessly() {
        let b = sample_bundle();
        let line = write_bundles_jsonl(std::slice::from_ref(&b));
        assert_eq!(line.lines().count(), 1);
        let back = parse_bundles_jsonl(&line).expect("parse");
        assert_eq!(back, vec![b]);
    }

    #[test]
    fn every_event_kind_round_trips() {
        let kinds = vec![
            FlightEvent::Span {
                name: "plan.optimize".into(),
                begin: false,
            },
            FlightEvent::Guard {
                component: "c".into(),
                fault: "nan".into(),
                action: "fallback:native".into(),
            },
            FlightEvent::WatchAlarm {
                metric: "card".into(),
                health: "drifted".into(),
                detail: "psi=0.4".into(),
            },
            FlightEvent::Cache {
                cache: "plan".into(),
                event: "invalidate".into(),
                detail: "epoch".into(),
            },
            FlightEvent::Reopt {
                tables: 0b101,
                action: "switch".into(),
                q_error: 9.5,
            },
            FlightEvent::BudgetTrip {
                component: "exec".into(),
                budget: 4.0e4,
            },
            FlightEvent::Breaker {
                component: "driver:bao".into(),
                state: "closed".into(),
            },
            FlightEvent::WorkerFault {
                op: "HashJoin".into(),
                action: "fallback:serial".into(),
            },
            FlightEvent::EpochBump {
                epoch: 7,
                detail: "stats-refresh".into(),
            },
        ];
        for e in kinds {
            let back = event_from_json(&event_to_json(&e)).expect("round trip");
            assert_eq!(back, e);
        }
    }

    #[test]
    fn newer_schema_is_rejected_absent_is_accepted() {
        let b = sample_bundle();
        let line = bundle_to_json(&b).to_compact();
        let newer = line.replace(
            "\"schema_version\":1",
            &format!("\"schema_version\":{}", FLIGHT_SCHEMA_VERSION + 1),
        );
        assert!(parse_bundles_jsonl(&newer).is_none());
        let absent = line.replace("\"schema_version\":1,", "");
        assert_eq!(parse_bundles_jsonl(&absent).expect("parse"), vec![b]);
    }

    #[test]
    fn well_formedness_catches_seq_disorder() {
        let mut b = sample_bundle();
        assert!(b.is_well_formed());
        b.events.swap(1, 2);
        assert!(!b.is_well_formed());
        let mut empty_trigger = sample_bundle();
        empty_trigger.trigger.clear();
        assert!(!empty_trigger.is_well_formed());
        // Per-producer disorder with global seqs still increasing.
        let mut pseq = sample_bundle();
        pseq.events[2].producer_seq = 0;
        assert!(!pseq.is_well_formed());
    }
}
