//! The model-health monitor: per-component telemetry → health state.
//!
//! A [`ModelHealthMonitor`] is the hub of `lqo-watch`. Execution
//! feedback flows in — per-operator estimate/truth pairs, predicted cost
//! vs measured work, plan/exec latencies, guard events — either directly
//! or by ingesting finished [`QueryTrace`]s from `lqo-obs`. Per
//! component it maintains a q-error sketch against a frozen baseline, a
//! calibration tracker, and a drift detector on the true-cardinality
//! stream, and from those derives a published health state:
//!
//! * [`HealthState::Drifted`] — the two-window drift test fired;
//! * [`HealthState::Degrading`] — window p95 q-error blew past the
//!   baseline, calibration bias exceeded its limit, or the component's
//!   circuit breaker is open (the `lqo-guard` correlation);
//! * [`HealthState::Healthy`] — otherwise.
//!
//! The monitor is `Mutex`-guarded and shared by `Arc`, mirroring how
//! `ObsContext` threads through the stack; when an `ObsContext` is
//! attached, health states are published as `lqo.watch.health.<comp>`
//! gauges and alarm transitions as `lqo.watch.alarms` counters.

use std::collections::BTreeMap;
use std::fmt;

use parking_lot::Mutex;

use lqo_obs::metrics::Histogram;
use lqo_obs::trace::QueryTrace;
use lqo_obs::ObsContext;

use crate::attribution::{rank_blame, RegressionRecord};
use crate::calibration::CalibrationTracker;
use crate::drift::{DriftConfig, DriftDetector};
use crate::series::SamplePoint;
use crate::sketch::QErrorSketch;
use crate::slo::{SloConfig, SloReport, SloTracker};

/// Published per-component health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Within baseline behaviour.
    Healthy,
    /// Accuracy, calibration, or availability is eroding.
    Degrading,
    /// The input distribution moved from under the model.
    Drifted,
}

impl HealthState {
    /// Numeric code for gauges and series: 0 / 1 / 2.
    pub fn code(self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degrading => 1,
            HealthState::Drifted => 2,
        }
    }

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degrading => "degrading",
            HealthState::Drifted => "drifted",
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Monitor tuning.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Q-error observations frozen as the per-component baseline.
    pub baseline: usize,
    /// Q-error sketch chunk size (window granularity).
    pub chunk: usize,
    /// Chunks in the sketch's sliding window.
    pub window_chunks: usize,
    /// Degrading when window p95 exceeds `degrade_factor ×` baseline p95…
    pub degrade_factor: f64,
    /// …and also exceeds this absolute floor (a 1.2→2.5 median is noise).
    pub degrade_min_p95: f64,
    /// Degrading when |calibration bias| (log₂) exceeds this.
    pub bias_limit_log2: f64,
    /// Drift-detector tuning (applied per component).
    pub drift: DriftConfig,
    /// SLO tuning (monitor-wide).
    pub slo: SloConfig,
    /// Append a series sample every N observations per component.
    pub sample_every: usize,
    /// Hard cap on retained series samples.
    pub max_series: usize,
    /// Work ratio vs native above which a query counts as a regression.
    pub regression_threshold: f64,
    /// Worst regressions retained for attribution.
    pub max_regressions: usize,
}

impl Default for WatchConfig {
    fn default() -> WatchConfig {
        WatchConfig {
            baseline: 48,
            chunk: 16,
            window_chunks: 4,
            degrade_factor: 4.0,
            degrade_min_p95: 8.0,
            bias_limit_log2: 2.0,
            drift: DriftConfig::default(),
            slo: SloConfig::default(),
            sample_every: 1,
            max_series: 100_000,
            regression_threshold: 1.1,
            max_regressions: 64,
        }
    }
}

/// Live state for one watched component.
struct ComponentHealth {
    sketch: QErrorSketch,
    baseline: Histogram,
    calib: CalibrationTracker,
    drift: DriftDetector,
    observations: u64,
    guard_faults: u64,
    breaker_opens: u64,
    breaker_state: f64,
    first_alarm: Option<u64>,
    last_health: HealthState,
}

impl ComponentHealth {
    fn new(cfg: &WatchConfig) -> ComponentHealth {
        ComponentHealth {
            sketch: QErrorSketch::new(cfg.chunk, cfg.window_chunks),
            baseline: Histogram::new(),
            calib: CalibrationTracker::new(),
            drift: DriftDetector::new(cfg.drift.clone()),
            observations: 0,
            guard_faults: 0,
            breaker_opens: 0,
            breaker_state: 0.0,
            first_alarm: None,
            last_health: HealthState::Healthy,
        }
    }

    fn health(&self, cfg: &WatchConfig) -> HealthState {
        if self.drift.status().drifted {
            return HealthState::Drifted;
        }
        if self.breaker_state >= 2.0 {
            return HealthState::Degrading;
        }
        if self.baseline.count() >= cfg.baseline as u64 {
            if let (Some(base_p95), Some(cur_p95)) =
                (self.baseline.quantile(0.95), self.sketch.p95())
            {
                if cur_p95 > cfg.degrade_min_p95 && cur_p95 > cfg.degrade_factor * base_p95 {
                    return HealthState::Degrading;
                }
            }
        }
        if self.calib.count() >= cfg.baseline as u64
            && self.calib.bias_log2().abs() > cfg.bias_limit_log2
        {
            return HealthState::Degrading;
        }
        HealthState::Healthy
    }
}

/// Point-in-time summary of one component.
#[derive(Debug, Clone)]
pub struct ComponentReport {
    /// Component name.
    pub name: String,
    /// Feedback observations consumed.
    pub observations: u64,
    /// Window median q-error.
    pub q50: Option<f64>,
    /// Window p95 q-error.
    pub q95: Option<f64>,
    /// Window max q-error.
    pub qmax: Option<f64>,
    /// Frozen baseline p95 q-error.
    pub baseline_p95: Option<f64>,
    /// Current drift PSI score.
    pub psi: f64,
    /// Current drift KS score.
    pub ks: f64,
    /// Calibration bias, log₂(predicted/actual).
    pub bias_log2: f64,
    /// Fraction of over-estimates.
    pub over_fraction: f64,
    /// Guard events attributed to this component.
    pub guard_faults: u64,
    /// Circuit-breaker open transitions observed.
    pub breaker_opens: u64,
    /// Latest breaker state code (0 closed, 1 half-open, 2 open).
    pub breaker_state: f64,
    /// Observation index of the first alarm, if any fired.
    pub first_alarm: Option<u64>,
    /// Current health.
    pub health: HealthState,
}

/// Monitor-wide report: all components plus SLOs and regressions.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Per-component summaries, name order.
    pub components: Vec<ComponentReport>,
    /// SLO state.
    pub slo: SloReport,
    /// Worst regressed queries with ranked blame, worst first.
    pub regressions: Vec<RegressionRecord>,
}

impl HealthReport {
    /// The worst health across components (`Healthy` when empty).
    pub fn overall(&self) -> HealthState {
        self.components
            .iter()
            .map(|c| c.health)
            .max()
            .unwrap_or(HealthState::Healthy)
    }
}

struct Inner {
    components: BTreeMap<String, ComponentHealth>,
    slo: SloTracker,
    series: Vec<SamplePoint>,
    regressions: Vec<RegressionRecord>,
}

/// The shared online model-health monitor.
pub struct ModelHealthMonitor {
    cfg: WatchConfig,
    inner: Mutex<Inner>,
    obs: ObsContext,
    /// Flight recorder handle; behind its own lock because the monitor is
    /// shared via `Arc` and the recorder is attached after construction.
    flight: Mutex<lqo_flight::FlightContext>,
}

impl ModelHealthMonitor {
    /// A monitor under `cfg`, not yet publishing metrics.
    pub fn new(cfg: WatchConfig) -> ModelHealthMonitor {
        let slo = SloTracker::new(cfg.slo.clone());
        ModelHealthMonitor {
            cfg,
            inner: Mutex::new(Inner {
                components: BTreeMap::new(),
                slo,
                series: Vec::new(),
                regressions: Vec::new(),
            }),
            obs: ObsContext::disabled(),
            flight: Mutex::new(lqo_flight::FlightContext::disabled()),
        }
    }

    /// Attach an observability context: health gauges and alarm counters
    /// are published into its metrics registry.
    pub fn with_obs(mut self, obs: ObsContext) -> ModelHealthMonitor {
        self.obs = obs;
        self
    }

    /// Attach a flight recorder: every health-state transition is
    /// published onto the black-box ring as a watch-alarm edge (a
    /// transition into `drifted` is an incident trigger). Takes `&self`
    /// because the monitor is typically shared via `Arc` by the time the
    /// recorder exists.
    pub fn attach_flight(&self, flight: &lqo_flight::FlightContext) {
        *self.flight.lock() = flight.clone();
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &WatchConfig {
        &self.cfg
    }

    /// Record one cardinality estimate against its measured truth for
    /// `component`, updating sketch, baseline, calibration, and drift.
    pub fn observe_estimate(&self, component: &str, est_rows: f64, true_rows: f64) {
        let mut g = self.inner.lock();
        let cfg = &self.cfg;
        let c = g
            .components
            .entry(component.to_string())
            .or_insert_with(|| ComponentHealth::new(cfg));
        let q = crate::sketch::q_error(est_rows, true_rows);
        if c.baseline.count() < cfg.baseline as u64 {
            c.baseline.record(q);
        }
        c.sketch.record_q(q);
        c.calib.observe(est_rows, true_rows);
        // Raw rows, not log rows: the PSI side of the detector buckets
        // its input logarithmically already, so feeding log-scale values
        // would square the compression and blind it to octave shifts.
        // The KS side is invariant under monotone transforms either way.
        c.drift.observe(1.0 + true_rows.max(0.0));
        c.observations += 1;
        self.after_observation(&mut g, component);
    }

    /// Record a cost-model prediction against the measured work for
    /// `component` (calibration + drift on the work stream; no q-error).
    pub fn observe_cost(&self, component: &str, predicted: f64, actual_work: f64) {
        let mut g = self.inner.lock();
        let cfg = &self.cfg;
        let c = g
            .components
            .entry(component.to_string())
            .or_insert_with(|| ComponentHealth::new(cfg));
        c.calib.observe(predicted, actual_work);
        c.drift.observe(1.0 + actual_work.max(0.0));
        c.observations += 1;
        self.after_observation(&mut g, component);
    }

    /// Record one query's latencies against the SLOs.
    pub fn observe_latency(&self, plan_ns: Option<u64>, exec_work: Option<f64>) {
        let mut g = self.inner.lock();
        if let Some(ns) = plan_ns {
            g.slo.observe_plan_ns(ns);
        }
        if let Some(w) = exec_work {
            g.slo.observe_exec_work(w);
        }
    }

    /// Correlate a circuit-breaker observation (state code per
    /// [`lqo-guard`'s convention]: 0 closed, 1 half-open, 2 open) with
    /// the component's health. `opens` is the breaker's lifetime open
    /// count.
    ///
    /// [`lqo-guard`'s convention]: HealthState::code
    pub fn record_breaker(&self, component: &str, state_code: f64, opens: u64) {
        let mut g = self.inner.lock();
        let cfg = &self.cfg;
        let c = g
            .components
            .entry(component.to_string())
            .or_insert_with(|| ComponentHealth::new(cfg));
        c.breaker_state = state_code;
        c.breaker_opens = c.breaker_opens.max(opens);
        self.after_observation(&mut g, component);
    }

    /// Ingest one finished query trace: operator estimate/truth pairs,
    /// cost calibration, SLO latencies, guard-event correlation, and —
    /// when `native_work` is given and the query regressed past the
    /// threshold — a ranked-blame regression record.
    pub fn ingest_trace(&self, trace: &QueryTrace, native_work: Option<f64>) {
        let component = component_of(trace);
        for op in &trace.exec.operators {
            if let Some(est) = op.est_rows {
                self.observe_estimate(&component, est, op.true_rows as f64);
            }
        }
        if let (Some(cost), Some(outcome)) = (trace.planner.chosen_cost, trace.outcome.as_ref()) {
            self.observe_cost(&format!("cost:{component}"), cost, outcome.work);
        }
        let plan_ns = trace
            .phases
            .iter()
            .find(|p| p.name == "plan")
            .map(|p| p.elapsed_ns);
        self.observe_latency(plan_ns, trace.outcome.as_ref().map(|o| o.work));
        if !trace.guard.is_empty() {
            let mut g = self.inner.lock();
            let cfg = &self.cfg;
            for ev in &trace.guard {
                let c = g
                    .components
                    .entry(ev.component.clone())
                    .or_insert_with(|| ComponentHealth::new(cfg));
                c.guard_faults += 1;
                if ev.fault == "breaker-open" {
                    c.breaker_state = 2.0;
                }
            }
        }
        if let (Some(native), Some(outcome)) = (native_work, trace.outcome.as_ref()) {
            let ratio = outcome.work / native.max(1e-9);
            if ratio > self.cfg.regression_threshold {
                let record = RegressionRecord {
                    query: trace.query.clone(),
                    component: component.clone(),
                    ratio,
                    blame: rank_blame(trace),
                };
                let mut g = self.inner.lock();
                g.regressions.push(record);
                g.regressions.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
                g.regressions.truncate(self.cfg.max_regressions);
                self.obs.count("lqo.watch.regressions", 1);
            }
        }
    }

    /// Current health of a component, if it has been observed.
    pub fn health(&self, component: &str) -> Option<HealthState> {
        let g = self.inner.lock();
        g.components.get(component).map(|c| c.health(&self.cfg))
    }

    /// Observation index (1-based) at which `component` first left
    /// `Healthy`, `None` while it never has.
    pub fn first_alarm(&self, component: &str) -> Option<u64> {
        let g = self.inner.lock();
        g.components.get(component).and_then(|c| c.first_alarm)
    }

    /// The accumulated health time series.
    pub fn series(&self) -> Vec<SamplePoint> {
        self.inner.lock().series.clone()
    }

    /// Build the full report.
    pub fn report(&self) -> HealthReport {
        let g = self.inner.lock();
        let components = g
            .components
            .iter()
            .map(|(name, c)| {
                let drift = c.drift.status();
                ComponentReport {
                    name: name.clone(),
                    observations: c.observations,
                    q50: c.sketch.p50(),
                    q95: c.sketch.p95(),
                    qmax: c.sketch.max(),
                    baseline_p95: c.baseline.quantile(0.95),
                    psi: drift.psi,
                    ks: drift.ks,
                    bias_log2: c.calib.bias_log2(),
                    over_fraction: c.calib.over_fraction(),
                    guard_faults: c.guard_faults,
                    breaker_opens: c.breaker_opens,
                    breaker_state: c.breaker_state,
                    first_alarm: c.first_alarm,
                    health: c.health(&self.cfg),
                }
            })
            .collect();
        HealthReport {
            components,
            slo: g.slo.report(),
            regressions: g.regressions.clone(),
        }
    }

    /// Post-observation bookkeeping: health transition tracking, gauge
    /// publication, and series sampling. Caller holds the lock.
    fn after_observation(&self, g: &mut Inner, component: &str) {
        let cfg = &self.cfg;
        let sample_every = cfg.sample_every.max(1) as u64;
        let max_series = cfg.max_series;
        let Some(c) = g.components.get_mut(component) else {
            return;
        };
        let health = c.health(cfg);
        if health != HealthState::Healthy && c.first_alarm.is_none() {
            c.first_alarm = Some(c.observations);
            self.obs.count("lqo.watch.alarms", 1);
        }
        if health != c.last_health {
            self.obs.count("lqo.watch.transitions", 1);
            let flight = self.flight.lock();
            if flight.is_enabled() {
                flight.publish(
                    lqo_flight::Producer::Watch,
                    lqo_flight::FlightEvent::WatchAlarm {
                        metric: component.to_string(),
                        health: health.name().to_string(),
                        detail: format!("from:{}", c.last_health.name()),
                    },
                );
            }
            c.last_health = health;
        }
        self.obs.gauge(
            &format!("lqo.watch.health.{component}"),
            health.code() as f64,
        );
        if c.observations % sample_every == 0 && g.series.len() < max_series {
            let drift = c.drift.status();
            let window = c.sketch.window();
            let point = SamplePoint {
                component: component.to_string(),
                seq: c.observations,
                q50: window.quantile(0.5).unwrap_or(1.0),
                q95: window.quantile(0.95).unwrap_or(1.0),
                qmax: window.max().unwrap_or(1.0),
                psi: drift.psi,
                ks: drift.ks,
                bias_log2: c.calib.bias_log2(),
                health: health.code(),
            };
            g.series.push(point);
        }
    }
}

/// The component a trace's estimates are attributed to: the planner's
/// cardinality source when recorded, else the steering driver, else the
/// bare planner.
pub fn component_of(trace: &QueryTrace) -> String {
    if let Some(src) = &trace.planner.card_source {
        format!("card:{src}")
    } else if let Some(driver) = &trace.driver {
        format!("driver:{driver}")
    } else {
        "planner".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqo_obs::trace::{CardLookup, GuardEvent, OperatorEvent, QueryOutcome};

    fn tiny_cfg() -> WatchConfig {
        WatchConfig {
            baseline: 8,
            chunk: 4,
            window_chunks: 2,
            degrade_factor: 4.0,
            degrade_min_p95: 8.0,
            drift: DriftConfig {
                warmup: 2,
                reference: 16,
                window: 12,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn accurate_component_stays_healthy() {
        let m = ModelHealthMonitor::new(tiny_cfg());
        for i in 0..100 {
            let truth = 50.0 + (i % 10) as f64 * 7.0;
            m.observe_estimate("card:hist", truth * 1.2, truth);
        }
        assert_eq!(m.health("card:hist"), Some(HealthState::Healthy));
        assert_eq!(m.first_alarm("card:hist"), None);
        let r = m.report();
        assert_eq!(r.overall(), HealthState::Healthy);
        assert_eq!(r.components.len(), 1);
        assert!(r.components[0].q95.unwrap() < 2.0);
        assert!(!m.series().is_empty());
    }

    #[test]
    fn exploding_q_error_degrades_then_distribution_shift_drifts() {
        let m = ModelHealthMonitor::new(tiny_cfg());
        // Good phase: accurate on a stable stream.
        for i in 0..40 {
            let truth = 40.0 + (i % 8) as f64 * 5.0;
            m.observe_estimate("card:stale", truth, truth);
        }
        assert_eq!(m.health("card:stale"), Some(HealthState::Healthy));
        // Same distribution, terrible estimates: Degrading (not Drifted).
        for i in 0..12 {
            let truth = 40.0 + (i % 8) as f64 * 5.0;
            m.observe_estimate("card:stale", truth * 500.0, truth);
        }
        assert_eq!(m.health("card:stale"), Some(HealthState::Degrading));
        let alarm = m.first_alarm("card:stale").expect("alarm");
        assert!(alarm > 40, "alarm at {alarm} fired in the good phase");
        // Now the truth stream itself moves two orders of magnitude.
        for i in 0..16 {
            let truth = 40_000.0 + (i % 8) as f64 * 5_000.0;
            m.observe_estimate("card:stale", 40.0, truth);
        }
        assert_eq!(m.health("card:stale"), Some(HealthState::Drifted));
        let r = m.report();
        assert!(r.components[0].psi > 0.0 || r.components[0].ks > 0.0);
        assert_eq!(r.overall(), HealthState::Drifted);
    }

    #[test]
    fn breaker_open_degrades_health() {
        let m = ModelHealthMonitor::new(tiny_cfg());
        m.observe_estimate("driver:bao", 10.0, 10.0);
        assert_eq!(m.health("driver:bao"), Some(HealthState::Healthy));
        m.record_breaker("driver:bao", 2.0, 1);
        assert_eq!(m.health("driver:bao"), Some(HealthState::Degrading));
        m.record_breaker("driver:bao", 0.0, 1);
        assert_eq!(m.health("driver:bao"), Some(HealthState::Healthy));
        assert_eq!(m.report().components[0].breaker_opens, 1);
    }

    fn regressed_trace() -> QueryTrace {
        let mut t = QueryTrace::new("SELECT COUNT(*) FROM a, b");
        t.driver = Some("bao".into());
        t.planner.card_source = Some("learned".into());
        t.planner.chosen_cost = Some(100.0);
        t.record_phase("plan", 1_000_000);
        t.planner.card_lookups.push(CardLookup {
            tables: 0b11,
            est_rows: 10.0,
        });
        t.exec.operators.push(OperatorEvent {
            op: "HashJoin".into(),
            tables: 0b11,
            true_rows: 1000,
            est_rows: Some(10.0),
            work: 90.0,
        });
        t.push_guard(GuardEvent {
            component: "driver:bao".into(),
            fault: "deadline".into(),
            action: "delegate".into(),
        });
        t.outcome = Some(QueryOutcome {
            count: 1000,
            work: 500.0,
            wall_ns: 2_000_000,
        });
        t
    }

    #[test]
    fn ingest_trace_feeds_all_subsystems() {
        let obs = ObsContext::enabled();
        let m = ModelHealthMonitor::new(tiny_cfg()).with_obs(obs.clone());
        m.ingest_trace(&regressed_trace(), Some(100.0));
        let r = m.report();
        let names: Vec<&str> = r.components.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"card:learned"), "{names:?}");
        assert!(names.contains(&"cost:card:learned"), "{names:?}");
        assert!(names.contains(&"driver:bao"), "{names:?}");
        // The guard event correlated onto driver:bao.
        let bao = r
            .components
            .iter()
            .find(|c| c.name == "driver:bao")
            .unwrap();
        assert_eq!(bao.guard_faults, 1);
        // The 5x regression produced a ranked blame record.
        assert_eq!(r.regressions.len(), 1);
        assert!((r.regressions[0].ratio - 5.0).abs() < 1e-9);
        assert_eq!(r.regressions[0].blame[0].op, "HashJoin");
        assert_eq!(r.regressions[0].blame[0].q_error, 100.0);
        // SLO consumed the plan time and work.
        assert_eq!(r.slo.plan.count, 1);
        assert_eq!(r.slo.exec.count, 1);
        // Gauges published.
        let snap = obs.metrics().unwrap().snapshot();
        assert!(snap.gauge("lqo.watch.health.card:learned").is_some());
        assert_eq!(snap.counter("lqo.watch.regressions"), Some(1));
    }
}
