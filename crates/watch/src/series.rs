//! Model-health time series: one JSONL sample per observation tick.
//!
//! The monitor appends a [`SamplePoint`] per component at a configurable
//! stride; the series is the data behind the dashboard's sparklines and
//! is exported as JSONL (one compact object per line) so external tools
//! can tail it. The round trip `parse_series_jsonl(write_series_jsonl(s))
//! == s` holds for every finite field.

use lqo_obs::json::{parse, Value};

/// Schema version stamped on every exported series line. Readers accept
/// absent versions (pre-versioning exports) and any version up to this
/// one. The full schema registry lives in DESIGN.md §13.
pub const SERIES_SCHEMA_VERSION: u64 = 1;

/// One component's health sample at one point in the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplePoint {
    /// Component name (`"card:histogram"`, `"driver:bao"`, ...).
    pub component: String,
    /// Component-local observation index (1-based, monotone).
    pub seq: u64,
    /// Window median q-error.
    pub q50: f64,
    /// Window p95 q-error.
    pub q95: f64,
    /// Window max q-error.
    pub qmax: f64,
    /// Drift PSI score at this point (0 before warm-up).
    pub psi: f64,
    /// Drift KS score at this point (0 before warm-up).
    pub ks: f64,
    /// Calibration bias, log₂(predicted/actual).
    pub bias_log2: f64,
    /// Health code: 0 healthy, 1 degrading, 2 drifted.
    pub health: u8,
}

fn f(v: f64) -> Value {
    Value::Float(if v.is_finite() { v } else { 0.0 })
}

/// Encode one sample as a JSON object.
pub fn sample_to_json(s: &SamplePoint) -> Value {
    Value::Obj(vec![
        (
            "schema_version".into(),
            Value::Int(SERIES_SCHEMA_VERSION as i64),
        ),
        ("component".into(), Value::Str(s.component.clone())),
        (
            "seq".into(),
            Value::Int(i64::try_from(s.seq).unwrap_or(i64::MAX)),
        ),
        ("q50".into(), f(s.q50)),
        ("q95".into(), f(s.q95)),
        ("qmax".into(), f(s.qmax)),
        ("psi".into(), f(s.psi)),
        ("ks".into(), f(s.ks)),
        ("bias_log2".into(), f(s.bias_log2)),
        ("health".into(), Value::Int(s.health as i64)),
    ])
}

/// Decode one sample; `None` on shape mismatch or on a schema version
/// newer than this reader understands (absent versions are accepted).
pub fn sample_from_json(v: &Value) -> Option<SamplePoint> {
    if let Some(ver) = v.get("schema_version").and_then(Value::as_u64) {
        if ver > SERIES_SCHEMA_VERSION {
            return None;
        }
    }
    Some(SamplePoint {
        component: v.get("component")?.as_str()?.to_string(),
        seq: v.get("seq")?.as_u64()?,
        q50: v.get("q50")?.as_f64()?,
        q95: v.get("q95")?.as_f64()?,
        qmax: v.get("qmax")?.as_f64()?,
        psi: v.get("psi")?.as_f64()?,
        ks: v.get("ks")?.as_f64()?,
        bias_log2: v.get("bias_log2")?.as_f64()?,
        health: u8::try_from(v.get("health")?.as_u64()?).ok()?,
    })
}

/// Serialize a series as JSONL, one sample per line.
pub fn write_series_jsonl(series: &[SamplePoint]) -> String {
    let mut out = String::new();
    for s in series {
        out.push_str(&sample_to_json(s).to_compact());
        out.push('\n');
    }
    out
}

/// Parse a JSONL series. Blank lines are skipped; any malformed line
/// fails the whole parse.
pub fn parse_series_jsonl(input: &str) -> Option<Vec<SamplePoint>> {
    input
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| sample_from_json(&parse(l)?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> SamplePoint {
        SamplePoint {
            component: "card:histogram".into(),
            seq,
            q50: 1.5,
            q95: 12.25,
            qmax: 400.0,
            psi: 0.07,
            ks: 0.11,
            bias_log2: -0.5,
            health: 0,
        }
    }

    #[test]
    fn series_round_trips() {
        let series = vec![sample(1), sample(2), sample(3)];
        let text = write_series_jsonl(&series);
        assert_eq!(text.lines().count(), 3);
        assert_eq!(parse_series_jsonl(&text).expect("parse"), series);
        assert!(parse_series_jsonl("not json\n").is_none());
        assert_eq!(parse_series_jsonl("\n\n").unwrap().len(), 0);
    }

    #[test]
    fn series_schema_version_stamped_and_gated() {
        let text = sample_to_json(&sample(1)).to_compact();
        assert!(text.contains(&format!("\"schema_version\":{SERIES_SCHEMA_VERSION}")));
        // Legacy unversioned lines parse; future versions are rejected.
        let legacy = text.replace(&format!("\"schema_version\":{SERIES_SCHEMA_VERSION},"), "");
        assert_eq!(parse_series_jsonl(&legacy).unwrap(), vec![sample(1)]);
        let future = text.replace(
            &format!("\"schema_version\":{SERIES_SCHEMA_VERSION},"),
            &format!("\"schema_version\":{},", SERIES_SCHEMA_VERSION + 1),
        );
        assert!(parse_series_jsonl(&future).is_none());
    }
}
