//! Streaming Q-error sketches on the `lqo-obs` log₂-histogram machinery.
//!
//! A [`QErrorSketch`] summarizes a stream of per-operator q-errors with
//! two views: a *lifetime* histogram (everything ever observed) and a
//! *sliding window* built from a ring of fixed-size chunks, so recent
//! behaviour can be compared against a frozen baseline without storing
//! the raw stream. Both views answer interpolated quantiles (median /
//! p95 / max) in O(buckets), and sketches merge exactly (bucket-wise),
//! which is what makes per-shard sketches aggregate to the global one.

use std::collections::VecDeque;

use lqo_obs::metrics::Histogram;

/// Q-error of an estimate against the truth: `max(est/true, true/est)`,
/// both floored at one row, so it is always `>= 1` and symmetric in
/// over/under-estimation.
pub fn q_error(est: f64, truth: f64) -> f64 {
    let est = if est.is_finite() {
        est.max(1.0)
    } else {
        f64::MAX
    };
    let truth = truth.max(1.0);
    (est / truth).max(truth / est)
}

/// A windowed, mergeable q-error sketch.
#[derive(Debug, Clone)]
pub struct QErrorSketch {
    /// Observations per chunk.
    chunk_size: usize,
    /// Chunks kept in the sliding window (newest last).
    max_chunks: usize,
    chunks: VecDeque<Histogram>,
    /// Observations recorded into the newest chunk so far.
    open: usize,
    lifetime: Histogram,
}

impl QErrorSketch {
    /// An empty sketch whose window covers the last
    /// `chunk_size × max_chunks` observations (within one chunk of
    /// granularity).
    pub fn new(chunk_size: usize, max_chunks: usize) -> QErrorSketch {
        QErrorSketch {
            chunk_size: chunk_size.max(1),
            max_chunks: max_chunks.max(1),
            chunks: VecDeque::new(),
            open: 0,
            lifetime: Histogram::new(),
        }
    }

    /// Record one estimate/truth pair.
    pub fn record(&mut self, est: f64, truth: f64) {
        self.record_q(q_error(est, truth));
    }

    /// Record a precomputed q-error.
    pub fn record_q(&mut self, q: f64) {
        if self.chunks.is_empty() || self.open == self.chunk_size {
            self.chunks.push_back(Histogram::new());
            self.open = 0;
            while self.chunks.len() > self.max_chunks {
                self.chunks.pop_front();
            }
        }
        self.chunks.back_mut().expect("chunk").record(q);
        self.open += 1;
        self.lifetime.record(q);
    }

    /// Total observations ever recorded.
    pub fn count(&self) -> u64 {
        self.lifetime.count()
    }

    /// The lifetime histogram.
    pub fn lifetime(&self) -> &Histogram {
        &self.lifetime
    }

    /// The sliding-window histogram (chunks merged).
    pub fn window(&self) -> Histogram {
        let mut merged = Histogram::new();
        for c in &self.chunks {
            merged.merge(c);
        }
        merged
    }

    /// Window median q-error (interpolated), `None` if empty.
    pub fn p50(&self) -> Option<f64> {
        self.window().quantile(0.5)
    }

    /// Window p95 q-error (interpolated), `None` if empty.
    pub fn p95(&self) -> Option<f64> {
        self.window().quantile(0.95)
    }

    /// Window maximum q-error, `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.window().max()
    }

    /// Merge another sketch into this one. Lifetime views merge exactly;
    /// window chunks are concatenated newest-last and re-trimmed to this
    /// sketch's ring capacity.
    pub fn merge(&mut self, other: &QErrorSketch) {
        self.lifetime.merge(&other.lifetime);
        for c in &other.chunks {
            self.chunks.push_back(c.clone());
        }
        self.open = self.chunk_size; // force a fresh chunk on next record
        while self.chunks.len() > self.max_chunks {
            self.chunks.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_is_symmetric_and_floored() {
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(0.25, 0.0), 1.0);
        assert!(q_error(f64::NAN, 10.0) > 1e100);
    }

    #[test]
    fn window_slides_lifetime_accumulates() {
        let mut s = QErrorSketch::new(4, 2); // window = last 8 (±1 chunk)
        for _ in 0..8 {
            s.record_q(100.0);
        }
        assert_eq!(s.count(), 8);
        assert!(s.p95().unwrap() >= 64.0);
        // 8 good observations push both bad chunks out of the window.
        for _ in 0..8 {
            s.record_q(1.0);
        }
        assert_eq!(s.count(), 16);
        assert_eq!(s.p95(), Some(1.0), "window forgot the bad epoch");
        // Lifetime still remembers: p95 over 8 bad + 8 good stays high.
        assert!(s.lifetime().quantile(0.95).unwrap() > 50.0);
    }

    #[test]
    fn merge_matches_combined_lifetime() {
        let mut a = QErrorSketch::new(4, 4);
        let mut b = QErrorSketch::new(4, 4);
        let mut combined = QErrorSketch::new(4, 8);
        for q in [1.0, 2.0, 8.0] {
            a.record_q(q);
            combined.record_q(q);
        }
        for q in [4.0, 100.0] {
            b.record_q(q);
            combined.record_q(q);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.lifetime(), combined.lifetime());
        assert_eq!(a.max(), Some(100.0));
    }
}
