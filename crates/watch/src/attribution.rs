//! Per-query regression attribution: which estimate is to blame?
//!
//! When a steered plan loses to the native baseline, the useful question
//! is not *that* it lost but *which estimator error explains the
//! choice*. Every operator in a [`QueryTrace`] carries the planner's
//! estimate and the executor's truth; an operator's blame score weighs
//! its log q-error by the share of the query's work spent under it, so a
//! 100× miss on the operator that consumed 90% of the runtime outranks a
//! 1000× miss on a one-row side branch.

use lqo_obs::trace::QueryTrace;

/// One operator's share of the blame for a regressed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Blame {
    /// Operator label (`"HashJoin"`, `"Scan"`, ...).
    pub op: String,
    /// Table-set bitmask of the operator's output.
    pub tables: u64,
    /// The q-error of the planner's estimate at this operator.
    pub q_error: f64,
    /// Fraction of the query's work charged to this operator.
    pub work_share: f64,
    /// Ranking score: `ln(q_error) · work_share`.
    pub score: f64,
}

/// Rank the operators of a trace by blame score, descending. Operators
/// without both an estimate and a truth are skipped; ties break on the
/// table mask so the order is deterministic.
pub fn rank_blame(trace: &QueryTrace) -> Vec<Blame> {
    let total_work: f64 = trace
        .exec
        .operators
        .iter()
        .map(|o| o.work.max(0.0))
        .sum::<f64>()
        .max(1e-9);
    let mut out: Vec<Blame> = trace
        .exec
        .operators
        .iter()
        .filter_map(|o| {
            let q = o.q_error()?;
            let work_share = o.work.max(0.0) / total_work;
            Some(Blame {
                op: o.op.clone(),
                tables: o.tables,
                q_error: q,
                work_share,
                score: q.max(1.0).ln() * work_share,
            })
        })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.tables.cmp(&b.tables))
    });
    out
}

/// A regressed query with its ranked blame list.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionRecord {
    /// The query text (or stable workload name).
    pub query: String,
    /// The component (driver/optimizer) that chose the plan.
    pub component: String,
    /// Slowdown versus the native baseline (`work / native_work`).
    pub ratio: f64,
    /// Operators ranked by blame, worst first.
    pub blame: Vec<Blame>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqo_obs::trace::OperatorEvent;

    fn op(label: &str, tables: u64, truth: u64, est: f64, work: f64) -> OperatorEvent {
        OperatorEvent {
            op: label.into(),
            tables,
            true_rows: truth,
            est_rows: Some(est),
            work,
        }
    }

    #[test]
    fn heavy_moderate_miss_outranks_light_huge_miss() {
        let mut t = QueryTrace::new("q");
        // 100x miss on 90% of the work vs 1000x miss on 1% of it.
        t.exec
            .operators
            .push(op("HashJoin", 0b11, 10_000, 100.0, 90.0));
        t.exec.operators.push(op("Scan", 0b100, 1, 1000.0, 1.0));
        t.exec.operators.push(OperatorEvent {
            op: "Scan".into(),
            tables: 0b1000,
            true_rows: 5,
            est_rows: None, // no estimate: not blamable
            work: 9.0,
        });
        let blame = rank_blame(&t);
        assert_eq!(blame.len(), 2);
        assert_eq!(blame[0].op, "HashJoin");
        assert_eq!(blame[0].q_error, 100.0);
        assert!((blame[0].work_share - 0.9).abs() < 1e-9);
        assert!(blame[0].score > blame[1].score);
    }

    #[test]
    fn no_estimates_means_no_blame() {
        let mut t = QueryTrace::new("q");
        t.exec.operators.push(OperatorEvent {
            op: "Scan".into(),
            tables: 1,
            true_rows: 10,
            est_rows: None,
            work: 5.0,
        });
        assert!(rank_blame(&t).is_empty());
        assert!(rank_blame(&QueryTrace::new("empty")).is_empty());
    }

    #[test]
    fn perfect_estimates_score_zero_and_order_is_deterministic() {
        let mut t = QueryTrace::new("q");
        t.exec.operators.push(op("A", 2, 100, 100.0, 10.0));
        t.exec.operators.push(op("B", 1, 100, 100.0, 10.0));
        let blame = rank_blame(&t);
        assert!(blame.iter().all(|b| b.score == 0.0));
        // Tie broken by table mask, ascending.
        assert_eq!(blame[0].tables, 1);
        assert_eq!(blame[1].tables, 2);
    }
}
