//! SLO tracking: latency/work budgets with burn-rate counters.
//!
//! Two service-level objectives matter for a learned optimizer serving
//! traffic: *plan time* (the optimizer's own latency, where learned
//! inference hides) and *execution work* (the cost of the plans it
//! picks). Each is an objective of the form "p-fraction of queries under
//! the budget"; the tracker keeps lifetime histograms, violation
//! counters, and a sliding-window **burn rate** — the observed violation
//! rate divided by the allowed rate (`1 − target`). Burn 1.0 spends the
//! error budget exactly on schedule; sustained burn ≫ 1 means the SLO
//! will be missed and is the standard paging signal.

use std::collections::VecDeque;

use lqo_obs::metrics::Histogram;

/// SLO tuning.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Plan-time budget per query, nanoseconds.
    pub plan_budget_ns: u64,
    /// Execution-work budget per query, work units.
    pub exec_budget_work: f64,
    /// Objective: this fraction of queries must be within budget.
    pub target: f64,
    /// Sliding window (queries) for the burn rate.
    pub window: usize,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            plan_budget_ns: 50_000_000, // 50 ms
            exec_budget_work: 1e6,
            target: 0.95,
            window: 64,
        }
    }
}

/// One objective's live state.
#[derive(Debug, Clone)]
struct Objective {
    hist: Histogram,
    violations: u64,
    recent: VecDeque<bool>,
}

impl Objective {
    fn new() -> Objective {
        Objective {
            hist: Histogram::new(),
            violations: 0,
            recent: VecDeque::new(),
        }
    }

    fn observe(&mut self, value: f64, budget: f64, window: usize) {
        self.hist.record(value);
        let violated = value > budget;
        if violated {
            self.violations += 1;
        }
        self.recent.push_back(violated);
        while self.recent.len() > window {
            self.recent.pop_front();
        }
    }

    fn burn_rate(&self, target: f64) -> f64 {
        if self.recent.is_empty() {
            return 0.0;
        }
        let rate = self.recent.iter().filter(|&&v| v).count() as f64 / self.recent.len() as f64;
        let allowed = (1.0 - target).max(1e-9);
        rate / allowed
    }
}

/// Point-in-time report for one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloObjectiveReport {
    /// Queries observed.
    pub count: u64,
    /// Interpolated p95 of the observed values.
    pub p95: Option<f64>,
    /// The budget in force.
    pub budget: f64,
    /// Lifetime violations.
    pub violations: u64,
    /// Sliding-window burn rate (1.0 = spending the error budget exactly
    /// on schedule).
    pub burn_rate: f64,
    /// Whether the lifetime violation fraction still meets the target.
    pub met: bool,
}

/// Point-in-time report for both objectives.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Plan-time objective (nanoseconds).
    pub plan: SloObjectiveReport,
    /// Execution-work objective (work units).
    pub exec: SloObjectiveReport,
}

/// Tracks both SLOs for a query stream.
#[derive(Debug, Clone)]
pub struct SloTracker {
    cfg: SloConfig,
    plan: Objective,
    exec: Objective,
}

impl SloTracker {
    /// An empty tracker.
    pub fn new(cfg: SloConfig) -> SloTracker {
        SloTracker {
            cfg,
            plan: Objective::new(),
            exec: Objective::new(),
        }
    }

    /// Record one query's plan time.
    pub fn observe_plan_ns(&mut self, ns: u64) {
        self.plan
            .observe(ns as f64, self.cfg.plan_budget_ns as f64, self.cfg.window);
    }

    /// Record one query's execution work.
    pub fn observe_exec_work(&mut self, work: f64) {
        self.exec
            .observe(work, self.cfg.exec_budget_work, self.cfg.window);
    }

    /// Current report.
    pub fn report(&self) -> SloReport {
        let objective = |o: &Objective, budget: f64| {
            let count = o.hist.count();
            let met = count == 0 || (count - o.violations) as f64 / count as f64 >= self.cfg.target;
            SloObjectiveReport {
                count,
                p95: o.hist.quantile(0.95),
                budget,
                violations: o.violations,
                burn_rate: o.burn_rate(self.cfg.target),
                met,
            }
        };
        SloReport {
            plan: objective(&self.plan, self.cfg.plan_budget_ns as f64),
            exec: objective(&self.exec, self.cfg.exec_budget_work),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            plan_budget_ns: 1000,
            exec_budget_work: 100.0,
            target: 0.9,
            window: 10,
        }
    }

    #[test]
    fn within_budget_burns_nothing() {
        let mut t = SloTracker::new(cfg());
        for _ in 0..50 {
            t.observe_plan_ns(500);
            t.observe_exec_work(10.0);
        }
        let r = t.report();
        assert_eq!(r.plan.violations, 0);
        assert_eq!(r.plan.burn_rate, 0.0);
        assert!(r.plan.met && r.exec.met);
        assert_eq!(r.plan.count, 50);
    }

    #[test]
    fn sustained_violations_burn_fast_and_break_the_objective() {
        let mut t = SloTracker::new(cfg());
        for _ in 0..10 {
            t.observe_exec_work(10.0);
        }
        // Window full of violations: burn = 1.0 / (1 - 0.9) = 10.
        for _ in 0..10 {
            t.observe_exec_work(500.0);
        }
        let r = t.report();
        assert_eq!(r.exec.violations, 10);
        assert!((r.exec.burn_rate - 10.0).abs() < 1e-9);
        assert!(!r.exec.met, "50% violations vs 90% target");
        // Plan objective untouched.
        assert_eq!(r.plan.count, 0);
        assert!(r.plan.met);
    }

    #[test]
    fn burn_recovers_when_the_window_slides_past() {
        let mut t = SloTracker::new(cfg());
        for _ in 0..5 {
            t.observe_plan_ns(5000);
        }
        assert!(t.report().plan.burn_rate > 0.0);
        for _ in 0..10 {
            t.observe_plan_ns(10);
        }
        assert_eq!(t.report().plan.burn_rate, 0.0);
        assert_eq!(t.report().plan.violations, 5, "lifetime count remains");
    }
}
