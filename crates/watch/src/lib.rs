//! # lqo-watch
//!
//! Online model-health observability for the learned-qo stack: *is the
//! learned component still the component we validated?*
//!
//! The survey's deployment chapter argues that a learned optimizer needs
//! more than crash containment (`lqo-guard`'s job) — it needs to notice
//! *silent* failure: estimates drifting away from the data, calibration
//! bias creeping into the cost model, tail latencies eating the SLO.
//! This crate watches the execution-feedback stream and answers that
//! continuously, per component:
//!
//! * **Q-error sketches** ([`sketch`]) — streaming median/p95/max on the
//!   `lqo-obs` log₂-histogram machinery, with a sliding window compared
//!   against a frozen baseline;
//! * **Calibration** ([`calibration`]) — predicted-vs-actual buckets by
//!   prediction magnitude, exposing over/under-estimation bias that a
//!   mean hides;
//! * **Drift detection** ([`drift`]) — PSI and a two-sample KS test
//!   between a frozen reference window and a sliding current window,
//!   with warm-up so the detector cannot alarm before it has a baseline;
//! * **SLO tracking** ([`slo`]) — plan-time and execution-work budgets
//!   with sliding-window burn rates;
//! * **Regression attribution** ([`attribution`]) — when a steered query
//!   loses to the native baseline, a ranked blame list of the operator
//!   estimates that explain the loss;
//! * the **monitor** ([`monitor`]) — ties the above together per
//!   component, correlates `lqo-guard` breaker/fault events, publishes
//!   `Healthy` / `Degrading` / `Drifted` states as `lqo.watch.*`
//!   metrics, and samples a JSONL time series ([`series`]);
//! * **dashboards** ([`dashboard`]) — an ANSI console summary and a
//!   self-contained static HTML dashboard with inline-SVG sparklines.
//!
//! The crate deliberately depends only on `lqo-obs`: breaker
//! correlation arrives as data (trace [`lqo_obs::trace::GuardEvent`]s
//! and state codes reported by the pilot), never as a `lqo-guard`
//! dependency, keeping the watch layer reusable below any stack.

#![warn(missing_docs)]

pub mod attribution;
pub mod calibration;
pub mod dashboard;
pub mod drift;
pub mod monitor;
pub mod series;
pub mod sketch;
pub mod slo;

pub use attribution::{rank_blame, Blame, RegressionRecord};
pub use calibration::{CalBucket, CalibrationTracker};
pub use dashboard::{render_dashboard, render_health_ansi};
pub use drift::{ks_statistic, psi, DriftConfig, DriftDetector, DriftStatus};
pub use monitor::{
    component_of, ComponentReport, HealthReport, HealthState, ModelHealthMonitor, WatchConfig,
};
pub use series::{parse_series_jsonl, write_series_jsonl, SamplePoint};
pub use sketch::{q_error, QErrorSketch};
pub use slo::{SloConfig, SloObjectiveReport, SloReport, SloTracker};
