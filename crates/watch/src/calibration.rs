//! Calibration tracking: predicted vs actual, bucketed by prediction.
//!
//! A calibrated model's predictions match reality *at every magnitude*,
//! not just on average — a cost model that is 10× optimistic on cheap
//! plans and 10× pessimistic on expensive ones has a perfect mean and
//! picks terrible plans. The tracker buckets each observation by the
//! log₂ of its *predicted* value and keeps per-bucket predicted/actual
//! totals, yielding a calibration curve plus an overall log-scale bias
//! (positive = over-estimation, negative = under-estimation).

use std::collections::BTreeMap;

/// One calibration bucket: observations whose prediction fell in
/// `(2^(exp−1), 2^exp]`.
#[derive(Debug, Clone, Default)]
pub struct CalBucket {
    /// Observations in the bucket.
    pub count: u64,
    /// Sum of predicted values.
    pub predicted_sum: f64,
    /// Sum of actual values.
    pub actual_sum: f64,
}

impl CalBucket {
    /// Mean log₂(predicted/actual) proxy for the bucket: the ratio of
    /// sums, in log₂ (0 = calibrated, +1 = 2× over-estimation).
    pub fn bias_log2(&self) -> f64 {
        if self.count == 0 || self.actual_sum <= 0.0 || self.predicted_sum <= 0.0 {
            return 0.0;
        }
        (self.predicted_sum / self.actual_sum).log2()
    }
}

/// Streaming predicted-vs-actual calibration tracker.
#[derive(Debug, Clone, Default)]
pub struct CalibrationTracker {
    buckets: BTreeMap<i32, CalBucket>,
    count: u64,
    /// Sum of per-observation log₂(predicted/actual), values floored at 1.
    log2_ratio_sum: f64,
    over: u64,
    under: u64,
}

impl CalibrationTracker {
    /// An empty tracker.
    pub fn new() -> CalibrationTracker {
        CalibrationTracker::default()
    }

    /// Record one prediction against its measured outcome. Non-finite or
    /// non-positive pairs are floored at 1 so a rogue model cannot poison
    /// the tracker.
    pub fn observe(&mut self, predicted: f64, actual: f64) {
        let p = if predicted.is_finite() {
            predicted.max(1.0)
        } else {
            return;
        };
        let a = if actual.is_finite() {
            actual.max(1.0)
        } else {
            return;
        };
        let exp = p.log2().ceil() as i32;
        let b = self.buckets.entry(exp).or_default();
        b.count += 1;
        b.predicted_sum += p;
        b.actual_sum += a;
        self.count += 1;
        let r = (p / a).log2();
        self.log2_ratio_sum += r;
        if r > 0.0 {
            self.over += 1;
        } else if r < 0.0 {
            self.under += 1;
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean log₂(predicted/actual): 0 = calibrated, +k = `2^k`×
    /// over-estimation on geometric average.
    pub fn bias_log2(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.log2_ratio_sum / self.count as f64
    }

    /// Fraction of observations that over-estimated.
    pub fn over_fraction(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.over as f64 / self.count as f64
    }

    /// Fraction of observations that under-estimated.
    pub fn under_fraction(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.under as f64 / self.count as f64
    }

    /// The calibration curve: `(bucket exponent, bucket)` in ascending
    /// prediction-magnitude order.
    pub fn curve(&self) -> Vec<(i32, CalBucket)> {
        self.buckets.iter().map(|(&e, b)| (e, b.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_model_has_zero_bias() {
        let mut c = CalibrationTracker::new();
        for v in [2.0, 16.0, 300.0, 5000.0] {
            c.observe(v, v);
        }
        assert_eq!(c.count(), 4);
        assert!(c.bias_log2().abs() < 1e-12);
        assert_eq!(c.over_fraction(), 0.0);
        assert_eq!(c.under_fraction(), 0.0);
        assert!(c.curve().iter().all(|(_, b)| b.bias_log2().abs() < 1e-12));
    }

    #[test]
    fn magnitude_dependent_bias_shows_in_the_curve_not_the_mean() {
        let mut c = CalibrationTracker::new();
        // 4x over on small predictions, 4x under on large ones.
        for _ in 0..10 {
            c.observe(8.0, 2.0);
            c.observe(1024.0, 4096.0);
        }
        assert!(c.bias_log2().abs() < 1e-9, "means cancel");
        let curve = c.curve();
        assert_eq!(curve.len(), 2);
        assert!((curve[0].1.bias_log2() - 2.0).abs() < 1e-9);
        assert!((curve[1].1.bias_log2() + 2.0).abs() < 1e-9);
        assert_eq!(c.over_fraction(), 0.5);
        assert_eq!(c.under_fraction(), 0.5);
    }

    #[test]
    fn hostile_values_are_ignored_or_floored() {
        let mut c = CalibrationTracker::new();
        c.observe(f64::NAN, 5.0);
        c.observe(f64::INFINITY, 5.0);
        c.observe(5.0, f64::NAN);
        assert_eq!(c.count(), 0);
        c.observe(-3.0, 0.0); // both floored at 1
        assert_eq!(c.count(), 1);
        assert!(c.bias_log2().abs() < 1e-12);
    }
}
