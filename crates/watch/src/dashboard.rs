//! Health-report rendering: ANSI console table + self-contained HTML.
//!
//! Two renderers over the same [`HealthReport`]: an ANSI-colored summary
//! table for terminals, and a single-file HTML dashboard whose charts
//! are inline SVG built from the JSONL time series — no scripts, no
//! external assets, openable from disk years later.

use std::fmt::Write as _;

use crate::monitor::{HealthReport, HealthState};
use crate::series::SamplePoint;
use crate::slo::SloObjectiveReport;

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.2}"),
        Some(_) => "inf".to_string(),
        None => "-".to_string(),
    }
}

fn ansi_health(h: HealthState) -> String {
    match h {
        HealthState::Healthy => format!("\x1b[32m{}\x1b[0m", h.name()),
        HealthState::Degrading => format!("\x1b[33m{}\x1b[0m", h.name()),
        HealthState::Drifted => format!("\x1b[31m{}\x1b[0m", h.name()),
    }
}

fn slo_line(name: &str, o: &SloObjectiveReport) -> String {
    format!(
        "  {name:<6} count={:<6} p95={:<12} budget={:<12} violations={:<5} burn={:.2} {}",
        o.count,
        fmt_opt(o.p95),
        format!("{:.0}", o.budget),
        o.violations,
        o.burn_rate,
        if o.met {
            "\x1b[32mmet\x1b[0m"
        } else {
            "\x1b[31mMISSED\x1b[0m"
        }
    )
}

/// Render the report as an ANSI-colored console summary.
pub fn render_health_ansi(report: &HealthReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "model health: {} ({} components)",
        ansi_health(report.overall()),
        report.components.len()
    );
    let _ = writeln!(
        out,
        "  {:<20} {:>6} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6} {:>6} {:>6}  health",
        "component", "obs", "q50", "q95", "qmax", "psi", "ks", "bias", "faults", "opens"
    );
    for c in &report.components {
        let _ = writeln!(
            out,
            "  {:<20} {:>6} {:>8} {:>8} {:>8} {:>6.2} {:>6.2} {:>6.2} {:>6} {:>6}  {}",
            c.name,
            c.observations,
            fmt_opt(c.q50),
            fmt_opt(c.q95),
            fmt_opt(c.qmax),
            c.psi,
            c.ks,
            c.bias_log2,
            c.guard_faults,
            c.breaker_opens,
            ansi_health(c.health)
        );
    }
    let _ = writeln!(out, "slo:");
    out.push_str(&slo_line("plan", &report.slo.plan));
    out.push('\n');
    out.push_str(&slo_line("exec", &report.slo.exec));
    out.push('\n');
    if !report.regressions.is_empty() {
        let _ = writeln!(out, "regressions (worst first):");
        for r in report.regressions.iter().take(5) {
            let top = r
                .blame
                .first()
                .map(|b| {
                    format!(
                        "{} q={:.1} share={:.0}%",
                        b.op,
                        b.q_error,
                        b.work_share * 100.0
                    )
                })
                .unwrap_or_else(|| "no blamable operator".to_string());
            let _ = writeln!(
                out,
                "  {:.2}x [{}] {} <- {}",
                r.ratio,
                r.component,
                truncate(&r.query, 48),
                top
            );
        }
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

const HEALTH_COLORS: [&str; 3] = ["#2e9e44", "#d99a1b", "#cc3b3b"];

fn health_color(code: u8) -> &'static str {
    HEALTH_COLORS[usize::from(code).min(2)]
}

/// An inline SVG sparkline of `(x, y)` points on a log-ish y scale, with
/// per-point health coloring on the final segment markers.
fn sparkline(points: &[(f64, f64, u8)], width: u32, height: u32, threshold: Option<f64>) -> String {
    if points.is_empty() {
        return format!(
            "<svg width=\"{width}\" height=\"{height}\" role=\"img\"><text x=\"4\" y=\"{}\" \
             class=\"empty\">no data</text></svg>",
            height / 2
        );
    }
    let (w, h) = (width as f64, height as f64);
    let xmin = points.first().map(|p| p.0).unwrap_or(0.0);
    let xmax = points.last().map(|p| p.0).unwrap_or(1.0).max(xmin + 1.0);
    let ymax = points
        .iter()
        .map(|p| p.1)
        .chain(threshold)
        .fold(1e-12f64, f64::max);
    let ymin = points.iter().map(|p| p.1).fold(ymax, f64::min).min(0.0);
    let span = (ymax - ymin).max(1e-12);
    let px = |x: f64| 2.0 + (x - xmin) / (xmax - xmin) * (w - 4.0);
    let py = |y: f64| h - 2.0 - (y - ymin) / span * (h - 6.0);
    let mut path = String::new();
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            path,
            "{}{:.1},{:.1}",
            if i == 0 { "M" } else { " L" },
            px(p.0),
            py(p.1)
        );
    }
    let mut svg = format!("<svg width=\"{width}\" height=\"{height}\" role=\"img\">");
    if let Some(t) = threshold {
        if t <= ymax {
            let _ = write!(
                svg,
                "<line x1=\"0\" y1=\"{0:.1}\" x2=\"{w}\" y2=\"{0:.1}\" class=\"thr\"/>",
                py(t)
            );
        }
    }
    let _ = write!(svg, "<path d=\"{path}\" class=\"line\"/>");
    // Mark unhealthy samples so alarm onset is visible on the chart.
    for p in points.iter().filter(|p| p.2 > 0) {
        let _ = write!(
            svg,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2\" fill=\"{}\"/>",
            px(p.0),
            py(p.1),
            health_color(p.2)
        );
    }
    svg.push_str("</svg>");
    svg
}

/// A tiny inline-SVG bar chart of the component's windowed q-error
/// summary (q50 / q95 / qmax), log₂-scaled bars.
fn qerror_bars(q50: Option<f64>, q95: Option<f64>, qmax: Option<f64>) -> String {
    let vals = [("q50", q50), ("q95", q95), ("qmax", qmax)];
    let mut svg = String::from("<svg width=\"160\" height=\"46\" role=\"img\">");
    let top = vals
        .iter()
        .filter_map(|(_, v)| *v)
        .filter(|v| v.is_finite())
        .fold(2.0f64, f64::max)
        .log2();
    for (i, (label, v)) in vals.iter().enumerate() {
        let y = 4 + i as u32 * 14;
        let frac = match v {
            Some(x) if x.is_finite() => (x.max(1.0).log2() / top).clamp(0.02, 1.0),
            _ => 0.0,
        };
        let _ = write!(
            svg,
            "<text x=\"0\" y=\"{}\" class=\"lbl\">{label}</text>\
             <rect x=\"34\" y=\"{}\" width=\"{:.1}\" height=\"9\" class=\"bar\"/>\
             <text x=\"{:.1}\" y=\"{}\" class=\"val\">{}</text>",
            y + 9,
            y,
            110.0 * frac,
            36.0 + 110.0 * frac + 4.0,
            y + 9,
            escape(&fmt_opt(*v))
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Render the self-contained HTML dashboard from a report and its time
/// series. The output embeds all styling and SVG inline: no scripts, no
/// network fetches, no external files.
pub fn render_dashboard(report: &HealthReport, series: &[SamplePoint]) -> String {
    let mut html = String::new();
    html.push_str(
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>lqo-watch model health</title>\n<style>\n\
         body{font:14px/1.4 system-ui,sans-serif;margin:24px;color:#1c2330;background:#f7f8fa}\n\
         h1{font-size:20px} h2{font-size:16px;margin-top:28px}\n\
         table{border-collapse:collapse;background:#fff;box-shadow:0 1px 2px #0002}\n\
         th,td{padding:6px 10px;border:1px solid #dde1e8;text-align:right;font-variant-numeric:tabular-nums}\n\
         th{background:#eef1f5} td.name,th.name{text-align:left;font-family:ui-monospace,monospace}\n\
         .badge{display:inline-block;padding:1px 8px;border-radius:9px;color:#fff;font-size:12px}\n\
         svg{background:#fff;border:1px solid #dde1e8;border-radius:3px}\n\
         svg .line{fill:none;stroke:#3567b2;stroke-width:1.4}\n\
         svg .thr{stroke:#cc3b3b;stroke-width:1;stroke-dasharray:4 3}\n\
         svg .lbl,svg .val,svg .empty{font:10px ui-monospace,monospace;fill:#5a6270}\n\
         svg .bar{fill:#3567b2}\n\
         .cards{display:flex;flex-wrap:wrap;gap:16px}\n\
         .card{background:#fff;border:1px solid #dde1e8;border-radius:6px;padding:12px 14px;\
         box-shadow:0 1px 2px #0002}\n\
         .card h3{margin:0 0 6px;font-size:14px;font-family:ui-monospace,monospace}\n\
         .meta{color:#5a6270;font-size:12px;margin:4px 0}\n\
         </style></head><body>\n<h1>lqo-watch · model health</h1>\n",
    );
    let overall = report.overall();
    let _ = writeln!(
        html,
        "<p>overall: <span class=\"badge\" style=\"background:{}\">{}</span> \
         · {} components · {} series samples</p>",
        health_color(overall.code()),
        overall.name(),
        report.components.len(),
        series.len()
    );

    // Component summary table.
    html.push_str(
        "<h2>Components</h2>\n<table><tr><th class=\"name\">component</th><th>obs</th>\
         <th>q50</th><th>q95</th><th>qmax</th><th>baseline p95</th><th>psi</th><th>ks</th>\
         <th>bias (log2)</th><th>faults</th><th>opens</th><th>first alarm</th><th>health</th></tr>\n",
    );
    for c in &report.components {
        let _ = writeln!(
            html,
            "<tr><td class=\"name\">{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{:.3}</td><td>{:.3}</td><td>{:+.2}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td><span class=\"badge\" style=\"background:{}\">{}</span></td></tr>",
            escape(&c.name),
            c.observations,
            fmt_opt(c.q50),
            fmt_opt(c.q95),
            fmt_opt(c.qmax),
            fmt_opt(c.baseline_p95),
            c.psi,
            c.ks,
            c.bias_log2,
            c.guard_faults,
            c.breaker_opens,
            c.first_alarm
                .map(|a| a.to_string())
                .unwrap_or_else(|| "-".to_string()),
            health_color(c.health.code()),
            c.health.name()
        );
    }
    html.push_str("</table>\n");

    // Per-component sparklines from the series.
    html.push_str("<h2>Time series</h2>\n<div class=\"cards\">\n");
    for c in &report.components {
        let pts: Vec<&SamplePoint> = series.iter().filter(|s| s.component == c.name).collect();
        let q95: Vec<(f64, f64, u8)> = pts
            .iter()
            .map(|s| (s.seq as f64, s.q95.max(1.0).log2(), s.health))
            .collect();
        let psi: Vec<(f64, f64, u8)> = pts
            .iter()
            .map(|s| (s.seq as f64, s.psi, s.health))
            .collect();
        let ks: Vec<(f64, f64, u8)> = pts.iter().map(|s| (s.seq as f64, s.ks, s.health)).collect();
        let _ = writeln!(
            html,
            "<div class=\"card\"><h3>{}</h3>\
             <div class=\"meta\">log₂ q95 over time (dots = unhealthy samples)</div>{}\
             <div class=\"meta\">PSI (dashed = threshold)</div>{}\
             <div class=\"meta\">KS distance</div>{}\
             <div class=\"meta\">windowed q-error</div>{}</div>",
            escape(&c.name),
            sparkline(&q95, 320, 60, None),
            sparkline(&psi, 320, 48, Some(0.25)),
            sparkline(&ks, 320, 48, Some(0.35)),
            qerror_bars(c.q50, c.q95, c.qmax)
        );
    }
    html.push_str("</div>\n");

    // SLOs.
    html.push_str(
        "<h2>SLOs</h2>\n<table><tr><th class=\"name\">objective</th><th>count</th><th>p95</th>\
         <th>budget</th><th>violations</th><th>burn rate</th><th>state</th></tr>\n",
    );
    for (name, o) in [
        ("plan time (ns)", &report.slo.plan),
        ("exec work", &report.slo.exec),
    ] {
        let _ = writeln!(
            html,
            "<tr><td class=\"name\">{}</td><td>{}</td><td>{}</td><td>{:.0}</td><td>{}</td>\
             <td>{:.2}</td><td><span class=\"badge\" style=\"background:{}\">{}</span></td></tr>",
            name,
            o.count,
            fmt_opt(o.p95),
            o.budget,
            o.violations,
            o.burn_rate,
            if o.met {
                HEALTH_COLORS[0]
            } else {
                HEALTH_COLORS[2]
            },
            if o.met { "met" } else { "missed" }
        );
    }
    html.push_str("</table>\n");

    // Regressions.
    html.push_str("<h2>Regressions</h2>\n");
    if report.regressions.is_empty() {
        html.push_str("<p class=\"meta\">no regressed queries recorded</p>\n");
    } else {
        html.push_str(
            "<table><tr><th class=\"name\">query</th><th class=\"name\">component</th>\
             <th>slowdown</th><th class=\"name\">top blame</th></tr>\n",
        );
        for r in &report.regressions {
            let top = r
                .blame
                .first()
                .map(|b| {
                    format!(
                        "{} (q-error {:.1}, {:.0}% of work)",
                        b.op,
                        b.q_error,
                        b.work_share * 100.0
                    )
                })
                .unwrap_or_else(|| "no blamable operator".to_string());
            let _ = writeln!(
                html,
                "<tr><td class=\"name\">{}</td><td class=\"name\">{}</td>\
                 <td>{:.2}&times;</td><td class=\"name\">{}</td></tr>",
                escape(&truncate(&r.query, 80)),
                escape(&r.component),
                r.ratio,
                escape(&top)
            );
        }
        html.push_str("</table>\n");
    }
    html.push_str("</body></html>\n");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{ModelHealthMonitor, WatchConfig};

    fn populated_monitor() -> ModelHealthMonitor {
        let m = ModelHealthMonitor::new(WatchConfig::default());
        for i in 0..60 {
            let truth = 100.0 + (i % 10) as f64 * 11.0;
            m.observe_estimate("card:histogram", truth * 1.5, truth);
            m.observe_estimate("card:<learned>", truth * 40.0, truth);
        }
        m.observe_latency(Some(60_000_000), Some(2e6));
        m
    }

    #[test]
    fn ansi_summary_names_every_component_and_slo() {
        let m = populated_monitor();
        let text = render_health_ansi(&m.report());
        assert!(text.contains("card:histogram"));
        assert!(text.contains("card:<learned>"));
        assert!(text.contains("plan"));
        assert!(text.contains("exec"));
        assert!(text.contains("\x1b["), "expected ANSI colors");
    }

    #[test]
    fn dashboard_is_self_contained_html() {
        let m = populated_monitor();
        let html = render_dashboard(&m.report(), &m.series());
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.ends_with("</html>\n"));
        assert!(html.contains("<svg"), "charts must be inline SVG");
        assert!(html.contains("<style>"), "styling must be inline");
        // Self-contained: no scripts, no external fetches.
        assert!(!html.contains("<script"));
        assert!(!html.contains("http://") && !html.contains("https://"));
        assert!(!html.contains("src="));
        // Component names are HTML-escaped.
        assert!(html.contains("card:&lt;learned&gt;"));
        assert!(!html.contains("card:<learned>"));
    }

    #[test]
    fn empty_report_still_renders() {
        let m = ModelHealthMonitor::new(WatchConfig::default());
        let html = render_dashboard(&m.report(), &[]);
        assert!(html.contains("0 components"));
        let text = render_health_ansi(&m.report());
        assert!(text.contains("healthy"));
    }

    #[test]
    fn sparkline_handles_empty_and_flat_series() {
        assert!(sparkline(&[], 100, 30, None).contains("no data"));
        let flat = vec![(1.0, 5.0, 0u8), (2.0, 5.0, 0u8)];
        let svg = sparkline(&flat, 100, 30, Some(10.0));
        assert!(svg.contains("<path"));
    }
}
