//! Two-window distribution-drift detection on scalar streams.
//!
//! The detector watches one numeric stream per component (this crate
//! feeds it raw true cardinalities; the PSI side buckets them
//! logarithmically, so pre-logged input would lose octave resolution):
//! after a
//! configurable warm-up it freezes a *reference* window, then maintains a
//! sliding *current* window and compares the two with a pair of
//! complementary tests —
//!
//! * **PSI** (population stability index) over the log₂ buckets of the
//!   two windows: `Σ (p − q)·ln(p/q)`, the industry-standard drift score
//!   (&lt; 0.1 stable, &gt; 0.25 drifted);
//! * a **KS** two-sample statistic `sup |F₁ − F₂|` on the raw window
//!   values, which catches shape changes PSI's coarse buckets can miss.
//!
//! At the window sizes an online monitor can afford (tens of
//! observations, not thousands), either score alone is noisy — PSI over
//! a handful of log₂ buckets fluctuates far past 0.25 on perfectly
//! stationary streams. The alarm therefore requires **both** scores over
//! their thresholds, **sustained** for [`DriftConfig::confirm`]
//! consecutive observations, and a *full* current window. Genuine
//! distribution shift drives both scores high and keeps them there, so
//! detection is delayed by only a few observations; transient noise
//! spikes in one score never fire. Both scores and the alarm are
//! deterministic functions of the observation sequence.

use std::collections::VecDeque;

use lqo_obs::metrics::Histogram;

/// Drift-detector tuning.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Observations discarded before the reference window starts filling
    /// (model warm-up transients are not a baseline).
    pub warmup: usize,
    /// Reference window size; frozen once filled. Below ~64 the scores
    /// are noise.
    pub reference: usize,
    /// Sliding current-window size; the detector only ever alarms with a
    /// full current window.
    pub window: usize,
    /// PSI above this is drift (jointly with the KS condition).
    pub psi_threshold: f64,
    /// KS distance above this is drift (jointly with the PSI condition).
    pub ks_threshold: f64,
    /// Consecutive observations the joint condition must hold before the
    /// alarm fires.
    pub confirm: usize,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            warmup: 8,
            reference: 64,
            window: 48,
            psi_threshold: 0.25,
            ks_threshold: 0.35,
            confirm: 3,
        }
    }
}

/// Point-in-time drift verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftStatus {
    /// Population stability index between the windows (0 when not
    /// warmed up).
    pub psi: f64,
    /// Two-sample KS distance between the windows (0 when not warmed up).
    pub ks: f64,
    /// Whether both windows are full (scores are meaningful).
    pub warmed_up: bool,
    /// Both scores over threshold, sustained for `confirm` observations.
    pub drifted: bool,
}

/// Two-window drift detector over one scalar stream.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    cfg: DriftConfig,
    seen: usize,
    reference: Vec<f64>,
    ref_hist: Histogram,
    current: VecDeque<f64>,
    /// Consecutive observations for which the joint raw condition held.
    streak: usize,
}

impl DriftDetector {
    /// An empty detector.
    pub fn new(cfg: DriftConfig) -> DriftDetector {
        DriftDetector {
            cfg,
            seen: 0,
            reference: Vec::new(),
            ref_hist: Histogram::new(),
            current: VecDeque::new(),
            streak: 0,
        }
    }

    /// Feed one observation.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.seen += 1;
        if self.seen <= self.cfg.warmup {
            return;
        }
        if self.reference.len() < self.cfg.reference {
            self.reference.push(v);
            self.ref_hist.record(v);
            return;
        }
        self.current.push_back(v);
        while self.current.len() > self.cfg.window {
            self.current.pop_front();
        }
        let (psi, ks, warmed_up) = self.scores();
        if warmed_up && psi > self.cfg.psi_threshold && ks > self.cfg.ks_threshold {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
    }

    /// Observations consumed so far (including warm-up).
    pub fn seen(&self) -> usize {
        self.seen
    }

    fn scores(&self) -> (f64, f64, bool) {
        let warmed_up =
            self.reference.len() == self.cfg.reference && self.current.len() >= self.cfg.window;
        if !warmed_up {
            return (0.0, 0.0, false);
        }
        let mut cur_hist = Histogram::new();
        for &v in &self.current {
            cur_hist.record(v);
        }
        let psi = psi(&self.ref_hist, &cur_hist);
        let cur: Vec<f64> = self.current.iter().copied().collect();
        let ks = ks_statistic(&self.reference, &cur);
        (psi, ks, true)
    }

    /// Current verdict.
    pub fn status(&self) -> DriftStatus {
        let (psi, ks, warmed_up) = self.scores();
        DriftStatus {
            psi,
            ks,
            warmed_up,
            drifted: self.streak >= self.cfg.confirm.max(1),
        }
    }
}

/// Population stability index between two bucketed distributions, with
/// +0.5 count smoothing on every bucket populated in either histogram.
pub fn psi(a: &Histogram, b: &Histogram) -> f64 {
    let (ca, cb) = (a.bucket_counts(), b.bucket_counts());
    let active: Vec<usize> = (0..ca.len()).filter(|&i| ca[i] + cb[i] > 0).collect();
    if active.is_empty() {
        return 0.0;
    }
    let smooth = 0.5;
    let na = a.count() as f64 + smooth * active.len() as f64;
    let nb = b.count() as f64 + smooth * active.len() as f64;
    if na <= 0.0 || nb <= 0.0 {
        return 0.0;
    }
    let mut out = 0.0;
    for i in active {
        let p = (ca[i] as f64 + smooth) / na;
        let q = (cb[i] as f64 + smooth) / nb;
        out += (p - q) * (p / q).ln();
    }
    out
}

/// Two-sample Kolmogorov–Smirnov statistic `sup |F₁ − F₂|` (0 when
/// either sample is empty).
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let f1 = i as f64 / sa.len() as f64;
        let f2 = j as f64 / sb.len() as f64;
        d = d.max((f1 - f2).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DriftConfig {
        DriftConfig {
            warmup: 4,
            ..Default::default()
        }
    }

    /// Deterministic pseudo-uniform stream in [0, 1).
    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn stationary_stream_stays_quiet() {
        for seed in 1..=10 {
            let mut det = DriftDetector::new(cfg());
            let mut rng = lcg(seed);
            for _ in 0..400 {
                det.observe(1.0 + 9.0 * rng());
                assert!(
                    !det.status().drifted,
                    "seed {seed}: false alarm at {}",
                    det.seen()
                );
            }
            assert!(det.status().warmed_up);
        }
    }

    #[test]
    fn shifted_stream_fires_after_the_shift() {
        let mut det = DriftDetector::new(cfg());
        let mut rng = lcg(7);
        for _ in 0..200 {
            det.observe(1.0 + 9.0 * rng());
        }
        assert!(!det.status().drifted);
        // Order-of-magnitude shift: every post-drift value lands in new
        // log2 buckets and above the reference support.
        let mut fired_at = None;
        for k in 0..150 {
            det.observe(400.0 + 90.0 * rng());
            if det.status().drifted {
                fired_at = Some(k);
                break;
            }
        }
        let fired_at = fired_at.expect("detector never fired");
        // Needs a sustained shifted window, not one outlier.
        assert!(fired_at >= 4, "fired after only {fired_at} observations");
        let s = det.status();
        assert!(s.psi > 0.25 && s.ks > 0.35, "psi {} ks {}", s.psi, s.ks);
    }

    #[test]
    fn transient_outlier_burst_does_not_alarm() {
        let mut det = DriftDetector::new(cfg());
        let mut rng = lcg(3);
        for _ in 0..200 {
            det.observe(1.0 + 9.0 * rng());
        }
        // A short burst cannot hold the joint condition for the confirm
        // run once stationary data resumes.
        for _ in 0..8 {
            det.observe(1e6);
        }
        assert!(!det.status().drifted);
        for _ in 0..100 {
            det.observe(1.0 + 9.0 * rng());
            assert!(!det.status().drifted, "alarm after burst at {}", det.seen());
        }
    }

    #[test]
    fn not_warmed_up_never_alarms() {
        let mut det = DriftDetector::new(cfg());
        for _ in 0..40 {
            det.observe(1e9); // extreme, but reference not yet full
            let s = det.status();
            assert!(!s.warmed_up && !s.drifted);
        }
    }

    #[test]
    fn psi_of_identical_histograms_is_zero() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert!(psi(&h, &h).abs() < 1e-12);
    }

    #[test]
    fn ks_statistic_bounds() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| i as f64 + 1000.0).collect();
        assert!(ks_statistic(&a, &a) < 1e-12);
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(ks_statistic(&[], &a), 0.0);
    }
}
