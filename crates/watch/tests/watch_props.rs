//! Property tests on the watch layer: invariants that must hold for any
//! feedback stream — the drift detector stays quiet on stationary data,
//! q-error sketch quantiles are monotone and window-consistent, and
//! sketch merging matches recording the combined stream.

use proptest::prelude::*;

use lqo_watch::{q_error, DriftConfig, DriftDetector, QErrorSketch};

/// Deterministic pseudo-uniform stream in [0, 1) from a seed.
fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// A stationary stream keeps the drift alarm quiet, for any seed,
    /// scale, and spread: false positives are bounded at ≤ 2% of
    /// observations (narrow distributions straddling a bucket boundary
    /// can excurse briefly; sustained alarms would blow the bound).
    #[test]
    fn drift_detector_is_quiet_on_stationary_streams(
        seed in 0u64..1_000_000,
        scale in 1.0f64..1e6,
        spread in 1.5f64..50.0,
        len in 150usize..500,
    ) {
        let mut det = DriftDetector::new(DriftConfig::default());
        let mut rng = lcg(seed);
        let mut alarms = 0usize;
        for _ in 0..len {
            det.observe(scale * (1.0 + (spread - 1.0) * rng()));
            if det.status().drifted {
                alarms += 1;
            }
        }
        prop_assert!(
            alarms * 50 <= len,
            "{alarms} alarm observations in a stationary stream of {len}"
        );
    }

    /// A sustained order-of-magnitude shift always fires once the
    /// current window has fully turned over, and never *before* the
    /// shift point.
    #[test]
    fn drift_detector_fires_on_sustained_shift(
        seed in 0u64..1_000_000,
        factor in 100.0f64..10_000.0,
    ) {
        let cfg = DriftConfig::default();
        let horizon = cfg.window + cfg.confirm + 8;
        let mut det = DriftDetector::new(cfg);
        let mut rng = lcg(seed);
        for _ in 0..200 {
            det.observe(1.0 + 9.0 * rng());
        }
        prop_assert!(!det.status().drifted, "alarm before the shift");
        let mut fired = false;
        for _ in 0..horizon {
            det.observe(factor * (1.0 + 9.0 * rng()));
            if det.status().drifted {
                fired = true;
                break;
            }
        }
        prop_assert!(fired, "no alarm within {horizon} shifted observations");
    }

    /// Sketch quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn sketch_quantiles_are_monotone_and_bounded(
        qs in prop::collection::vec(1.0f64..1e9, 1..300),
    ) {
        let mut s = QErrorSketch::new(16, 4);
        for &q in &qs {
            s.record_q(q);
        }
        let w = s.window();
        let lo = w.quantile(0.0).unwrap();
        let mut prev = lo;
        for i in 1..=20 {
            let v = w.quantile(i as f64 / 20.0).unwrap();
            prop_assert!(v >= prev, "quantile dropped: {v} < {prev}");
            prev = v;
        }
        prop_assert!(w.quantile(1.0).unwrap() <= w.max().unwrap());
        prop_assert!(lo >= w.min().unwrap());
    }

    /// Merging two sketches gives exactly the lifetime view of recording
    /// both streams into one, regardless of interleaving.
    #[test]
    fn sketch_merge_matches_combined_stream(
        a in prop::collection::vec(1.0f64..1e9, 0..120),
        b in prop::collection::vec(1.0f64..1e9, 0..120),
    ) {
        let mut sa = QErrorSketch::new(8, 4);
        let mut sb = QErrorSketch::new(8, 4);
        let mut combined = QErrorSketch::new(8, 1024);
        for &q in &a {
            sa.record_q(q);
            combined.record_q(q);
        }
        for &q in &b {
            sb.record_q(q);
            combined.record_q(q);
        }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), (a.len() + b.len()) as u64);
        let (merged, direct) = (sa.lifetime(), combined.lifetime());
        prop_assert_eq!(merged.bucket_counts(), direct.bucket_counts());
        prop_assert_eq!(merged.min(), direct.min());
        prop_assert_eq!(merged.max(), direct.max());
        // Sums agree up to float addition order.
        prop_assert!((merged.sum() - direct.sum()).abs() <= 1e-9 * direct.sum().abs().max(1.0));
    }

    /// q_error is symmetric, floored at 1, and monotone in the miss
    /// factor. `truth = base × factor` keeps the under-estimate above
    /// the one-row floor so over/under are exact mirrors.
    #[test]
    fn q_error_properties(base in 1.0f64..1e3, factor in 1.0f64..1e6) {
        let truth = base * factor;
        let over = q_error(truth * factor, truth);
        let under = q_error(truth / factor, truth);
        prop_assert!(over >= 1.0);
        prop_assert!((over - under).abs() <= 1e-6 * over.max(1.0),
            "asymmetric: over {over} under {under}");
        let worse = q_error(truth * factor * 2.0, truth);
        prop_assert!(worse >= over);
    }
}
